"""The metrics registry: typed instruments behind one naming scheme.

Every subsystem reports through a :class:`MetricsRegistry` -- the single
source of truth the redesigned stats API (``EngineStatistics``,
``EvalStats`` flushes, ``PlanCacheStats``, ``SyncReport``) reads back out
of.  Three instrument kinds, mirroring the Prometheus data model the
exporters target:

* :class:`Counter` -- monotonically increasing (``inc``); the engine's
  operational counters ("tuples expired", "cache hits").
* :class:`Gauge` -- a value that goes both ways (``set``/``inc``/``dec``);
  divergence windows, live-tuple population.
* :class:`Histogram` -- observations bucketed into *fixed* upper bounds
  plus a running sum/count; sweep and evaluation latencies.

Instruments are registered under a *family* name following the unified
``repro_<subsystem>_<name>`` scheme, optionally with label dimensions.
Registering the same family twice returns the existing one (so every
subsystem can idempotently declare what it needs); re-registering under a
different kind or label set is an error.  Label cardinality is bounded per
family: past ``max_series`` distinct label sets, further series collapse
into a single overflow series labelled ``"__overflow__"`` -- a metrics bug
must never become a memory leak.

A disabled registry (``MetricsRegistry(enabled=False)``) hands out no-op
instruments sharing the API; the CI overhead gate benchmarks the
instrumented engine against exactly this.

>>> registry = MetricsRegistry()
>>> hits = registry.counter("repro_demo_hits_total", "demo", labels=("kind",))
>>> hits.labels(kind="a").inc()
>>> hits.labels(kind="a").inc(2)
>>> hits.labels(kind="a").value
3
>>> registry.snapshot()['repro_demo_hits_total{kind="a"}']
3
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "OVERFLOW_LABEL",
]

#: Default histogram upper bounds (seconds-flavoured, widely useful).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: The label value series beyond a family's cardinality bound collapse to.
OVERFLOW_LABEL = "__overflow__"


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def set(self, value: Union[int, float]) -> None:
        """Force the counter to ``value`` (snapshot-view plumbing only)."""
        self.value = value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.value -= amount


class Histogram:
    """Observations in fixed buckets, plus a running sum and count."""

    __slots__ = ("buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def value(self) -> Dict[str, object]:
        """The snapshot representation (cumulative bucket counts)."""
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            cumulative.append((bound, running))
        return {"buckets": cumulative, "sum": self.sum, "count": self.count}


class _Noop:
    """A do-nothing instrument satisfying every instrument API."""

    __slots__ = ()
    kind = "noop"
    value = 0
    sum = 0.0
    count = 0
    buckets: Tuple[float, ...] = ()

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass

    def dec(self, amount: Union[int, float] = 1) -> None:
        pass

    def set(self, value: Union[int, float]) -> None:
        pass

    def observe(self, value: Union[int, float]) -> None:
        pass

    def labels(self, *values: object, **kv: object) -> "_Noop":
        return self


_NOOP = _Noop()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Family:
    """One named metric family: label names plus its per-series instruments.

    An unlabelled family *is* its single series -- the instrument methods
    (``inc``/``set``/``observe``) proxy straight to it, so callers never
    special-case "no labels".
    """

    __slots__ = ("name", "help", "kind", "label_names", "max_series",
                 "_series", "_buckets")

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        label_names: Tuple[str, ...],
        max_series: int,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = label_names
        self.max_series = max_series
        self._buckets = tuple(buckets) if buckets is not None else None
        self._series: Dict[Tuple[str, ...], object] = {}
        if not label_names:
            self._series[()] = self._make()

    def _make(self):
        if self.kind == "histogram":
            return Histogram(self._buckets if self._buckets is not None else DEFAULT_BUCKETS)
        return _KINDS[self.kind]()

    # -- series access -------------------------------------------------------

    def labels(self, *values: object, **kv: object):
        """The instrument for one label-value combination.

        Accepts either positional values (in ``label_names`` order) or
        keyword form.  Past ``max_series`` distinct combinations, returns
        the shared overflow series instead of growing without bound.
        """
        if kv:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(str(kv[name]) for name in self.label_names)
            except KeyError as missing:
                raise ValueError(
                    f"family {self.name!r} has labels {self.label_names!r}, "
                    f"missing {missing}"
                ) from None
            if len(kv) != len(self.label_names):
                extra = set(kv) - set(self.label_names)
                raise ValueError(f"unknown label(s) {sorted(extra)!r} for {self.name!r}")
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.label_names):
            raise ValueError(
                f"family {self.name!r} needs {len(self.label_names)} label "
                f"value(s) {self.label_names!r}, got {len(values)}"
            )
        series = self._series.get(values)
        if series is None:
            if len(self._series) >= self.max_series:
                values = (OVERFLOW_LABEL,) * len(self.label_names)
                series = self._series.get(values)
                if series is None:
                    series = self._make()
                    self._series[values] = series
                return series
            series = self._make()
            self._series[values] = series
        return series

    def series(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        """All (label values, instrument) pairs, insertion-ordered."""
        return self._series.items()

    # -- unlabelled proxy ----------------------------------------------------

    def _single(self):
        if self.label_names:
            raise ValueError(
                f"family {self.name!r} is labelled {self.label_names!r}; "
                f"use .labels(...)"
            )
        return self._series[()]

    @property
    def value(self):
        return self._single().value

    def inc(self, amount: Union[int, float] = 1) -> None:
        self._single().inc(amount)

    def dec(self, amount: Union[int, float] = 1) -> None:
        self._single().dec(amount)

    def set(self, value: Union[int, float]) -> None:
        self._single().set(value)

    def observe(self, value: Union[int, float]) -> None:
        self._single().observe(value)

    # histogram passthroughs (unlabelled histograms)
    @property
    def sum(self) -> float:
        return self._single().sum

    @property
    def count(self) -> int:
        return self._single().count


def _series_key(name: str, label_names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not label_names:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in zip(label_names, values))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """A process-local registry of metric families.

    The unified naming scheme is ``repro_<subsystem>_<name>`` with the
    conventional unit/type suffixes (``_total`` for counters, ``_seconds``
    for latency histograms).  Families register idempotently; snapshots
    are plain dicts so tests can diff before/after without touching the
    live instruments.
    """

    def __init__(self, enabled: bool = True, max_series: int = 512) -> None:
        self.enabled = enabled
        self.max_series = max_series
        self._families: Dict[str, Family] = {}

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    # -- registration --------------------------------------------------------

    def _register(
        self,
        name: str,
        help: str,
        kind: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ):
        if not self.enabled:
            return _NOOP
        label_names = tuple(labels)
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != label_names:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.label_names!r}"
                )
            return existing
        family = Family(name, help, kind, label_names, self.max_series, buckets)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Family:
        """Register (or fetch) a counter family."""
        return self._register(name, help, "counter", labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Family:
        """Register (or fetch) a gauge family."""
        return self._register(name, help, "gauge", labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Family:
        """Register (or fetch) a fixed-bucket histogram family."""
        return self._register(name, help, "histogram", labels, buckets)

    def get(self, name: str) -> Optional[Family]:
        """The family registered under ``name``, if any."""
        return self._families.get(name)

    def families(self) -> Iterable[Family]:
        """All registered families, registration-ordered."""
        return self._families.values()

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A flat ``{series key: value}`` dict (histograms as dicts)."""
        out: Dict[str, object] = {}
        for family in self._families.values():
            for values, instrument in family.series():
                out[_series_key(family.name, family.label_names, values)] = (
                    instrument.value
                )
        return out

    def diff(self, earlier: Mapping[str, object]) -> Dict[str, object]:
        """Scalar deltas since an ``earlier`` snapshot (non-zero only).

        Histogram series are compared by observation count.
        """
        out: Dict[str, object] = {}
        for key, value in self.snapshot().items():
            before = earlier.get(key, 0)
            if isinstance(value, dict):  # histogram snapshot
                prev = before.get("count", 0) if isinstance(before, dict) else 0
                delta = value["count"] - prev
            else:
                delta = value - before
            if delta:
                out[key] = delta
        return out

    # -- exporters -----------------------------------------------------------

    def to_prom_text(self) -> str:
        """The Prometheus text exposition format of every family."""
        lines: List[str] = []
        for family in self._families.values():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, instrument in sorted(family.series(), key=lambda item: item[0]):
                if family.kind == "histogram":
                    running = 0
                    for bound, count in zip(instrument.buckets, instrument.counts):
                        running += count
                        key = _series_key(
                            family.name + "_bucket",
                            family.label_names + ("le",),
                            values + (_format_value(bound),),
                        )
                        lines.append(f"{key} {running}")
                    key = _series_key(
                        family.name + "_bucket",
                        family.label_names + ("le",),
                        values + ("+Inf",),
                    )
                    lines.append(f"{key} {instrument.count}")
                    lines.append(
                        f"{_series_key(family.name + '_sum', family.label_names, values)}"
                        f" {_format_value(instrument.sum)}"
                    )
                    lines.append(
                        f"{_series_key(family.name + '_count', family.label_names, values)}"
                        f" {instrument.count}"
                    )
                else:
                    key = _series_key(family.name, family.label_names, values)
                    lines.append(f"{key} {_format_value(instrument.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self, indent: Optional[int] = None) -> str:
        """A JSON document of every family (kind, help, labelled series)."""
        doc = []
        for family in self._families.values():
            doc.append({
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "series": [
                    {"labels": list(values), "value": instrument.value}
                    for values, instrument in family.series()
                ],
            })
        return json.dumps(doc, indent=indent)


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)

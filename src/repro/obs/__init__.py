"""The unified observability layer: metrics registry + evaluation tracing.

Every subsystem reports through one :class:`MetricsRegistry` under the
``repro_<subsystem>_<name>`` naming scheme, and the legacy stats surfaces
(:class:`~repro.engine.statistics.EngineStatistics`, plan-cache counters,
:class:`~repro.distributed.metrics.SyncReport` rows) are thin views over
it.  :class:`Tracer` produces the nested span trees behind
``Database.trace_last_query()`` and SQL ``EXPLAIN ANALYZE``.

Dependency-free by design: :mod:`repro.obs` imports nothing from the rest
of the package, so every layer (core, engine, sql, distributed, cli) can
instrument itself without cycles.

Quick start::

    from repro import Database

    db = Database()
    ...
    print(db.metrics.to_prom_text())      # every family, Prometheus format
    db.sql("EXPLAIN ANALYZE SELECT ...")  # span tree with per-operator rows
"""

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    OVERFLOW_LABEL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import NOOP_SPAN, Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "OVERFLOW_LABEL",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "Tracer",
]

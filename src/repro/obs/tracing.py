"""Evaluation tracing: lightweight nested spans with wall-time attributes.

A :class:`Span` is one timed unit of work -- an evaluation, a compile, one
operator of a plan, a view refresh decision, an expiration sweep, a
replication round -- with a name, key/value attributes (tuple counts,
engine, τ), and children.  A :class:`Tracer` hands spans out and remembers
the most recent root so ``Database.trace_last_query()`` and ``EXPLAIN
ANALYZE`` can render what just happened.

Two usage styles, both exception-safe:

* the context manager (``with tracer.span("evaluate", engine="compiled")``)
  for code whose extent is lexical -- an exception closes the span and
  stamps an ``error`` attribute before propagating;
* explicit children (``span.child("op:Join")`` + ``span.add_time(dt)``)
  for the compiled engine's lazy pipelines, where an operator's work is
  spread over the consumer's pulls and durations are accumulated
  incrementally rather than bracketed.

Tracing is opt-in per tracer (``enabled``); a disabled tracer's ``span``
context manager yields a shared no-op span, so instrumented code pays one
flag check when tracing is off.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "NOOP_SPAN"]


class Span:
    """One node of a trace tree."""

    __slots__ = ("name", "attrs", "children", "_elapsed", "_started")

    def __init__(self, name: str, **attrs: object) -> None:
        self.name = name
        self.attrs: Dict[str, object] = attrs
        self.children: List["Span"] = []
        self._elapsed = 0.0
        self._started: Optional[float] = None

    # -- timing --------------------------------------------------------------

    def start(self) -> "Span":
        """Begin bracketed timing (pairs with :meth:`finish`)."""
        self._started = time.perf_counter()
        return self

    def finish(self) -> "Span":
        """End bracketed timing, accumulating into the span's duration."""
        if self._started is not None:
            self._elapsed += time.perf_counter() - self._started
            self._started = None
        return self

    def add_time(self, seconds: float) -> None:
        """Accumulate incremental duration (lazy-pipeline style)."""
        self._elapsed += seconds

    @property
    def duration_ms(self) -> float:
        """Accumulated duration in milliseconds (inclusive of children)."""
        return self._elapsed * 1000.0

    # -- structure -----------------------------------------------------------

    def child(self, name: str, **attrs: object) -> "Span":
        """Create and attach a child span (not started)."""
        span = Span(name, **attrs)
        self.children.append(span)
        return span

    def note(self, **attrs: object) -> "Span":
        """Attach or update attributes."""
        self.attrs.update(attrs)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """The first span (depth-first) whose name matches exactly."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    # -- rendering -----------------------------------------------------------

    def render(self, indent: int = 0, timings: bool = True) -> str:
        """An indented tree rendering (``timings=False`` for golden tests)."""
        attrs = " ".join(f"{k}={v}" for k, v in self.attrs.items())
        line = "  " * indent + self.name
        if attrs:
            line += f" [{attrs}]"
        if timings:
            line += f" ({self.duration_ms:.3f} ms)"
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1, timings))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_ms:.3f} ms, "
            f"children={len(self.children)})"
        )


class _NoopSpan(Span):
    """A shared inert span: absorbs children and attributes, keeps nothing."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("noop")

    def child(self, name: str, **attrs: object) -> "Span":
        return self

    def note(self, **attrs: object) -> "Span":
        return self

    def start(self) -> "Span":
        return self

    def finish(self) -> "Span":
        return self

    def add_time(self, seconds: float) -> None:
        pass


#: The shared inert span handed out by disabled tracers.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Produces spans and remembers the most recent root.

    >>> tracer = Tracer(enabled=True)
    >>> with tracer.span("evaluate", engine="compiled") as root:
    ...     with tracer.span("compile"):
    ...         pass
    >>> tracer.last.name
    'evaluate'
    >>> [child.name for child in tracer.last.children]
    ['compile']
    """

    __slots__ = ("enabled", "last", "_stack")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: The most recently completed root span.
        self.last: Optional[Span] = None
        self._stack: List[Span] = []

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    @contextmanager
    def span(self, name: str, **attrs: object):
        """A timed span; nests under the innermost active span.

        On an exception the span still finishes, records
        ``error=<ExceptionType>``, and the exception propagates.
        """
        if not self.enabled:
            yield NOOP_SPAN
            return
        if self._stack:
            span = self._stack[-1].child(name, **attrs)
        else:
            span = Span(name, **attrs)
        self._stack.append(span)
        span.start()
        try:
            yield span
        except BaseException as error:
            span.note(error=type(error).__name__)
            raise
        finally:
            span.finish()
            self._stack.pop()
            if not self._stack:
                self.last = span

    def root(self, name: str, **attrs: object) -> Span:
        """An explicit (caller-managed) root span, recorded as ``last``.

        The caller is responsible for ``start()``/``finish()``; used where
        a span must outlive a lexical scope (the compiled pipelines).
        """
        span = Span(name, **attrs)
        self.last = span
        return span

"""The cross-structure consistency invariant catalogue.

Every check audits one agreement that the engine's layered structures must
maintain among themselves as time passes:

Structural (cheap, pure bookkeeping walks):

* ``index-schedules-stored`` -- every stored row with a finite, unexpired
  expiration is scheduled in its table's expiration index at exactly that
  time (otherwise it will never be swept or fire its trigger);
* ``index-entries-stored`` -- every live index entry refers to a
  physically present row whose stored expiration matches (otherwise a
  phantom entry later fires ON-EXPIRE for a row that no longer exists);
* ``due-buffer-consistent`` -- lazily buffered due entries are actually
  due, and any still-present row carries an expiration no earlier than the
  buffered one (max-merge renewals only ever move expirations later);
* ``shard-routing`` -- every row, index entry, and due-buffer entry of a
  partitioned table lives in the shard ``hash(row[key]) % N`` says it
  should (a misrouted row is invisible to point reads and sweeps);
* ``physical-covers-live`` -- a table never reports more live tuples than
  it physically stores.

Deep (re-evaluation; quadratic-ish, for tests and fuzzing):

* ``view-freshness`` -- whatever a materialised view would serve from
  storage right now equals a from-scratch evaluation of its expression
  (Theorems 1-3 made executable);
* ``plan-cache-consistent`` -- every cached result the plan cache would
  still serve at the current time equals an uncached evaluation at that
  time (the Section 3.4 validity machinery made executable).

The audits are *sweep-order independent*: the debug mode runs them from
mid-clock-advance hooks, where some tables have already swept a tick and
others have not, so no check may assume global expiration processing has
finished.  That is why ``index-schedules-stored`` covers only unexpired
rows and why a due-buffer entry whose row is gone is legal (an explicit
delete may race a lazy vacuum).

All checks are read-only; :func:`run_invariants` returns the violations
found rather than raising, so callers choose strictness
(:meth:`Database.verify` raises on non-empty by default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, List, Optional, Tuple

from repro.core.algebra.evaluator import Evaluator
from repro.core.timestamps import ts
from repro.engine.partitioning import PartitionedTable

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.engine.database import Database

__all__ = ["Violation", "run_invariants", "invariant_names"]


@dataclass(frozen=True)
class Violation:
    """One invariant breach: which check, on what, and how it failed."""

    invariant: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.subject}: {self.message}"


Check = Callable[["Database"], Iterator[Violation]]

_STRUCTURAL: List[Tuple[str, Check]] = []
_DEEP: List[Tuple[str, Check]] = []


def _structural(name: str):
    def register(fn: Check) -> Check:
        _STRUCTURAL.append((name, fn))
        return fn

    return register


def _deep(name: str):
    def register(fn: Check) -> Check:
        _DEEP.append((name, fn))
        return fn

    return register


def invariant_names(deep: bool = True) -> List[str]:
    """The catalogue's check names, in execution order."""
    names = [name for name, _ in _STRUCTURAL]
    if deep:
        names.extend(name for name, _ in _DEEP)
    return names


def run_invariants(
    database: "Database",
    deep: bool = True,
    names: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Run the catalogue against ``database``; returns all violations.

    ``deep=False`` audits bookkeeping only; ``names`` restricts the run to
    a subset of :func:`invariant_names`.
    """
    wanted = None if names is None else set(names)
    checks = list(_STRUCTURAL) + (list(_DEEP) if deep else [])
    violations: List[Violation] = []
    for name, check in checks:
        if wanted is not None and name not in wanted:
            continue
        violations.extend(check(database))
    return violations


# -- structural checks -------------------------------------------------------


@_structural("index-schedules-stored")
def _index_schedules_stored(db: "Database") -> Iterator[Violation]:
    now = db.clock.now
    for name in db.table_names():
        table = db.table(name)
        scheduled = {row: stamp for row, stamp in table._index.pending()}
        for row, texp in table.relation.items():
            if not texp.is_finite or texp <= now:
                continue  # immortal rows are never indexed; expired rows
                # may already sit in a due buffer awaiting vacuum
            entry = scheduled.get(row)
            if entry is None:
                yield Violation(
                    "index-schedules-stored",
                    f"{name}{row}",
                    f"stored row expires at {texp} but has no index entry",
                )
            elif entry != texp:
                yield Violation(
                    "index-schedules-stored",
                    f"{name}{row}",
                    f"index schedules {entry}, stored expiration is {texp}",
                )


@_structural("index-entries-stored")
def _index_entries_stored(db: "Database") -> Iterator[Violation]:
    for name in db.table_names():
        table = db.table(name)
        for row, stamp in table._index.pending():
            current = table.relation.expiration_or_none(row)
            if current is None:
                yield Violation(
                    "index-entries-stored",
                    f"{name}{row}",
                    f"index entry at {stamp} refers to a row that is not "
                    f"physically present (phantom ON-EXPIRE)",
                )
            elif current != stamp:
                yield Violation(
                    "index-entries-stored",
                    f"{name}{row}",
                    f"index entry at {stamp}, stored expiration is {current}",
                )


@_structural("due-buffer-consistent")
def _due_buffer_consistent(db: "Database") -> Iterator[Violation]:
    now = db.clock.now

    def audit(name: str, shard: str, entries) -> Iterator[Violation]:
        table = db.table(name)
        for row, texp in entries:
            if texp > now:
                yield Violation(
                    "due-buffer-consistent",
                    f"{name}{shard}{row}",
                    f"buffered entry at {texp} is not due yet (now {now})",
                )
            current = table.relation.expiration_or_none(row)
            # An absent row is legal: an explicit delete can reclaim an
            # expired-but-unvacuumed row before its buffered entry drains.
            if current is not None and current < texp:
                yield Violation(
                    "due-buffer-consistent",
                    f"{name}{shard}{row}",
                    f"stored expiration {current} precedes the buffered "
                    f"entry {texp} (max-merge only moves later)",
                )

    for name in db.table_names():
        table = db.table(name)
        if isinstance(table, PartitionedTable):
            for i, buffer in enumerate(table._due_buffers):
                entries = [(row, ts(value)) for row, value in buffer]
                yield from audit(name, f"[shard {i}]", entries)
        else:
            yield from audit(name, "", list(table._due_buffer))


@_structural("shard-routing")
def _shard_routing(db: "Database") -> Iterator[Violation]:
    for name in db.table_names():
        table = db.table(name)
        if not isinstance(table, PartitionedTable):
            continue
        key, count = table.key_index, table.partitions
        for shard_id, shard in enumerate(table.relation.shards):
            for row in shard._tuples:
                owner = hash(row[key]) % count
                if owner != shard_id:
                    yield Violation(
                        "shard-routing",
                        f"{name}{row}",
                        f"stored in relation shard {shard_id}, key hashes "
                        f"to shard {owner}",
                    )
        for shard_id, shard_index in enumerate(table._index.shards):
            for row, _ in shard_index.pending():
                owner = hash(row[key]) % count
                if owner != shard_id:
                    yield Violation(
                        "shard-routing",
                        f"{name}{row}",
                        f"indexed in shard {shard_id}, key hashes to shard "
                        f"{owner}",
                    )
        for shard_id, buffer in enumerate(table._due_buffers):
            for row, _ in buffer:
                owner = hash(row[key]) % count
                if owner != shard_id:
                    yield Violation(
                        "shard-routing",
                        f"{name}{row}",
                        f"buffered in shard {shard_id}, key hashes to shard "
                        f"{owner}",
                    )


@_structural("physical-covers-live")
def _physical_covers_live(db: "Database") -> Iterator[Violation]:
    for name in db.table_names():
        table = db.table(name)
        live, physical = len(table), table.physical_size
        if physical < live:
            yield Violation(
                "physical-covers-live",
                name,
                f"{live} live tuples but only {physical} stored",
            )


# -- deep checks -------------------------------------------------------------


@_deep("view-freshness")
def _view_freshness(db: "Database") -> Iterator[Violation]:
    now = db.clock.now
    for name in db.view_names():
        view = db.view(name)
        served = view._audit_serveable(now)
        if served is None:
            continue  # a real read would refresh (or refuse); nothing to audit
        fresh = Evaluator(db.catalog, now).evaluate(view.expression).relation
        if not served.same_content(fresh):
            yield Violation(
                "view-freshness",
                name,
                f"materialised read at {now} diverges from a from-scratch "
                f"evaluation ({len(served)} vs {len(fresh)} rows)",
            )


@_deep("plan-cache-consistent")
def _plan_cache_consistent(db: "Database") -> Iterator[Violation]:
    now = db.clock.now
    for expression, entry in db.plan_cache.entries():
        # Mirror the cache's own serve conditions: entries it would refuse
        # to serve at `now` cannot produce a wrong answer, so skip them.
        if entry.schema_version != db.schema_version:
            continue
        if entry.partitioning != db._partition_scheme:
            continue
        cached = entry.result
        if cached is None or entry.result_version != db.catalog_version:
            continue
        if not (cached.tau <= now and cached.validity.contains(now)):
            continue
        served = cached.relation.exp_at(now)
        fresh = Evaluator(db.catalog, now).evaluate(expression).relation
        if not served.same_content(fresh):
            yield Violation(
                "plan-cache-consistent",
                repr(expression),
                f"cached result (τ={cached.tau}) served at {now} diverges "
                f"from an uncached evaluation ({len(served)} vs "
                f"{len(fresh)} rows)",
            )

"""Correctness tooling: invariant audits and a model-based fuzzer.

The paper's central guarantee -- materialised results stay correct without
contacting base relations (Theorems 1-2) -- makes *silent cross-structure
desync* the most dangerous bug class in this engine: a relation, its
expiration index, its due buffers, its shard routing, the materialised
views over it, and the plan cache must all tell one coherent story about
which tuples exist and when they expire.  This package enforces that story
mechanically:

* :mod:`repro.check.invariants` -- the invariant catalogue behind
  :meth:`repro.engine.database.Database.verify` and the opt-in
  ``Database(check_invariants=True)`` debug mode;
* :mod:`repro.check.stateful` -- a seeded, shrinking, model-based fuzzer
  that drives random operation sequences against a dict oracle with the
  invariant audits armed after every step;
* ``python -m repro.check`` -- the CI smoke entry point.
"""

from repro.check.invariants import Violation, invariant_names, run_invariants
from repro.check.stateful import FuzzReport, run_fuzz

__all__ = [
    "Violation",
    "invariant_names",
    "run_invariants",
    "FuzzReport",
    "run_fuzz",
]

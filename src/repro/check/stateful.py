"""A seeded, shrinking, model-based fuzzer for the whole engine.

The fuzzer drives one :class:`~repro.engine.database.Database` -- a flat
table and a hash-partitioned table, three materialised views (monotonic,
SCHRODINGER difference, PATCH difference), audit triggers, the plan cache
-- through a random but *fully concrete* operation sequence, in lockstep
with a trivially-correct oracle: a ``row -> expiration`` dict per table
plus an integer clock.  Concreteness is the point: every op is a plain
tuple of ints, so any subsequence replays deterministically, which is what
makes delta-debugging shrinks sound.

After **every** op three things are checked:

1. the dict oracle -- visible rows, their exact expiration times, view
   contents, and SQL results must match the model;
2. the full invariant catalogue (:mod:`repro.check.invariants`) via
   ``Database.verify(strict=True)`` -- and the database also runs with
   ``check_invariants=True``, so the audits additionally fire from inside
   every mutation and mid-sweep hook;
3. trigger soundness -- no (table, row, texp) fires twice, and nothing
   fires before its expiration time.

A failure is shrunk with a ddmin-style pass (drop chunks, halve the chunk
size while progress stalls) down to a minimal reproducing op list, which
``python -m repro.check`` prints for copy-paste into a regression test.

Ops and semantics
-----------------

``("insert", t, (k, v), ttl)``  insert expiring at ``now + ttl`` (max-merge);
``("immortal", t, (k, v))``     insert with no explicit lifetime -- no
                                expiration, except on the ``slm`` table,
                                where the since-last-modification policy
                                stamps its default idle timeout instead;
``("renew", t, (k, v), ttl)``   re-insert (the paper's renewal idiom);
``("touch", t, (k, v))``        renewal-on-touch: restarts a live row's
                                idle timer on the ``slm`` table
                                (``max(texp, now + timeout)``); a no-op
                                on absolute tables and on dead rows --
                                a touch must never resurrect;
``("override", t, (k, v), ttl)`` set the expiration to ``now + ttl``
                                *unconditionally* (the revocation path;
                                ``ttl=0`` revokes immediately) -- the one
                                op whose oracle is last-write, not
                                max-merge;
``("delete", t, (k, v))``       explicit delete;
``("advance", d)``              advance the clock ``d`` ticks;
``("vacuum", t)``               batch-reclaim expired tuples;
``("txn", t, subops, poison)``  buffered transaction; ``poison=True``
                                appends an already-expired insert so the
                                commit aborts and must roll back cleanly;
``("view", name)``              read a materialised view;
``("sql", t, k | None)``        a SQL point or full scan through the
                                front door (exercising the plan cache).

Crash-point injection (``crash_points=True``)
---------------------------------------------

With crash points enabled the harness runs its database on a write-ahead
log (:mod:`repro.engine.wal`) in a scratch directory and three more op
kinds join the mix:

``("crash", mode)``   simulate a crash: drop every in-memory structure
                      and recover from disk.  ``mode="torn"`` first
                      appends a partial frame to the log -- the write
                      that was in flight when the machine died -- so
                      recovery must truncate-and-warn; ``mode="clean"``
                      crashes between appends.  The recovered database
                      is differentially compared against the dict oracle
                      restricted to committed-and-unexpired state (which
                      is exactly what the oracle holds -- the model is
                      only advanced after an op is acknowledged) and must
                      pass ``Database.verify(strict=True, deep=True)``;
``("checkpoint",)``   write an atomic snapshot and truncate the log;
``("compact",)``      rewrite the log dropping expired and superseded
                      records -- the recovered state must not change.

Crash ops replay deterministically like every other op, so shrinking
works unchanged: a failure after three crashes shrinks to the minimal op
list that still breaks, crashes included.
"""

from __future__ import annotations

import math
import os
import random
import shutil
import struct
import tempfile
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.algebra.expressions import BaseRef
from repro.engine.database import Database
from repro.engine.expiration_index import RemovalPolicy
from repro.engine.recovery import recover_database
from repro.engine.views import MaintenancePolicy
from repro.errors import RelationError
from repro.sql.executor import execute_sql

__all__ = [
    "FuzzFailure",
    "FuzzReport",
    "declare_check_families",
    "generate_ops",
    "run_fuzz",
]

_TABLES = ("flat", "part", "col", "slm")
_VIEWS = ("v_mono", "v_diff", "v_patch")
_POLICIES = {"eager": RemovalPolicy.EAGER, "lazy": RemovalPolicy.LAZY}
#: Idle timeout of the since-last-modification table.
_SLM_TTL = 6

#: Key/value/ttl/advance ranges are deliberately tiny: collisions
#: (renewals, delete-then-reinsert, shard reuse) are where the bugs live.
_KEYS = 8
_VALUES = 3
_MAX_TTL = 12
_MAX_ADVANCE = 4


def declare_check_families(registry):
    """Idempotently register the ``repro_check_*`` fuzzer families."""
    ops = registry.counter(
        "repro_check_ops_total",
        "Fuzzer operations applied, by op kind.",
        labels=("op",),
    )
    failures = registry.counter(
        "repro_check_failures_total",
        "Fuzz runs that found a violation, by removal policy.",
        labels=("policy",),
    )
    replays = registry.counter(
        "repro_check_shrink_replays_total",
        "Candidate sequences replayed while shrinking failures.",
    )
    shrunk = registry.gauge(
        "repro_check_shrunk_ops",
        "Length of the most recently shrunk failing sequence.",
    )
    return ops, failures, replays, shrunk


class CheckFailed(AssertionError):
    """The engine diverged from the oracle (not an engine exception)."""


class FuzzFailure(Exception):
    """One failing step: which op, at what index, raising what."""

    def __init__(self, step: int, op: tuple, error: Exception) -> None:
        super().__init__(f"step {step} {op!r}: {type(error).__name__}: {error}")
        self.step = step
        self.op = op
        self.error = error


@dataclass
class FuzzReport:
    """The outcome of one :func:`run_fuzz` run."""

    seed: int
    policy: str
    ops_requested: int
    ops_run: int
    failure: Optional[FuzzFailure] = None
    shrunk: Optional[List[tuple]] = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    def summary(self) -> str:
        head = (
            f"seed={self.seed} policy={self.policy} "
            f"ops={self.ops_run}/{self.ops_requested}"
        )
        if self.ok:
            return f"PASS {head}"
        lines = [f"FAIL {head}", f"  {self.failure}"]
        if self.shrunk is not None:
            lines.append(f"  shrunk to {len(self.shrunk)} op(s):")
            lines.extend(f"    {op!r}" for op in self.shrunk)
        return "\n".join(lines)


# -- op generation -----------------------------------------------------------


def generate_ops(
    rng: random.Random, count: int, crash_points: bool = False
) -> List[tuple]:
    """``count`` concrete ops drawn from ``rng`` (replayable as any subset).

    ``crash_points=True`` mixes in ``crash``/``checkpoint``/``compact``
    ops (~8% combined); it draws extra randomness, so a seed generates a
    different sequence with crash points on than off -- but each mode is
    deterministic for a given seed, which is all replay and shrinking
    need.
    """
    ops: List[tuple] = []
    for _ in range(count):
        if crash_points:
            injected = rng.random()
            if injected < 0.04:
                mode = "torn" if rng.random() < 0.5 else "clean"
                ops.append(("crash", mode))
                continue
            if injected < 0.06:
                ops.append(("checkpoint",))
                continue
            if injected < 0.08:
                ops.append(("compact",))
                continue
        roll = rng.random()
        table = rng.choice(_TABLES)
        row = (rng.randrange(_KEYS), rng.randrange(_VALUES))
        if roll < 0.30:
            ops.append(("insert", table, row, rng.randint(1, _MAX_TTL)))
        elif roll < 0.35:
            ops.append(("immortal", table, row))
        elif roll < 0.42:
            ops.append(("renew", table, row, rng.randint(1, _MAX_TTL)))
        elif roll < 0.48:
            ops.append(("override", table, row, rng.randint(0, _MAX_TTL)))
        elif roll < 0.55:
            ops.append(("delete", table, row))
        elif roll < 0.60:
            ops.append(("touch", table, row))
        elif roll < 0.70:
            ops.append(("advance", rng.randint(1, _MAX_ADVANCE)))
        elif roll < 0.75:
            ops.append(("vacuum", table))
        elif roll < 0.85:
            subops: List[tuple] = []
            for _ in range(rng.randint(1, 4)):
                srow = (rng.randrange(_KEYS), rng.randrange(_VALUES))
                if rng.random() < 0.7:
                    subops.append(("insert", srow, rng.randint(1, _MAX_TTL)))
                else:
                    subops.append(("delete", srow))
            ops.append(("txn", table, tuple(subops), rng.random() < 0.4))
        elif roll < 0.95:
            ops.append(("view", rng.choice(_VIEWS)))
        else:
            key = rng.randrange(_KEYS) if rng.random() < 0.5 else None
            ops.append(("sql", table, key))
    return ops


# -- the harness -------------------------------------------------------------


class _Harness:
    """One database + one oracle, advanced op by op in lockstep."""

    def __init__(
        self,
        policy: RemovalPolicy,
        wal_dir: Optional[str] = None,
        registry=None,
    ) -> None:
        self._policy = policy
        self._wal_dir = wal_dir
        db_kwargs: dict = dict(
            default_removal_policy=policy, check_invariants=True
        )
        if registry is not None:
            db_kwargs["metrics"] = registry
        if wal_dir is not None:
            # "never" still flushes every append to the OS, which is all
            # a *simulated* crash (the process survives) can lose.
            db_kwargs.update(wal_dir=wal_dir, wal_fsync="never")
        self.db = Database(**db_kwargs)
        self.db.create_table("flat", ["k", "v"], lazy_batch_size=8)
        self.db.create_table(
            "part", ["k", "v"], partitions=3, partition_key="k",
            lazy_batch_size=8,
        )
        # Columnar storage under the same op mix: batch kernels, the
        # swap-remove sweep path, and snapshot/WAL layout round-trips all
        # get differential coverage against the dict oracle.  The backend
        # follows the environment (REPRO_NUMPY), so the numpy kernels are
        # fuzzed wherever numpy is present.
        self.db.create_table(
            "col", ["k", "v"], lazy_batch_size=8, layout="columnar",
        )
        # Renewal-on-touch under the same op mix: every touch restarts a
        # live row's idle timer; a lifetime-less insert stamps the
        # default timeout rather than immortality.
        self.db.create_table(
            "slm", ["k", "v"], lazy_batch_size=8,
            expiry="since_last_modification", default_ttl=_SLM_TTL,
        )
        self.db.materialise("v_mono", BaseRef("flat").project(1))
        diff = BaseRef("flat").difference(BaseRef("part"))
        self.db.materialise(
            "v_diff", diff, policy=MaintenancePolicy.SCHRODINGER
        )
        self.db.materialise(
            "v_patch", diff, policy=MaintenancePolicy.PATCH
        )
        #: Oracle: per-table row -> expiration (math.inf = immortal) + clock.
        self.model: Dict[str, Dict[tuple, float]] = {t: {} for t in _TABLES}
        self.now = 0
        self.fired: List[Tuple[str, tuple, int, int]] = []
        self._fired_seen: set = set()
        self._register_triggers()

    def _register_triggers(self) -> None:
        for name in _TABLES:
            self.db.table(name).triggers.register(
                "audit", self._make_trigger(name)
            )

    def _make_trigger(self, name: str):
        def action(event) -> None:
            self.fired.append(
                (name, event.tuple.row,
                 event.tuple.expires_at.value, event.fired_at.value)
            )

        return action

    # -- oracle views ---------------------------------------------------

    def _visible(self, table: str) -> Dict[tuple, float]:
        now = self.now
        return {
            row: e for row, e in self.model[table].items() if e > now
        }

    def _expected_view(self, name: str) -> set:
        flat = set(self._visible("flat"))
        if name == "v_mono":
            return {(k,) for k, _ in flat}
        return flat - set(self._visible("part"))

    # -- op application -------------------------------------------------

    def apply(self, op: tuple) -> None:
        kind = op[0]
        if kind == "insert":
            _, table, row, ttl = op
            self.db.table(table).insert(row, ttl=ttl)
            self._model_insert(table, row, self.now + ttl)
        elif kind == "immortal":
            _, table, row = op
            self.db.table(table).insert(row)
            # A lifetime-less insert is immortal -- except on the
            # since-last-modification table, whose default idle timeout
            # stamps every insert that names neither expires_at nor ttl.
            self._model_insert(
                table, row,
                self.now + _SLM_TTL if table == "slm" else math.inf,
            )
        elif kind == "renew":
            _, table, row, ttl = op
            self.db.table(table).renew(row, ttl)
            self._model_insert(table, row, self.now + ttl)
        elif kind == "override":
            _, table, row, ttl = op
            self.db.table(table).override(row, ttl=ttl)
            # Last-write, not max-merge: the override sets the stored
            # expiration exactly (ttl=0 -> expired as of now, invisible).
            self.model[table][row] = self.now + ttl
        elif kind == "delete":
            _, table, row = op
            self.db.table(table).delete(row)
            self.model[table].pop(row, None)
        elif kind == "touch":
            _, table, row = op
            touched = self.db.table(table).touch(row)
            current = self.model[table].get(row)
            if table == "slm" and current is not None and current > self.now:
                # Live on the idle-timeout table: the timer restarts
                # (max-merge, so a longer explicit lifetime survives).
                self.model[table][row] = max(current, self.now + _SLM_TTL)
                if touched is None:
                    raise CheckFailed(
                        f"touch on live slm row {row} was refused"
                    )
            elif touched is not None:
                raise CheckFailed(
                    f"touch on {table}{row} renewed a row the oracle "
                    f"considers {'dead' if table == 'slm' else 'untouchable'}"
                )
        elif kind == "advance":
            _, delta = op
            self.db.tick(delta)
            self.now += delta
        elif kind == "vacuum":
            _, table = op
            self.db.table(table).vacuum()
        elif kind == "txn":
            _, table, subops, poison = op
            self._apply_txn(table, subops, poison)
        elif kind == "crash":
            self._crash(op[1])
        elif kind == "checkpoint":
            self._require_wal(kind)
            self.db.checkpoint()
        elif kind == "compact":
            self._require_wal(kind)
            self.db.compact_wal()
        elif kind == "view":
            _, name = op
            got = set(self.db.view(name).read().rows())
            expected = self._expected_view(name)
            if got != expected:
                raise CheckFailed(
                    f"view {name} read {sorted(got)} != "
                    f"oracle {sorted(expected)}"
                )
        elif kind == "sql":
            _, table, key = op
            if key is None:
                text = f"SELECT * FROM {table}"
                expected = set(self._visible(table))
            else:
                text = f"SELECT * FROM {table} WHERE k = {key}"
                expected = {
                    row for row in self._visible(table) if row[0] == key
                }
            got = set(execute_sql(self.db, text).rows)
            if got != expected:
                raise CheckFailed(
                    f"{text!r} returned {sorted(got)} != "
                    f"oracle {sorted(expected)}"
                )
        else:  # pragma: no cover - generator and apply must stay in sync
            raise ValueError(f"unknown op kind {kind!r}")

    def _model_insert(self, table: str, row: tuple, expires: float) -> None:
        # The engine's max-merge rule: a duplicate keeps the later
        # expiration.  A physically-retained expired row (lazy policy)
        # merges the same way, because its old expiration <= now < new.
        current = self.model[table].get(row)
        self.model[table][row] = (
            expires if current is None else max(current, expires)
        )

    def _require_wal(self, kind: str) -> None:
        if self._wal_dir is None:
            raise ValueError(
                f"op {kind!r} needs a WAL harness (crash_points=True)"
            )

    def _crash(self, mode: str) -> None:
        """Drop the in-memory database and recover from disk.

        The oracle is untouched: it only ever advances after an op is
        acknowledged, so it already equals committed-and-unexpired state.
        ``mode="torn"`` simulates a crash mid-append by writing a partial
        frame of the *next hypothetical* record -- unacknowledged work, so
        recovery discarding it keeps the oracle consistent.
        """
        self._require_wal("crash")
        self.db.close()
        if mode == "torn":
            log_path = os.path.join(self._wal_dir, "wal.log")
            with open(log_path, "ab") as handle:
                # A header promising 96 payload bytes of which only a few
                # reached disk before the "power went out".
                handle.write(struct.pack(">II", 96, 0) + b"interrupted")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # the torn-tail warning is the point
            self.db = recover_database(
                self._wal_dir,
                fsync="never",
                default_removal_policy=self._policy,
                check_invariants=True,
                metrics=self.db.metrics,
            )
        # recover_database already ran verify(strict=True, deep=True);
        # the caller's post-op check() adds the oracle differential.
        self._register_triggers()

    def _apply_txn(self, table: str, subops: tuple, poison: bool) -> None:
        txn = self.db.transaction()
        for sub in subops:
            if sub[0] == "insert":
                txn.insert(table, sub[1], ttl=sub[2])
            else:
                txn.delete(table, sub[1])
        if poison:
            # An insert expiring "now" is rejected at apply time, so the
            # commit must abort and roll the earlier subops back through
            # every derived structure.
            txn.insert(table, (_KEYS, _VALUES), expires_at=self.db.now)
            try:
                txn.commit()
            except RelationError:
                return  # aborted as intended; the oracle is unchanged
            raise CheckFailed("poisoned transaction committed")
        txn.commit()
        for sub in subops:
            if sub[0] == "insert":
                self._model_insert(table, sub[1], self.now + sub[2])
            else:
                self.model[table].pop(sub[1], None)

    # -- post-op checks -------------------------------------------------

    def check(self) -> None:
        self.db.verify(strict=True)
        for table in _TABLES:
            visible = self._visible(table)
            got = set(self.db.table(table).read().rows())
            if got != set(visible):
                raise CheckFailed(
                    f"table {table} reads {sorted(got)} != "
                    f"oracle {sorted(visible)}"
                )
            relation = self.db.table(table).relation
            for row, expires in visible.items():
                texp = relation.expiration_or_none(row)
                if texp is None:
                    raise CheckFailed(
                        f"table {table} lost visible row {row}"
                    )
                if expires is math.inf:
                    if not texp.is_infinite:
                        raise CheckFailed(
                            f"table {table} row {row}: expected immortal, "
                            f"stored {texp}"
                        )
                elif texp.is_infinite or texp.value != expires:
                    raise CheckFailed(
                        f"table {table} row {row}: expected expiration "
                        f"{expires}, stored {texp}"
                    )
        for entry in self.fired:
            table, row, texp, fired_at = entry
            if entry in self._fired_seen:
                continue
            if texp > fired_at:
                raise CheckFailed(
                    f"trigger on {table}{row} fired at {fired_at} before "
                    f"its expiration {texp}"
                )
            self._fired_seen.add(entry)
        if len(self.fired) != len(self._fired_seen):
            duplicates = len(self.fired) - len(self._fired_seen)
            raise CheckFailed(
                f"{duplicates} duplicate ON-EXPIRE firing(s): a "
                f"(table, row, texp) must fire at most once"
            )


# -- running and shrinking ---------------------------------------------------


def _replay(
    ops: List[tuple],
    policy: str,
    ops_counter=None,
    crash_points: bool = False,
    registry=None,
) -> Tuple[int, Optional[FuzzFailure]]:
    """Run ``ops`` from scratch; returns ``(ops_run, failure_or_None)``.

    With ``crash_points=True`` the harness runs on a write-ahead log in a
    scratch directory, removed when the replay finishes -- every shrink
    candidate recovers from its own blank slate, keeping replays
    independent and deterministic.  ``registry`` makes the harness
    database publish its engine metrics (``repro_wal_*`` included) there.
    """
    wal_dir = (
        tempfile.mkdtemp(prefix="repro-fuzz-wal-") if crash_points else None
    )
    harness = _Harness(_POLICIES[policy], wal_dir=wal_dir, registry=registry)
    try:
        for step, op in enumerate(ops):
            try:
                harness.apply(op)
                harness.check()
            except Exception as error:  # noqa: BLE001 - every breakage counts
                return step, FuzzFailure(step, op, error)
            if ops_counter is not None:
                ops_counter.labels(op[0]).inc()
        return len(ops), None
    finally:
        if wal_dir is not None:
            harness.db.close()
            shutil.rmtree(wal_dir, ignore_errors=True)


def _shrink(
    ops: List[tuple],
    policy: str,
    replay_counter=None,
    crash_points: bool = False,
) -> List[tuple]:
    """ddmin-style greedy chunk removal to a locally-minimal failing list."""

    def fails(candidate: List[tuple]) -> bool:
        if replay_counter is not None:
            replay_counter.inc()
        return _replay(candidate, policy, crash_points=crash_points)[1] is not None

    current = list(ops)
    chunk = max(1, len(current) // 2)
    while True:
        progress = False
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + chunk:]
            if candidate and fails(candidate):
                current = candidate
                progress = True
            else:
                index += chunk
        if not progress:
            if chunk == 1:
                return current
            chunk = max(1, chunk // 2)


def run_fuzz(
    seed: int,
    ops: int = 2000,
    policy: str = "eager",
    registry=None,
    shrink: bool = True,
    crash_points: bool = False,
) -> FuzzReport:
    """One fuzz run: generate, replay, and (on failure) shrink.

    ``registry`` (a :class:`~repro.obs.registry.MetricsRegistry`) receives
    the ``repro_check_*`` families; ``shrink=False`` skips minimisation
    (useful when the caller only wants the verdict); ``crash_points=True``
    runs the database on a write-ahead log and injects simulated crashes,
    torn log tails, checkpoints, and log compactions into the op mix,
    checking every recovery against the dict oracle.
    """
    if policy not in _POLICIES:
        raise ValueError(f"policy must be one of {sorted(_POLICIES)}")
    families = (
        declare_check_families(registry) if registry is not None else None
    )
    ops_counter, failures, replays, shrunk_gauge = (
        families if families is not None else (None, None, None, None)
    )
    sequence = generate_ops(random.Random(seed), ops, crash_points)
    ops_run, failure = _replay(
        sequence, policy, ops_counter, crash_points=crash_points,
        registry=registry,
    )
    shrunk: Optional[List[tuple]] = None
    if failure is not None:
        if failures is not None:
            failures.labels(policy).inc()
        if shrink:
            shrunk = _shrink(
                sequence[: failure.step + 1],
                policy,
                replays,
                crash_points=crash_points,
            )
            if shrunk_gauge is not None:
                shrunk_gauge.set(len(shrunk))
    return FuzzReport(
        seed=seed,
        policy=policy,
        ops_requested=ops,
        ops_run=ops_run,
        failure=failure,
        shrunk=shrunk,
    )

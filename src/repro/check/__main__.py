"""CI smoke entry point: ``python -m repro.check --ops 2000 --seed N``.

Runs the stateful fuzzer (both removal policies by default) with the full
invariant catalogue armed after every operation, prints one summary line
per run plus the ``repro_check_*`` metric families, and -- on failure --
the shrunk minimal reproducing op sequence.  Exit status 1 on any failure,
so the CI step fails loudly with the repro in the log.
"""

from __future__ import annotations

import argparse
import sys

from repro.check.stateful import run_fuzz
from repro.obs.registry import MetricsRegistry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Stateful differential fuzz + invariant audit smoke run.",
    )
    parser.add_argument(
        "--ops", type=int, default=2000,
        help="operations per run (default: 2000)",
    )
    parser.add_argument(
        "--seed", type=int, default=20060405,
        help="PRNG seed (default: 20060405)",
    )
    parser.add_argument(
        "--policy", choices=("eager", "lazy", "both"), default="both",
        help="removal policy to exercise (default: both)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without minimising them",
    )
    parser.add_argument(
        "--crash-points", action="store_true",
        help="run on a write-ahead log and inject simulated crashes, "
             "torn log tails, checkpoints, and compactions",
    )
    args = parser.parse_args(argv)

    registry = MetricsRegistry()
    policies = ("eager", "lazy") if args.policy == "both" else (args.policy,)
    failed = False
    for policy in policies:
        report = run_fuzz(
            args.seed,
            ops=args.ops,
            policy=policy,
            registry=registry,
            shrink=not args.no_shrink,
            crash_points=args.crash_points,
        )
        print(report.summary())
        failed = failed or not report.ok

    print()
    for line in registry.to_prom_text().splitlines():
        if "repro_check" in line:
            print(line)
        elif args.crash_points and "repro_wal" in line:
            print(line)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""Tests for the interactive SQL shell."""

import io

import pytest

from repro.cli import format_result, main, run_statement, run_stream
from repro.engine.database import Database
from repro.sql.executor import SqlResult, execute_sql


@pytest.fixture
def db():
    return Database()


def run(db, text, interactive=False):
    out = io.StringIO()
    errors = run_stream(db, io.StringIO(text), out, interactive=interactive)
    return errors, out.getvalue()


class TestFormatResult:
    def test_select_table_rendering(self, db):
        execute_sql(db, "CREATE TABLE t (a, b)")
        execute_sql(db, "INSERT INTO t VALUES (1, 'x')")
        text = format_result(execute_sql(db, "SELECT * FROM t"))
        assert "a" in text and "b" in text
        assert "'x'" in text
        assert "(1 row(s))" in text

    def test_empty_select(self, db):
        execute_sql(db, "CREATE TABLE t (a)")
        text = format_result(execute_sql(db, "SELECT * FROM t"))
        assert text == "(no rows)"

    def test_non_select(self, db):
        text = format_result(execute_sql(db, "CREATE TABLE t (a)"))
        assert "created" in text


class TestRunStatement:
    def test_success(self, db):
        out = io.StringIO()
        assert run_statement(db, "CREATE TABLE t (a)", out)
        assert "created" in out.getvalue()

    def test_error_reported_not_raised(self, db):
        out = io.StringIO()
        assert not run_statement(db, "SELECT * FROM missing", out)
        assert "error:" in out.getvalue()

    def test_blank_is_noop(self, db):
        out = io.StringIO()
        assert run_statement(db, "   ", out)
        assert out.getvalue() == ""


class TestRunStream:
    def test_script(self, db):
        errors, output = run(
            db,
            "CREATE TABLE t (a);\nINSERT INTO t VALUES (1) EXPIRES AT 5;\n"
            "SELECT * FROM t;\nADVANCE TO 5;\nSELECT * FROM t;",
        )
        assert errors == 0
        assert "(1 row(s))" in output
        assert "(no rows)" in output

    def test_multiline_statement(self, db):
        errors, output = run(db, "CREATE TABLE t\n  (a, b);\nSHOW TABLES;")
        assert errors == 0
        assert "t" in output

    def test_script_mode_stops_on_error(self, db):
        errors, output = run(db, "BOGUS;\nCREATE TABLE t (a);")
        assert errors == 1
        assert not db.has_table("t")

    def test_interactive_mode_continues_on_error(self, db):
        errors, output = run(db, "BOGUS;\nCREATE TABLE t (a);", interactive=True)
        assert errors == 1
        assert db.has_table("t")
        assert "sql>" in output

    def test_interactive_quit(self, db):
        errors, output = run(db, "quit\n", interactive=True)
        assert errors == 0

    def test_trailing_statement_without_semicolon(self, db):
        errors, output = run(db, "CREATE TABLE t (a)")
        assert errors == 0
        assert db.has_table("t")


class TestMain:
    def test_script_file(self, tmp_path, capsys):
        script = tmp_path / "setup.sql"
        script.write_text("CREATE TABLE t (a);\nSHOW TABLES;\n")
        assert main([str(script)]) == 0
        captured = capsys.readouterr()
        assert "t" in captured.out

    def test_missing_file(self, capsys):
        assert main(["/nonexistent/x.sql"]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        assert "SQL shell" in capsys.readouterr().out

"""Tests for the SQL lexer."""

import pytest

from repro.errors import SqlLexError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text) if t.type is not TokenType.EOF]


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("select SELECT Select") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "SELECT"),
        ]

    def test_identifiers_keep_case(self):
        assert kinds("Pol my_table _x9") == [
            (TokenType.IDENT, "Pol"),
            (TokenType.IDENT, "my_table"),
            (TokenType.IDENT, "_x9"),
        ]

    def test_integers_and_floats(self):
        assert kinds("42 3.5") == [
            (TokenType.NUMBER, 42),
            (TokenType.NUMBER, 3.5),
        ]

    def test_integer_then_dot(self):
        # "P.deg" style qualification: dot stays a symbol after an ident.
        assert kinds("P.deg") == [
            (TokenType.IDENT, "P"),
            (TokenType.SYMBOL, "."),
            (TokenType.IDENT, "deg"),
        ]

    def test_strings(self):
        assert kinds("'hello'") == [(TokenType.STRING, "hello")]

    def test_string_escaping(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_unterminated_string(self):
        with pytest.raises(SqlLexError):
            tokenize("'oops")

    def test_symbols(self):
        assert [v for _, v in kinds("<= >= != <> = < > ( ) , ; *")] == [
            "<=", ">=", "!=", "!=", "=", "<", ">", "(", ")", ",", ";", "*",
        ]

    def test_comments_skipped(self):
        assert kinds("SELECT -- comment\n1") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.NUMBER, 1),
        ]

    def test_unknown_character(self):
        with pytest.raises(SqlLexError) as info:
            tokenize("SELECT @")
        assert info.value.position == 7

    def test_eof_token(self):
        tokens = tokenize("x")
        assert tokens[-1].type is TokenType.EOF

    def test_positions(self):
        tokens = tokenize("SELECT deg")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

"""Tests for the SQL parser."""

import pytest

from repro.errors import SqlParseError, UnsupportedSqlError
from repro.sql.ast import (
    AdvanceTime,
    AggregateCall,
    AndCondition,
    ColumnRef,
    CompareCondition,
    CreateTable,
    CreateView,
    DeleteStatement,
    DropTable,
    DropView,
    InsertStatement,
    NotCondition,
    OrCondition,
    SelectQuery,
    SetOperation,
    ShowTables,
    ShowViews,
    Star,
    VacuumStatement,
)
from repro.sql.parser import parse_sql, parse_statements


class TestDdl:
    def test_create_table(self):
        stmt = parse_sql("CREATE TABLE Pol (uid, deg)")
        assert stmt == CreateTable(name="Pol", columns=("uid", "deg"))

    def test_create_view_with_policy(self):
        stmt = parse_sql(
            "CREATE MATERIALIZED VIEW v AS SELECT uid FROM Pol WITH POLICY PATCH"
        )
        assert isinstance(stmt, CreateView)
        assert stmt.policy == "patch"

    def test_plain_view_unsupported(self):
        with pytest.raises(UnsupportedSqlError):
            parse_sql("CREATE VIEW v AS SELECT uid FROM Pol")

    def test_drop(self):
        assert parse_sql("DROP TABLE t") == DropTable(name="t")
        assert parse_sql("DROP VIEW v") == DropView(name="v")

    def test_show(self):
        assert parse_sql("SHOW TABLES") == ShowTables()
        assert parse_sql("SHOW VIEWS") == ShowViews()


class TestDml:
    def test_insert_expires_at(self):
        stmt = parse_sql("INSERT INTO Pol VALUES (1, 25) EXPIRES AT 10")
        assert stmt == InsertStatement(
            table="Pol", rows=(((1, 25)),), expires_at=10
        ) or stmt.rows == ((1, 25),)
        assert stmt.expires_at == 10
        assert stmt.ttl is None

    def test_insert_expires_in(self):
        stmt = parse_sql("INSERT INTO Pol VALUES (1, 25) EXPIRES IN 7")
        assert stmt.ttl == 7

    def test_insert_no_expiration(self):
        stmt = parse_sql("INSERT INTO Pol VALUES (1, 25)")
        assert stmt.expires_at is None and stmt.ttl is None

    def test_insert_multiple_rows(self):
        stmt = parse_sql("INSERT INTO t VALUES (1, 'a'), (2, 'b') EXPIRES AT 9")
        assert stmt.rows == ((1, "a"), (2, "b"))

    def test_insert_string_values(self):
        stmt = parse_sql("INSERT INTO t VALUES ('x')")
        assert stmt.rows == (("x",),)

    def test_delete_where(self):
        stmt = parse_sql("DELETE FROM Pol WHERE uid = 1")
        assert isinstance(stmt, DeleteStatement)
        assert stmt.where == CompareCondition(ColumnRef("uid"), "=", 1)

    def test_delete_all(self):
        assert parse_sql("DELETE FROM Pol").where is None


class TestSelect:
    def test_star(self):
        stmt = parse_sql("SELECT * FROM Pol")
        assert isinstance(stmt.items[0].expression, Star)
        assert stmt.source.name == "Pol"

    def test_columns_with_aliases(self):
        stmt = parse_sql("SELECT uid AS u, deg FROM Pol")
        assert stmt.items[0].alias == "u"
        assert stmt.items[1].expression == ColumnRef("deg")

    def test_where_precedence(self):
        stmt = parse_sql("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, OrCondition)
        assert isinstance(stmt.where.parts[1], AndCondition)

    def test_parentheses(self):
        stmt = parse_sql("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(stmt.where, AndCondition)

    def test_not(self):
        stmt = parse_sql("SELECT * FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, NotCondition)

    def test_join(self):
        stmt = parse_sql(
            "SELECT P.uid FROM Pol AS P JOIN El AS E ON P.uid = E.uid"
        )
        assert len(stmt.joins) == 1
        assert stmt.joins[0].source.alias == "E"
        condition = stmt.joins[0].condition
        assert condition == CompareCondition(
            ColumnRef("uid", "P"), "=", ColumnRef("uid", "E")
        )

    def test_implicit_alias(self):
        stmt = parse_sql("SELECT * FROM Pol P")
        assert stmt.source.alias == "P"

    def test_group_by_with_aggregates(self):
        stmt = parse_sql("SELECT deg, COUNT(*) FROM Pol GROUP BY deg")
        assert stmt.group_by == (ColumnRef("deg"),)
        assert stmt.items[1].expression == AggregateCall("count", None)

    def test_aggregate_with_argument(self):
        stmt = parse_sql("SELECT MIN(deg) FROM Pol")
        assert stmt.items[0].expression == AggregateCall("min", ColumnRef("deg"))

    def test_sum_star_rejected(self):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT SUM(*) FROM Pol")

    def test_strategy_clause(self):
        stmt = parse_sql(
            "SELECT deg, COUNT(*) FROM Pol GROUP BY deg WITH STRATEGY conservative"
        )
        assert stmt.strategy == "conservative"

    def test_set_operations(self):
        stmt = parse_sql("SELECT uid FROM Pol EXCEPT SELECT uid FROM El")
        assert isinstance(stmt, SetOperation)
        assert stmt.operator == "except"

    def test_chained_set_operations_left_assoc(self):
        stmt = parse_sql(
            "SELECT uid FROM A UNION SELECT uid FROM B INTERSECT SELECT uid FROM C"
        )
        assert isinstance(stmt, SetOperation)
        assert stmt.operator == "intersect"
        assert isinstance(stmt.left, SetOperation)
        assert stmt.left.operator == "union"

    def test_union_all_rejected(self):
        with pytest.raises(UnsupportedSqlError):
            parse_sql("SELECT uid FROM A UNION ALL SELECT uid FROM B")


class TestTimeControl:
    def test_advance_to(self):
        assert parse_sql("ADVANCE TO 10") == AdvanceTime(to=10)

    def test_advance_by(self):
        assert parse_sql("ADVANCE BY 5") == AdvanceTime(by=5)

    def test_tick(self):
        assert parse_sql("TICK") == AdvanceTime(by=1)

    def test_vacuum(self):
        assert parse_sql("VACUUM") == VacuumStatement(table=None)
        assert parse_sql("VACUUM Pol") == VacuumStatement(table="Pol")


class TestScripts:
    def test_multiple_statements(self):
        statements = parse_statements(
            "CREATE TABLE t (a); INSERT INTO t VALUES (1); SELECT * FROM t;"
        )
        assert len(statements) == 3

    def test_parse_sql_rejects_scripts(self):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT * FROM t; SELECT * FROM t")

    def test_empty(self):
        with pytest.raises(SqlParseError):
            parse_sql("")


class TestErrors:
    def test_garbage(self):
        with pytest.raises(SqlParseError):
            parse_sql("FLY ME TO THE MOON")

    def test_missing_from(self):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT uid")

    def test_bad_insert(self):
        with pytest.raises(SqlParseError):
            parse_sql("INSERT INTO t VALUES (1) EXPIRES SOON")

    def test_error_mentions_offset(self):
        with pytest.raises(SqlParseError) as info:
            parse_sql("SELECT FROM t")
        assert "offset" in str(info.value)

"""Grammar-driven SQL fuzzing: generated statements never crash the stack.

Every generated statement must either execute cleanly or raise a
:class:`~repro.errors.ReproError` subclass with a message -- never an
arbitrary exception out of the lexer/parser/planner/evaluator.  Successful
SELECTs must return a relation whose arity matches the select list.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.errors import ReproError
from repro.sql import execute_script, execute_sql

COLUMNS = ["uid", "deg"]
TABLES = ["Pol", "El"]
AGGS = ["COUNT(*)", "MIN(deg)", "MAX(deg)", "SUM(deg)", "AVG(deg)"]
COMPARES = ["=", "!=", "<", "<=", ">", ">="]


def make_db():
    db = Database()
    execute_script(
        db,
        """
        CREATE TABLE Pol (uid, deg);
        CREATE TABLE El (uid, deg);
        INSERT INTO Pol VALUES (1, 25) EXPIRES AT 10;
        INSERT INTO Pol VALUES (2, 25) EXPIRES AT 15;
        INSERT INTO El VALUES (1, 75) EXPIRES AT 5;
        """,
    )
    return db


@st.composite
def conditions(draw, depth=0):
    kind = draw(st.sampled_from(
        ["cmp", "cmp", "cmp", "and", "or", "not", "in"] if depth < 2 else ["cmp"]
    ))
    if kind == "cmp":
        left = draw(st.sampled_from(COLUMNS))
        op = draw(st.sampled_from(COMPARES))
        right = draw(st.one_of(st.integers(0, 99), st.sampled_from(COLUMNS)))
        return f"{left} {op} {right}"
    if kind == "and":
        return f"({draw(conditions(depth + 1))} AND {draw(conditions(depth + 1))})"
    if kind == "or":
        return f"({draw(conditions(depth + 1))} OR {draw(conditions(depth + 1))})"
    if kind == "not":
        return f"NOT {draw(conditions(depth + 1))}"
    table = draw(st.sampled_from(TABLES))
    column = draw(st.sampled_from(COLUMNS))
    negated = "NOT " if draw(st.booleans()) else ""
    return f"{column} {negated}IN (SELECT {column} FROM {table})"


@st.composite
def select_statements(draw):
    table = draw(st.sampled_from(TABLES))
    grouped = draw(st.booleans())
    if grouped:
        group_col = draw(st.sampled_from(COLUMNS))
        agg = draw(st.sampled_from(AGGS))
        items = f"{group_col}, {agg}"
        tail = f" GROUP BY {group_col}"
        if draw(st.booleans()):
            tail += f" HAVING {agg} {draw(st.sampled_from(COMPARES))} {draw(st.integers(0, 5))}"
    else:
        picked = draw(st.lists(st.sampled_from(COLUMNS + ["*"]), min_size=1, max_size=2))
        if "*" in picked:
            picked = ["*"]
        items = ", ".join(picked)
        tail = ""
    where = ""
    if draw(st.booleans()):
        where = f" WHERE {draw(conditions())}"
    order = ""
    if not grouped and draw(st.booleans()) and items != "*":
        order = f" ORDER BY {items.split(', ')[0]}"
        if draw(st.booleans()):
            order += " DESC"
    limit = f" LIMIT {draw(st.integers(0, 5))}" if draw(st.booleans()) else ""
    return f"SELECT {items} FROM {table}{where}{tail}{order}{limit}"


@st.composite
def statements(draw):
    kind = draw(st.sampled_from(["select", "select", "setop", "dml", "meta"]))
    if kind == "select":
        return draw(select_statements())
    if kind == "setop":
        op = draw(st.sampled_from(["UNION", "EXCEPT", "INTERSECT"]))
        col_name = draw(st.sampled_from(COLUMNS))
        return (
            f"SELECT {col_name} FROM Pol {op} SELECT {col_name} FROM El"
        )
    if kind == "dml":
        choice = draw(st.sampled_from(["insert", "delete", "renew"]))
        if choice == "insert":
            uid = draw(st.integers(0, 99))
            deg = draw(st.integers(0, 99))
            expires = draw(st.sampled_from(["", " EXPIRES AT 50", " EXPIRES IN 9"]))
            return f"INSERT INTO Pol VALUES ({uid}, {deg}){expires}"
        if choice == "delete":
            return f"DELETE FROM Pol WHERE {draw(conditions())}"
        return f"RENEW Pol EXPIRES IN {draw(st.integers(1, 30))}"
    return draw(st.sampled_from(
        ["SHOW TABLES", "SHOW VIEWS", "DESCRIBE Pol", "VACUUM", "TICK",
         "ADVANCE BY 2"]
    ))


class TestFuzz:
    @settings(max_examples=200, deadline=None)
    @given(statement=statements())
    def test_never_crashes(self, statement):
        db = make_db()
        try:
            result = execute_sql(db, statement)
        except ReproError as error:
            assert str(error)  # a clear message, not a bare raise
            return
        if result.kind == "select":
            assert result.relation is not None
            assert result.rows is not None
            assert len(result.rows) <= len(result.relation) or result.rows == []

    @settings(max_examples=60, deadline=None)
    @given(statement=select_statements(), advance=st.integers(0, 20))
    def test_selects_stable_across_time_jumps(self, statement, advance):
        """Evaluating after a clock advance still executes cleanly."""
        db = make_db()
        db.advance_to(advance)
        try:
            result = execute_sql(db, statement)
        except ReproError:
            return
        assert result.relation is not None

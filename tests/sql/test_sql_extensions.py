"""Tests for the SQL dialect extensions: HAVING, ORDER BY / LIMIT,
[NOT] IN subqueries, RENEW, DESCRIBE."""

import pytest

from repro.core.timestamps import ts
from repro.engine.database import Database
from repro.errors import SqlParseError, SqlPlanError
from repro.sql import execute_script


@pytest.fixture
def db():
    database = Database()
    execute_script(
        database,
        """
        CREATE TABLE Pol (uid, deg);
        CREATE TABLE El (uid, deg);
        INSERT INTO Pol VALUES (1, 25) EXPIRES AT 10;
        INSERT INTO Pol VALUES (2, 25) EXPIRES AT 15;
        INSERT INTO Pol VALUES (3, 35) EXPIRES AT 10;
        INSERT INTO Pol VALUES (4, 35) EXPIRES AT 12;
        INSERT INTO Pol VALUES (5, 45) EXPIRES AT 12;
        INSERT INTO El VALUES (1, 75) EXPIRES AT 5;
        INSERT INTO El VALUES (2, 85) EXPIRES AT 3;
        """,
    )
    return database


class TestHaving:
    def test_filters_groups(self, db):
        result = db.sql(
            "SELECT deg, COUNT(*) FROM Pol GROUP BY deg HAVING COUNT(*) > 1"
        )
        assert sorted(result.relation.rows()) == [(25, 2), (35, 2)]

    def test_on_group_column(self, db):
        result = db.sql(
            "SELECT deg, COUNT(*) FROM Pol GROUP BY deg HAVING deg >= 35"
        )
        assert sorted(result.relation.rows()) == [(35, 2), (45, 1)]

    def test_with_alias(self, db):
        result = db.sql(
            "SELECT deg, COUNT(*) AS n FROM Pol GROUP BY deg HAVING n = 1"
        )
        assert sorted(result.relation.rows()) == [(45, 1)]

    def test_combined_conditions(self, db):
        result = db.sql(
            "SELECT deg, COUNT(*) FROM Pol GROUP BY deg "
            "HAVING COUNT(*) > 1 AND deg < 30"
        )
        assert sorted(result.relation.rows()) == [(25, 2)]

    def test_requires_grouping(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT deg FROM Pol HAVING deg > 1")

    def test_aggregate_must_be_in_select_list(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT deg, COUNT(*) FROM Pol GROUP BY deg HAVING MIN(uid) = 1")

    def test_aggregate_outside_having_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT deg FROM Pol WHERE COUNT(*) > 1")


class TestOrderByLimit:
    def test_order_desc(self, db):
        result = db.sql("SELECT uid, deg FROM Pol ORDER BY deg DESC, uid ASC")
        assert result.rows == [(5, 45), (3, 35), (4, 35), (1, 25), (2, 25)]

    def test_limit(self, db):
        result = db.sql("SELECT uid FROM Pol ORDER BY uid LIMIT 2")
        assert result.rows == [(1,), (2,)]
        # The underlying relation is the full set-semantics result.
        assert len(result.relation) == 5

    def test_limit_without_order(self, db):
        result = db.sql("SELECT uid FROM Pol LIMIT 3")
        assert len(result.rows) == 3

    def test_default_presentation_is_deterministic(self, db):
        first = db.sql("SELECT uid FROM Pol").rows
        second = db.sql("SELECT uid FROM Pol").rows
        assert first == second

    def test_order_by_unknown_column(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT uid FROM Pol ORDER BY deg")

    def test_rejected_in_set_operations(self, db):
        with pytest.raises(SqlPlanError):
            db.sql(
                "SELECT uid FROM Pol ORDER BY uid "
                "EXCEPT SELECT uid FROM El"
            )


class TestInSubqueries:
    def test_in_plans_to_semijoin(self, db):
        result = db.sql(
            "SELECT uid, deg FROM Pol WHERE uid IN (SELECT uid FROM El)"
        )
        assert sorted(result.relation.rows()) == [(1, 25), (2, 25)]

    def test_not_in_plans_to_antijoin(self, db):
        result = db.sql(
            "SELECT uid, deg FROM Pol WHERE uid NOT IN (SELECT uid FROM El)"
        )
        assert sorted(result.relation.rows()) == [(3, 35), (4, 35), (5, 45)]

    def test_not_in_reappearance_over_time(self, db):
        sql = "SELECT uid FROM Pol WHERE uid NOT IN (SELECT uid FROM El)"
        db.sql("ADVANCE TO 5")  # both El matches expired
        assert sorted(db.sql(sql).relation.rows()) == [(1,), (2,), (3,), (4,), (5,)]

    def test_combined_with_plain_predicate(self, db):
        result = db.sql(
            "SELECT uid FROM Pol WHERE deg = 35 AND uid NOT IN (SELECT uid FROM El)"
        )
        assert sorted(result.relation.rows()) == [(3,), (4,)]

    def test_subquery_with_where(self, db):
        result = db.sql(
            "SELECT uid FROM Pol WHERE uid IN (SELECT uid FROM El WHERE deg > 80)"
        )
        assert sorted(result.relation.rows()) == [(2,)]

    def test_in_under_or_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.sql(
                "SELECT uid FROM Pol WHERE deg = 25 OR uid IN (SELECT uid FROM El)"
            )

    def test_multicolumn_subquery_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT uid FROM Pol WHERE uid IN (SELECT uid, deg FROM El)")


class TestInsertSelect:
    def test_carries_derived_expirations(self, db):
        db.sql("CREATE TABLE Hot (deg)")
        db.sql("INSERT INTO Hot SELECT deg FROM Pol")
        # The <25> tuple merged duplicates @10 and @15 -> derived texp 15.
        assert db.table("Hot").relation.expiration_of((25,)) == ts(15)
        assert db.table("Hot").relation.expiration_of((45,)) == ts(12)

    def test_explicit_expires_overrides(self, db):
        db.sql("CREATE TABLE Hot (deg)")
        db.sql("INSERT INTO Hot SELECT deg FROM Pol EXPIRES AT 99")
        assert db.table("Hot").relation.expiration_of((25,)) == ts(99)

    def test_join_min_expirations_carried(self, db):
        db.sql("CREATE TABLE Pairs (p_uid, p_deg, e_uid, e_deg)")
        db.sql("INSERT INTO Pairs SELECT * FROM Pol AS P JOIN El AS E "
               "ON P.uid = E.uid")
        # Join tuples carry min of their parents: uid1 -> min(10, 5) = 5.
        assert db.table("Pairs").relation.expiration_of((1, 25, 1, 75)) == ts(5)

    def test_arity_mismatch_rejected(self, db):
        db.sql("CREATE TABLE Hot (deg)")
        with pytest.raises(SqlPlanError):
            db.sql("INSERT INTO Hot SELECT uid, deg FROM Pol")

    def test_outer_join_rejected_explicitly(self, db):
        from repro.errors import UnsupportedSqlError

        with pytest.raises(UnsupportedSqlError):
            db.sql("SELECT * FROM Pol LEFT JOIN El ON uid = uid")


class TestCreateTableAsSelect:
    def test_schema_and_rows_derived(self, db):
        db.sql("CREATE TABLE Hot AS SELECT uid, deg FROM Pol WHERE deg = 25")
        hot = db.table("Hot")
        assert hot.schema.names == ("uid", "deg")
        assert sorted(hot.read().rows()) == [(1, 25), (2, 25)]

    def test_expirations_carried(self, db):
        db.sql("CREATE TABLE Hot AS SELECT deg FROM Pol")
        assert db.table("Hot").relation.expiration_of((25,)) == ts(15)

    def test_from_set_operation(self, db):
        db.sql("CREATE TABLE W AS SELECT uid FROM Pol EXCEPT SELECT uid FROM El")
        assert sorted(db.table("W").read().rows()) == [(3,), (4,), (5,)]

    def test_duplicate_name_rejected(self, db):
        with pytest.raises(Exception):
            db.sql("CREATE TABLE Pol AS SELECT uid FROM El")


class TestRenew:
    def test_renew_extends_lifetimes(self, db):
        result = db.sql("RENEW Pol EXPIRES IN 50 WHERE deg = 25")
        assert result.rowcount == 2
        assert db.table("Pol").relation.expiration_of((1, 25)) == ts(50)
        assert db.table("Pol").relation.expiration_of((2, 25)) == ts(50)

    def test_renew_never_shortens(self, db):
        db.sql("RENEW Pol EXPIRES AT 1 WHERE uid = 2")
        # Max-merge: 15 > 1, the old expiration wins.
        assert db.table("Pol").relation.expiration_of((2, 25)) == ts(15)

    def test_renew_all(self, db):
        assert db.sql("RENEW Pol EXPIRES AT 99").rowcount == 5

    def test_renew_skips_expired(self, db):
        db.sql("ADVANCE TO 10")
        result = db.sql("RENEW Pol EXPIRES AT 99")
        assert result.rowcount == 3  # only uids 2, 4, 5 are still alive

    def test_renew_requires_expires(self, db):
        with pytest.raises(SqlParseError):
            db.sql("RENEW Pol")


class TestExplain:
    def test_explains_difference(self, db):
        message = db.sql(
            "EXPLAIN SELECT uid FROM Pol EXCEPT SELECT uid FROM El"
        ).message
        assert "non_monotonic" in message
        assert "texp(e):    3" in message
        assert "valid in:" in message

    def test_explains_monotonic(self, db):
        message = db.sql("EXPLAIN SELECT deg FROM Pol").message
        assert "class:      monotonic" in message
        assert "texp(e):    inf" in message

    def test_shows_rewrite(self, db):
        message = db.sql(
            "EXPLAIN SELECT uid FROM Pol WHERE deg = 25 "
            "EXCEPT SELECT uid FROM El"
        ).message
        assert "plan:" in message and "rewritten:" in message


class TestDescribe:
    def test_table(self, db):
        result = db.sql("DESCRIBE Pol")
        assert "uid, deg" in result.message
        assert "5 live" in result.message
        assert result.names == ("uid", "deg")

    def test_view(self, db):
        db.sql("CREATE MATERIALIZED VIEW v AS SELECT uid FROM Pol EXCEPT "
               "SELECT uid FROM El WITH POLICY PATCH")
        result = db.sql("DESCRIBE v")
        assert "policy=patch" in result.message
        assert "monotonic=False" in result.message
        assert "texp(e)=inf" in result.message

    def test_unknown(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("DESCRIBE nothing")

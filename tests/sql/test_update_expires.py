"""``UPDATE table EXPIRES {AT t | IN n} [WHERE ...]`` -- SQL revocation.

The dialect's UPDATE touches only expirations (the one mutable "column"
the expiration model adds); unlike ``RENEW`` it is last-write, so it can
shorten a lifetime down to ``IN 0`` for an immediate revoke.
"""

import pytest

from repro.core.timestamps import ts
from repro.engine.database import Database
from repro.errors import SqlError
from repro.sql.ast import OverrideStatement
from repro.sql.executor import execute_sql
from repro.sql.parser import parse_sql, parse_statements


@pytest.fixture
def db():
    database = Database()
    table = database.create_table("G", ["subject", "relation"])
    table.insert(("alice", "read"), expires_at=100)
    table.insert(("bob", "read"), expires_at=100)
    return database


class TestParsing:
    def test_update_expires_at(self):
        (stmt,) = parse_statements("UPDATE G EXPIRES AT 40;")
        assert isinstance(stmt, OverrideStatement)
        assert stmt.table == "G"
        assert stmt.expires_at == 40
        assert stmt.ttl is None and stmt.where is None

    def test_update_expires_in_with_where(self):
        stmt = parse_sql("UPDATE G EXPIRES IN 0 WHERE subject = 'alice';")
        assert stmt.ttl == 0
        assert stmt.where is not None

    def test_malformed_updates_rejected(self):
        for text in (
            "UPDATE G;",
            "UPDATE G EXPIRES;",
            "UPDATE G EXPIRES AT;",
            "UPDATE EXPIRES AT 4;",
        ):
            with pytest.raises(SqlError):
                parse_sql(text)


class TestExecution:
    def test_where_scoped_revocation(self, db):
        result = execute_sql(db, "UPDATE G EXPIRES IN 0 WHERE subject = 'alice';")
        assert result.kind == "override"
        assert result.rowcount == 1
        rows = execute_sql(db, "SELECT * FROM G;").rows
        assert rows == [("bob", "read")]

    def test_update_can_shorten_unlike_renew(self, db):
        execute_sql(db, "RENEW G EXPIRES IN 5;")  # max-merge: no-op vs 100
        assert db.table("G").relation.expiration_of(("alice", "read")) == ts(100)
        execute_sql(db, "UPDATE G EXPIRES AT 40;")  # last-write: shortens
        assert db.table("G").relation.expiration_of(("alice", "read")) == ts(40)
        assert db.table("G").relation.expiration_of(("bob", "read")) == ts(40)

    def test_update_into_the_past_is_surfaced(self, db):
        db.tick(10)
        with pytest.raises(Exception, match="past"):
            execute_sql(db, "UPDATE G EXPIRES AT 3;")

    def test_unknown_table_rejected(self, db):
        with pytest.raises(Exception):
            execute_sql(db, "UPDATE Nope EXPIRES IN 1;")

"""End-to-end SQL tests, including the paper's figures driven via SQL."""

import pytest

from repro.engine.database import Database
from repro.engine.views import MaintenancePolicy
from repro.errors import SqlPlanError
from repro.sql import execute_script, execute_sql


@pytest.fixture
def db():
    database = Database()
    execute_script(
        database,
        """
        CREATE TABLE Pol (uid, deg);
        CREATE TABLE El (uid, deg);
        INSERT INTO Pol VALUES (1, 25) EXPIRES AT 10;
        INSERT INTO Pol VALUES (2, 25) EXPIRES AT 15;
        INSERT INTO Pol VALUES (3, 35) EXPIRES AT 10;
        INSERT INTO El VALUES (1, 75) EXPIRES AT 5;
        INSERT INTO El VALUES (2, 85) EXPIRES AT 3;
        INSERT INTO El VALUES (4, 90) EXPIRES AT 2;
        """,
    )
    return database


class TestDdlDml:
    def test_create_show(self, db):
        assert db.sql("SHOW TABLES").names == ("El", "Pol")

    def test_insert_rowcount(self, db):
        result = db.sql("INSERT INTO Pol VALUES (7, 5), (8, 5) EXPIRES IN 3")
        assert result.rowcount == 2

    def test_ttl_relative_to_now(self, db):
        db.sql("ADVANCE TO 4")
        db.sql("INSERT INTO Pol VALUES (9, 5) EXPIRES IN 3")
        assert db.table("Pol").relation.expiration_of((9, 5)) == 7

    def test_delete_where(self, db):
        result = db.sql("DELETE FROM Pol WHERE deg = 25")
        assert result.rowcount == 2
        assert db.statistics.explicit_deletes == 2

    def test_delete_all(self, db):
        assert db.sql("DELETE FROM El").rowcount == 3

    def test_drop_table(self, db):
        db.sql("DROP TABLE El")
        assert db.sql("SHOW TABLES").names == ("Pol",)

    def test_vacuum(self, db):
        # Default removal is eager, so vacuum finds nothing extra.
        assert db.sql("VACUUM").rowcount == 0


class TestQueries:
    def test_projection_figure_2c(self, db):
        rows = sorted(db.sql("SELECT deg FROM Pol").relation.rows())
        assert rows == [(25,), (35,)]

    def test_selection(self, db):
        rows = sorted(db.sql("SELECT uid FROM Pol WHERE deg = 25").relation.rows())
        assert rows == [(1,), (2,)]

    def test_comparison_operators(self, db):
        rows = db.sql("SELECT uid FROM El WHERE deg >= 85").relation
        assert sorted(rows.rows()) == [(2,), (4,)]

    def test_join_figure_2e(self, db):
        result = db.sql(
            "SELECT * FROM Pol AS P JOIN El AS E ON P.uid = E.uid"
        ).relation
        assert sorted(result.rows()) == [(1, 25, 1, 75), (2, 25, 2, 85)]

    def test_join_projection_with_qualified_columns(self, db):
        result = db.sql(
            "SELECT P.deg, E.deg FROM Pol AS P JOIN El AS E ON P.uid = E.uid"
        ).relation
        assert sorted(result.rows()) == [(25, 75), (25, 85)]

    def test_except_figure_3b(self, db):
        rows = db.sql("SELECT uid FROM Pol EXCEPT SELECT uid FROM El").relation
        assert sorted(rows.rows()) == [(3,)]

    def test_union(self, db):
        rows = db.sql("SELECT uid FROM Pol UNION SELECT uid FROM El").relation
        assert sorted(rows.rows()) == [(1,), (2,), (3,), (4,)]

    def test_intersect(self, db):
        rows = db.sql("SELECT uid FROM Pol INTERSECT SELECT uid FROM El").relation
        assert sorted(rows.rows()) == [(1,), (2,)]

    def test_group_by_count_figure_3a(self, db):
        rows = db.sql(
            "SELECT deg, COUNT(*) FROM Pol GROUP BY deg WITH STRATEGY conservative"
        ).relation
        assert sorted(rows.rows()) == [(25, 2), (35, 1)]

    def test_aggregate_without_group_by(self, db):
        rows = db.sql("SELECT COUNT(*) FROM Pol").relation
        assert list(rows.rows()) == [(3,)]

    def test_min_max_sum(self, db):
        assert list(db.sql("SELECT MIN(deg) FROM El").relation.rows()) == [(75,)]
        assert list(db.sql("SELECT MAX(deg) FROM El").relation.rows()) == [(90,)]
        assert list(db.sql("SELECT SUM(deg) FROM El").relation.rows()) == [(250,)]

    def test_multiple_aggregates(self, db):
        rows = db.sql(
            "SELECT deg, COUNT(*), MIN(uid) FROM Pol GROUP BY deg"
        ).relation
        assert sorted(rows.rows()) == [(25, 2, 1), (35, 1, 3)]

    def test_time_advances_affect_queries(self, db):
        db.sql("ADVANCE TO 10")
        assert sorted(db.sql("SELECT deg FROM Pol").relation.rows()) == [(25,)]

    def test_expired_tuples_invisible_before_advance(self, db):
        # Evaluation always applies exp_τ at the current time; the clock
        # governs visibility, not physical removal.
        rows = db.sql("SELECT uid FROM El").relation
        assert sorted(rows.rows()) == [(1,), (2,), (4,)]

    def test_ambiguous_column_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT uid FROM Pol AS P JOIN El AS E ON P.uid = E.uid WHERE deg = 25")

    def test_unknown_column(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT nope FROM Pol")

    def test_nongrouped_column_rejected(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT uid, COUNT(*) FROM Pol GROUP BY deg")


class TestViews:
    def test_create_and_query_view(self, db):
        db.sql("CREATE MATERIALIZED VIEW interests AS SELECT deg FROM Pol")
        assert db.view("interests").is_monotonic
        rows = db.sql("SELECT * FROM interests").relation
        assert sorted(rows.rows()) == [(25,), (35,)]

    def test_view_policy(self, db):
        db.sql(
            "CREATE MATERIALIZED VIEW d AS "
            "SELECT uid FROM Pol EXCEPT SELECT uid FROM El "
            "WITH POLICY PATCH"
        )
        assert db.view("d").policy is MaintenancePolicy.PATCH

    def test_view_inlining_keeps_results_fresh(self, db):
        db.sql("CREATE MATERIALIZED VIEW interests AS SELECT deg FROM Pol")
        db.sql("ADVANCE TO 10")
        rows = db.sql("SELECT * FROM interests").relation
        assert sorted(rows.rows()) == [(25,)]

    def test_drop_view(self, db):
        db.sql("CREATE MATERIALIZED VIEW v AS SELECT deg FROM Pol")
        db.sql("DROP VIEW v")
        assert db.sql("SHOW VIEWS").names == ()


class TestScripts:
    def test_execute_script_results(self, db):
        results = execute_script(db, "SELECT uid FROM Pol; SELECT uid FROM El")
        assert len(results) == 2
        assert results[0].rowcount == 3

    def test_execute_sql_rejects_scripts(self, db):
        with pytest.raises(SqlPlanError):
            execute_sql(db, "TICK; TICK")

    def test_string_literals_roundtrip(self):
        database = Database()
        execute_script(
            database,
            "CREATE TABLE t (name, v); INSERT INTO t VALUES ('it''s', 1)",
        )
        rows = database.sql("SELECT name FROM t WHERE name = 'it''s'").relation
        assert list(rows.rows()) == [("it's",)]

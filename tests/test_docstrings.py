"""Documentation gate: every public item carries a docstring.

Walks every public module's ``__all__`` and asserts that each exported
class and function (and each public method of exported classes) is
documented.  Keeps the "doc comments on every public item" promise honest
as the library grows.
"""

import enum
import importlib
import inspect

import pytest

MODULES = [
    "repro.core.timestamps",
    "repro.core.intervals",
    "repro.core.schema",
    "repro.core.tuples",
    "repro.core.relation",
    "repro.core.aggregates",
    "repro.core.approximate",
    "repro.core.difference_algorithms",
    "repro.core.monotonicity",
    "repro.core.qos",
    "repro.core.validity",
    "repro.core.patching",
    "repro.core.rewriter",
    "repro.core.algebra.predicates",
    "repro.core.algebra.expressions",
    "repro.core.algebra.evaluator",
    "repro.core.algebra.serde",
    "repro.engine.clock",
    "repro.engine.constraints",
    "repro.engine.database",
    "repro.engine.expiration_index",
    "repro.engine.maintenance",
    "repro.engine.persistence",
    "repro.engine.statistics",
    "repro.engine.table",
    "repro.engine.timer_wheel",
    "repro.engine.transactions",
    "repro.engine.triggers",
    "repro.engine.views",
    "repro.sql.lexer",
    "repro.sql.parser",
    "repro.sql.planner",
    "repro.sql.executor",
    "repro.distributed.events",
    "repro.distributed.link",
    "repro.distributed.node",
    "repro.distributed.client",
    "repro.distributed.server",
    "repro.distributed.simulator",
    "repro.workloads.generators",
    "repro.workloads.news",
    "repro.workloads.sessions",
    "repro.workloads.sensors",
    "repro.workloads.cache",
    "repro.baselines.explicit_delete",
    "repro.baselines.periodic_recompute",
    "repro.cli",
    "repro.engine.config",
    "repro.server.protocol",
    "repro.server.session",
    "repro.server.server",
    "repro.server.client",
    "repro.server.run",
]

_DUNDER_EXEMPT = True


def public_items(module):
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_exports_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in public_items(module):
        if getattr(obj, "__module__", module_name) != module_name:
            continue  # re-export; checked at its home module
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, f"{module_name}: {undocumented}"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_methods_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for class_name, cls in public_items(module):
        if not inspect.isclass(cls) or issubclass(cls, enum.Enum):
            continue
        if getattr(cls, "__module__", module_name) != module_name:
            continue
        for method_name, member in vars(cls).items():
            if method_name.startswith("_"):
                continue
            if not (inspect.isfunction(member) or isinstance(member, property)):
                continue
            target = member.fget if isinstance(member, property) else member
            if target is None:
                continue
            # getattr on the class resolves inheritance, so an override
            # documented on its base class counts (inspect.getdoc walks
            # the MRO).
            resolved = getattr(cls, method_name, target)
            doc = inspect.getdoc(resolved)
            if not (doc and doc.strip()):
                undocumented.append(f"{class_name}.{method_name}")
    assert not undocumented, f"{module_name}: {undocumented}"

"""The revocation path: ``Table.override`` (last-write) vs ``renew``.

Max-merge ``renew`` can only ever lengthen a lifetime (re-insertion under
the paper's duplicate rule), so revocation/lockout semantics need the
explicit ``override`` escape hatch: set the stored expiration exactly,
including to *now* for an immediate revoke.  These tests pin the whole
discipline -- index reschedule, views, WAL replay, the partitioned/lazy
interleavings -- because the original bug was precisely an override-shaped
call silently routed through max-merge.
"""

import pytest

from repro.core.timestamps import FOREVER, ts
from repro.engine.database import Database
from repro.engine.expiration_index import RemovalPolicy
from repro.engine.maintenance import IncrementalView
from repro.engine.recovery import recover_database
from repro.errors import EngineError, RelationError


def make_table(db, **kwargs):
    return db.create_table("T", ["k", "v"], **kwargs)


LAYOUTS = [
    {},  # flat, row layout
    {"layout": "columnar"},
    {"partitions": 4, "partition_key": "k"},
    {"partitions": 4, "partition_key": "k", "layout": "columnar"},
]
POLICIES = [RemovalPolicy.EAGER, RemovalPolicy.LAZY]


class TestOverrideSemantics:
    def test_renew_is_max_merge_but_override_is_last_write(self):
        db = Database()
        table = make_table(db)
        table.insert((1, 1), ttl=100)
        table.renew((1, 1), 10)  # shorter: max-merge keeps 100
        assert table.relation.expiration_of((1, 1)) == ts(100)
        table.override((1, 1), expires_at=10)  # last-write: shortens
        assert table.relation.expiration_of((1, 1)) == ts(10)
        table.override((1, 1), ttl=500)
        assert table.relation.expiration_of((1, 1)) == ts(500)

    @pytest.mark.parametrize("kwargs", LAYOUTS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_revoke_to_now_is_invisible_then_reclaimed(self, kwargs, policy):
        db = Database()
        table = make_table(db, removal_policy=policy, **kwargs)
        for i in range(8):
            table.insert((i, i), ttl=100)
        table.override((3, 3), expires_at=db.now)
        # Invisible to every read the moment the override commits...
        assert (3, 3) not in table.read()
        assert len(table) == 7
        assert db.verify(strict=True, deep=True) == []
        # ...and physically reclaimed once a sweep runs.
        db.tick(1)
        if policy is RemovalPolicy.LAZY:
            table.vacuum()
        assert table.physical_size == 7
        assert db.verify(strict=True, deep=True) == []

    def test_override_into_the_past_is_rejected(self):
        db = Database()
        table = make_table(db)
        db.tick(10)
        table.insert((1, 1), ttl=100)
        with pytest.raises(RelationError, match="past"):
            table.override((1, 1), expires_at=5)

    def test_override_argument_validation(self):
        db = Database()
        table = make_table(db)
        table.insert((1, 1), ttl=5)
        with pytest.raises(EngineError, match="not both"):
            table.override((1, 1), expires_at=10, ttl=10)
        with pytest.raises(EngineError, match="non-negative"):
            table.override((1, 1), ttl=-1)

    def test_override_inserts_when_absent_and_can_pin_forever(self):
        db = Database()
        table = make_table(db)
        table.override((1, 1), ttl=7)  # absent row: an upsert
        assert table.relation.expiration_of((1, 1)) == ts(7)
        table.override((1, 1))  # no deadline: pinned immortal
        assert table.relation.expiration_of((1, 1)) == FOREVER

    def test_override_counts_in_statistics(self):
        db = Database()
        table = make_table(db)
        table.insert((1, 1), ttl=5)
        table.override((1, 1), ttl=3)
        assert table.statistics.overrides == 1
        assert db.statistics.overrides == 1


class TestRenewDueInterleavings:
    def test_renew_after_due_before_sweep_on_partitioned_lazy(self):
        # The row comes due, sits in the lazy due buffer, then is renewed
        # before the batch vacuum runs: the sweep must skip it (a renewed
        # tuple never expired) and the audit must stay clean.
        db = Database()
        table = make_table(
            db, removal_policy=RemovalPolicy.LAZY, lazy_batch_size=1_000,
            partitions=4, partition_key="k",
        )
        for i in range(16):
            table.insert((i, i), expires_at=10)
        db.advance_to(10)  # all due, buffered, batch threshold not reached
        assert table.physical_size == 16
        table.renew((5, 5), 90)  # re-arm one of the buffered rows
        swept = table.vacuum()
        assert swept == 15  # everything but the renewed row
        assert (5, 5) in table.read()
        assert table.relation.expiration_of((5, 5)) == ts(100)
        assert db.verify(strict=True, deep=True) == []

    def test_override_after_due_before_sweep_extends_life(self):
        db = Database()
        table = make_table(
            db, removal_policy=RemovalPolicy.LAZY, lazy_batch_size=1_000
        )
        table.insert((1, 1), expires_at=5)
        db.advance_to(5)
        table.override((1, 1), ttl=50)  # resurrect the buffered row
        assert table.vacuum() == 0
        assert (1, 1) in table.read()
        assert db.verify(strict=True, deep=True) == []


class TestViewsObserveRevocation:
    def test_materialised_view_drops_revoked_row_without_manual_refresh(self):
        db = Database()
        table = make_table(db)
        for i in range(4):
            table.insert((i, i), ttl=100)
        from repro.core.algebra.expressions import BaseRef

        view = db.materialise("V", BaseRef("T"))
        assert (2, 2) in view.read()
        table.override((2, 2), expires_at=db.now)  # revoke, don't refresh
        assert (2, 2) not in view.read()
        assert view.contains((1, 1))
        assert not view.contains((2, 2))
        assert db.verify(strict=True, deep=True) == []

    def test_incremental_view_observes_override(self):
        db = Database()
        left = db.create_table("L", ["a", "b"])
        right = db.create_table("R", ["c", "d"])
        from repro.core.algebra.expressions import BaseRef

        view = IncrementalView(
            db, "J",
            BaseRef("L").join(BaseRef("R"), on=[("b", "c")]).project("a", "d"),
        )
        left.insert((1, 10), ttl=100)
        right.insert((10, 99), ttl=100)
        assert view.contains((1, 99))
        left.override((1, 10), expires_at=db.now)  # revoke one side
        assert not view.contains((1, 99))
        assert db.verify(strict=True, deep=True) == []


class TestOverrideDurability:
    @pytest.mark.parametrize("partitioned", [False, True])
    def test_revoke_then_crash_replays_the_shortened_expiration(
        self, tmp_path, partitioned
    ):
        db = Database(wal_dir=tmp_path)
        kwargs = {"partitions": 4, "partition_key": "k"} if partitioned else {}
        table = make_table(db, **kwargs)
        for i in range(6):
            table.insert((i, i), expires_at=100)
        db.tick(2)
        table.override((4, 4), expires_at=7)   # shorten
        table.override((5, 5), expires_at=db.now)  # revoke outright
        db.close()

        recovered = recover_database(tmp_path)
        t = recovered.table("T")
        assert t.relation.expiration_of((4, 4)) == ts(7)  # not max-merged back
        assert (5, 5) not in t.read()  # the revocation survived the crash
        assert set(t.read().rows()) == {(i, i) for i in range(5)}
        assert recovered.verify(strict=True, deep=True) == []
        recovered.tick(10)
        assert (4, 4) not in t.read()  # the shortened deadline is live
        recovered.close()

    def test_override_then_checkpoint_then_crash(self, tmp_path):
        db = Database(wal_dir=tmp_path)
        table = make_table(db)
        table.insert((1, 1), expires_at=100)
        table.override((1, 1), expires_at=30)
        db.checkpoint()
        table.override((1, 1), expires_at=9)  # post-snapshot, log-only
        db.close()

        recovered = recover_database(tmp_path)
        assert recovered.table("T").relation.expiration_of((1, 1)) == ts(9)
        assert recovered.verify(strict=True, deep=True) == []
        recovered.close()


class TestPointProbes:
    def test_materialised_contains_tracks_expiration(self):
        db = Database()
        table = make_table(db)
        table.insert((1, 1), expires_at=10)
        from repro.core.algebra.expressions import BaseRef

        view = db.materialise("V", BaseRef("T"))
        assert view.contains((1, 1))
        assert not view.contains((9, 9))
        assert not view.contains((1, 1), at=10)  # texp is exclusive
        db.advance_to(10)
        assert not view.contains((1, 1))

    def test_incremental_contains_tracks_expiration(self):
        db = Database()
        table = make_table(db)
        from repro.core.algebra.expressions import BaseRef

        view = IncrementalView(db, "V", BaseRef("T").project("k", "v"))
        table.insert((1, 1), expires_at=10)  # O(delta) propagation
        assert view.contains((1, 1))
        assert not view.contains((1, 1), at=10)
        db.advance_to(10)
        assert not view.contains((1, 1))


class TestViewsObserveShortening:
    """Last-write *shortening* (not just revoke-to-now) reaches deltas.

    An override that moves a lifetime earlier -- but still into the
    future -- invalidates patch schedules the incremental maintenance
    derived from the old ``texp``.  Each view kind (monotonic,
    difference, aggregate) must track a fresh evaluation across the new
    and the old deadline alike.
    """

    @staticmethod
    def _fresh(db, expression):
        return set(db.evaluate(expression).relation.rows())

    def test_monotonic_view_tracks_shortened_row(self):
        from repro.core.algebra.expressions import BaseRef

        db = Database()
        table = make_table(db)
        table.insert((1, 1), ttl=100)
        table.insert((2, 2), ttl=100)
        view = IncrementalView(db, "V", BaseRef("T").project("k"))
        assert set(view.read().rows()) == {(1,), (2,)}
        table.override((2, 2), expires_at=5)  # shorten, still alive
        db.advance_to(4)
        assert set(view.read().rows()) == {(1,), (2,)}
        db.advance_to(5)  # the *new* deadline, well before the old one
        assert set(view.read().rows()) == {(1,)}
        assert db.verify(strict=True, deep=True) == []

    def test_difference_view_tracks_shortened_match(self):
        db = Database()
        db.create_table("L", ["a", "b"])
        db.create_table("R2", ["a", "b"])
        expr = db.table_expr("L").difference(db.table_expr("R2"))
        view = IncrementalView(db, "V", expr)
        db.table("L").insert((1, 1), ttl=100)
        db.table("R2").insert((1, 1), ttl=50)  # knocks the tuple out
        assert set(view.read().rows()) == set()
        # Shorten the match: the re-appearance patch must move earlier.
        db.table("R2").override((1, 1), expires_at=10)
        for when in (5, 10, 20, 50, 100):
            db.advance_to(when)
            assert set(view.read().rows()) == self._fresh(db, expr), when
        assert db.verify(strict=True, deep=True) == []

    def test_aggregate_view_tracks_shortened_member(self):
        from repro.core.aggregates import ExpirationStrategy

        db = Database()
        db.create_table("G", ["k", "g"])
        expr = db.table_expr("G").aggregate(
            group_by=[2], function="count",
            strategy=ExpirationStrategy.EXACT,
        )
        view = IncrementalView(db, "V", expr)
        db.table("G").insert((1, 7), ttl=100)
        db.table("G").insert((2, 7), ttl=100)
        assert set(view.read().rows()) == {(1, 7, 2), (2, 7, 2)}
        db.table("G").override((2, 7), expires_at=6)  # count drops at 6
        for when in (3, 6, 50, 100):
            db.advance_to(when)
            assert set(view.read().rows()) == self._fresh(db, expr), when
        assert db.verify(strict=True, deep=True) == []

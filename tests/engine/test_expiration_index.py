"""Tests for the heap-based expiration index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timestamps import INFINITY, ts
from repro.engine.expiration_index import ExpirationIndex, RemovalPolicy


class TestScheduling:
    def test_schedule_and_pop(self):
        index = ExpirationIndex()
        index.schedule((1,), 5)
        index.schedule((2,), 3)
        assert len(index) == 2
        due = index.pop_due(4)
        assert [(row, int(texp)) for row, texp in due] == [((2,), 3)]
        assert len(index) == 1

    def test_pop_order(self):
        index = ExpirationIndex()
        for i, texp in enumerate([9, 2, 5]):
            index.schedule((i,), texp)
        due = index.pop_due(10)
        assert [int(texp) for _, texp in due] == [2, 5, 9]

    def test_infinite_never_scheduled(self):
        index = ExpirationIndex()
        index.schedule((1,), INFINITY)
        assert len(index) == 0
        assert index.next_expiration() is None

    def test_next_expiration(self):
        index = ExpirationIndex()
        index.schedule((1,), 7)
        index.schedule((2,), 3)
        assert index.next_expiration() == ts(3)

    def test_boundary_inclusive(self):
        # A tuple with texp = τ is expired at τ (exp keeps texp > τ).
        index = ExpirationIndex()
        index.schedule((1,), 5)
        assert index.pop_due(5) == [((1,), ts(5))]


class TestRescheduling:
    def test_reschedule_replaces(self):
        index = ExpirationIndex()
        index.schedule((1,), 5)
        index.schedule((1,), 9)  # renewal
        assert index.pop_due(5) == []  # old entry is a tombstone
        assert index.pop_due(9) == [((1,), ts(9))]

    def test_reschedule_to_infinity_unschedules(self):
        index = ExpirationIndex()
        index.schedule((1,), 5)
        index.schedule((1,), INFINITY)
        assert len(index) == 0
        assert index.pop_due(100) == []

    def test_remove(self):
        index = ExpirationIndex()
        index.schedule((1,), 5)
        index.remove((1,))
        assert len(index) == 0
        assert index.pop_due(10) == []

    def test_tombstones_reclaimed(self):
        index = ExpirationIndex()
        for _ in range(10):
            index.schedule((1,), 5)
        assert index.heap_size == 10
        index.pop_due(10)
        assert index.heap_size == 0

    def test_next_expiration_skips_tombstones(self):
        index = ExpirationIndex()
        index.schedule((1,), 3)
        index.schedule((1,), 9)
        assert index.next_expiration() == ts(9)


class TestPendingAndClear:
    def test_pending(self):
        index = ExpirationIndex()
        index.schedule((1,), 5)
        index.schedule((2,), 7)
        assert dict(index.pending()) == {(1,): ts(5), (2,): ts(7)}

    def test_clear(self):
        index = ExpirationIndex()
        index.schedule((1,), 5)
        index.clear()
        assert len(index) == 0
        assert index.heap_size == 0


class TestPolicyEnum:
    def test_values(self):
        assert RemovalPolicy.EAGER.value == "eager"
        assert RemovalPolicy.LAZY.value == "lazy"


class TestWheelHeapDifferential:
    """Wheel ≡ heap on the raw bulk path and the cached-minimum query.

    Complements the pop_due equivalence in ``test_timer_wheel.py``: this
    trace interleaves ``pop_due_raw`` (bounded and unbounded, the sweep
    kernels' path) with ``next_expiration`` probes after *every* op, so a
    stale cached minimum in the wheel cannot hide behind a later pop.
    """

    @settings(max_examples=120, deadline=None)
    @given(
        operations=st.lists(
            st.one_of(
                st.tuples(st.just("schedule"), st.integers(0, 9), st.integers(0, 300)),
                st.tuples(st.just("forever"), st.integers(0, 9), st.just(0)),
                st.tuples(st.just("remove"), st.integers(0, 9), st.just(0)),
                st.tuples(st.just("pop"), st.just(0), st.integers(0, 40)),
                st.tuples(st.just("drain"), st.just(0), st.just(0)),
            ),
            max_size=50,
        ),
        wheel_size=st.sampled_from([2, 4, 16]),
    )
    def test_raw_pops_and_minimum_agree(self, operations, wheel_size):
        from repro.engine.timer_wheel import TimerWheelIndex

        wheel = TimerWheelIndex(wheel_size=wheel_size)
        heap = ExpirationIndex()
        now = 0
        for op, key, value in operations:
            row = (key,)
            if op == "schedule":
                wheel.schedule(row, now + value)
                heap.schedule(row, now + value)
            elif op == "forever":
                wheel.schedule(row, INFINITY)
                heap.schedule(row, INFINITY)
            elif op == "remove":
                wheel.remove(row)
                heap.remove(row)
            elif op == "pop":
                now += value
                due_wheel = wheel.pop_due_raw(now)
                due_heap = heap.pop_due_raw(now)
                # Same multiset; ties in texp may order freely, but both
                # must come out sorted by texp.
                assert sorted(due_wheel) == sorted(due_heap)
                assert [t for _, t in due_wheel] == sorted(
                    t for _, t in due_wheel
                )
            else:  # drain: the unbounded sweep path (limit=None)
                due_wheel = wheel.pop_due_raw(None)
                due_heap = heap.pop_due_raw(None)
                assert sorted(due_wheel) == sorted(due_heap)
                assert len(wheel) == len(heap) == 0
            # The trigger scheduler's hot-path query agrees after every op.
            assert wheel.next_expiration() == heap.next_expiration()
            assert len(wheel) == len(heap)
        assert dict(wheel.pending()) == dict(heap.pending())


class TestPropertyBased:
    @settings(max_examples=100, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),  # row key
                st.integers(min_value=1, max_value=30),  # texp
            ),
            max_size=30,
        ),
        checkpoint=st.integers(min_value=0, max_value=35),
    )
    def test_pop_due_matches_model(self, operations, checkpoint):
        """The index agrees with a naive dict model under re-scheduling."""
        index = ExpirationIndex()
        model = {}
        for key, texp in operations:
            index.schedule((key,), texp)
            model[(key,)] = texp  # raw index semantics: last schedule wins
        due = index.pop_due(checkpoint)
        expected = {row for row, texp in model.items() if texp <= checkpoint}
        assert {row for row, _ in due} == expected
        # What remains live matches the model's survivors.
        assert dict(index.pending()) == {
            row: ts(texp) for row, texp in model.items() if texp > checkpoint
        }

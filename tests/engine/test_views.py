"""Tests for materialised views and their maintenance policies."""

import pytest

from repro.core.aggregates import ExpirationStrategy
from repro.core.algebra.expressions import BaseRef
from repro.core.algebra.predicates import col
from repro.core.timestamps import INFINITY, ts
from repro.engine.views import MaintenancePolicy
from repro.errors import CatalogError, ViewError


def diff_expr(db):
    return db.table_expr("Pol").project(1).difference(db.table_expr("El").project(1))


class TestMonotonicViews:
    def test_never_recomputes(self, figure1_db):
        view = figure1_db.materialise("v", figure1_db.table_expr("Pol").project(2))
        assert view.is_monotonic
        for when in (0, 5, 10, 12, 15, 20):
            figure1_db.advance_to(when)
            got = set(view.read().rows())
            truth = set(
                figure1_db.evaluate(figure1_db.table_expr("Pol").project(2))
                .relation.rows()
            )
            assert got == truth
        assert view.recomputations == 0

    def test_expiration_infinite(self, figure1_db):
        view = figure1_db.materialise("v", figure1_db.table_expr("Pol").project(2))
        assert view.expiration == INFINITY


class TestRecomputePolicy:
    def test_serves_until_expiration(self, figure1_db):
        view = figure1_db.materialise(
            "v", diff_expr(figure1_db), policy=MaintenancePolicy.RECOMPUTE
        )
        assert view.expiration == ts(3)
        figure1_db.advance_to(2)
        assert set(view.read().rows()) == {(3,)}
        assert view.recomputations == 0

    def test_recomputes_at_expiration(self, figure1_db):
        view = figure1_db.materialise(
            "v", diff_expr(figure1_db), policy=MaintenancePolicy.RECOMPUTE
        )
        figure1_db.advance_to(3)
        assert set(view.read().rows()) == {(2,), (3,)}
        assert view.recomputations == 1

    def test_always_correct(self, figure1_db):
        view = figure1_db.materialise(
            "v", diff_expr(figure1_db), policy=MaintenancePolicy.RECOMPUTE
        )
        for when in range(0, 20):
            figure1_db.advance_to(when)
            truth = set(figure1_db.evaluate(diff_expr(figure1_db)).relation.rows())
            assert set(view.read().rows()) == truth


class TestSchrodingerPolicy:
    def test_skips_recompute_in_valid_gaps(self, figure1_db):
        view = figure1_db.materialise(
            "v", diff_expr(figure1_db), policy=MaintenancePolicy.SCHRODINGER
        )
        figure1_db.advance_to(2)
        view.read()
        assert view.recomputations == 0
        # Jump over the invalid window [3,15): at 15 the view is valid
        # again (everything expired), so still no recomputation.
        figure1_db.advance_to(15)
        view.read()
        assert view.recomputations == 0

    def test_recomputes_inside_invalid_gap(self, figure1_db):
        view = figure1_db.materialise(
            "v", diff_expr(figure1_db), policy=MaintenancePolicy.SCHRODINGER
        )
        figure1_db.advance_to(5)
        assert set(view.read().rows()) == {(1,), (2,), (3,)}
        assert view.recomputations == 1

    def test_always_correct(self, figure1_db):
        view = figure1_db.materialise(
            "v", diff_expr(figure1_db), policy=MaintenancePolicy.SCHRODINGER
        )
        for when in range(0, 20):
            figure1_db.advance_to(when)
            truth = set(figure1_db.evaluate(diff_expr(figure1_db)).relation.rows())
            assert set(view.read().rows()) == truth


class TestPatchPolicy:
    def test_requires_difference_root(self, figure1_db):
        with pytest.raises(ViewError):
            figure1_db.materialise(
                "v",
                figure1_db.table_expr("Pol").project(2),
                policy=MaintenancePolicy.PATCH,
            )

    def test_rejects_nonmonotonic_children(self, figure1_db):
        inner = diff_expr(figure1_db)
        with pytest.raises(ViewError):
            figure1_db.materialise(
                "v",
                inner.difference(figure1_db.table_expr("El").project(1)),
                policy=MaintenancePolicy.PATCH,
            )

    def test_zero_recomputations_always_correct(self, figure1_db):
        view = figure1_db.materialise(
            "v", diff_expr(figure1_db), policy=MaintenancePolicy.PATCH
        )
        assert view.expiration == INFINITY
        for when in range(0, 20):
            figure1_db.advance_to(when)
            truth = set(figure1_db.evaluate(diff_expr(figure1_db)).relation.rows())
            assert set(view.read().rows()) == truth
        assert view.recomputations == 0
        assert view.patches_applied == 2  # uids 1 and 2 re-appeared

    def test_no_reading_backwards(self, figure1_db):
        view = figure1_db.materialise(
            "v", diff_expr(figure1_db), policy=MaintenancePolicy.PATCH
        )
        view.read(at=5)
        with pytest.raises(ViewError):
            view.read(at=4)


class TestAggregateViews:
    def test_conservative_histogram_invalidates_at_10(self, figure1_db):
        expr = (
            figure1_db.table_expr("Pol")
            .aggregate(group_by=[2], function="count",
                       strategy=ExpirationStrategy.CONSERVATIVE)
            .project(2, 3)
        )
        view = figure1_db.materialise("v", expr, policy=MaintenancePolicy.RECOMPUTE)
        assert view.expiration == ts(10)
        figure1_db.advance_to(10)
        assert set(view.read().rows()) == {(25, 1)}
        assert view.recomputations == 1

    def test_exact_strategy_extends_validity(self, figure1_db):
        # With the exact strategy texp(e) is the first true value change,
        # which for the Pol histogram is also 10 -- but the *tuples* carry
        # better lifetimes; the view over the single group <35> dies with
        # its partition and never invalidates.
        expr = (
            figure1_db.table_expr("Pol")
            .select(col(2) == 35)
            .aggregate(group_by=[2], function="count",
                       strategy=ExpirationStrategy.EXACT)
            .project(2, 3)
        )
        view = figure1_db.materialise("v", expr, policy=MaintenancePolicy.SCHRODINGER)
        assert view.expiration == INFINITY
        for when in range(0, 15):
            figure1_db.advance_to(when)
            view.read()
        assert view.recomputations == 0


class TestCatalogIntegration:
    def test_view_registry(self, figure1_db):
        figure1_db.materialise("v", figure1_db.table_expr("Pol").project(2))
        assert figure1_db.view_names() == ["v"]
        assert figure1_db.view("v") is not None
        figure1_db.drop_view("v")
        with pytest.raises(CatalogError):
            figure1_db.view("v")

    def test_name_collision(self, figure1_db):
        with pytest.raises(CatalogError):
            figure1_db.materialise("Pol", figure1_db.table_expr("Pol"))

    def test_unknown_base_rejected(self, figure1_db):
        from repro.core.algebra.expressions import BaseRef

        with pytest.raises(CatalogError):
            figure1_db.materialise("v", BaseRef("Nope"))

    def test_drop_table_with_dependent_view_rejected(self, figure1_db):
        figure1_db.materialise("v", figure1_db.table_expr("Pol").project(2))
        with pytest.raises(CatalogError):
            figure1_db.drop_table("Pol")

"""Tests for hash-partitioned tables and partition-parallel sweeps.

The core guarantee is *equivalence*: a :class:`PartitionedTable` must be
indistinguishable from a flat :class:`Table` on rows, per-tuple expiration
times, and expression-level ``texp(e)`` / validity, under both removal
policies.  The differential tests drive identical workloads through both
and compare after every step.
"""

import pytest

from repro.core.algebra.predicates import col
from repro.core.schema import Schema
from repro.core.timestamps import INFINITY, ts
from repro.engine.clock import LogicalClock
from repro.engine.database import Database
from repro.engine.expiration_index import RemovalPolicy
from repro.engine.partitioning import (
    PartitionedTable,
    ShardedExpirationIndex,
    ShardedRelation,
)
from repro.engine.persistence import database_from_dict, database_to_dict
from repro.errors import CatalogError, EngineError

POLICIES = [RemovalPolicy.EAGER, RemovalPolicy.LAZY]


def paired_databases(policy, partitions=4, batch=8):
    """A flat database and a partitioned one with the same table 'T'."""
    flat_db, part_db = Database(), Database()
    flat_db.create_table("T", ["k", "v"], removal_policy=policy, lazy_batch_size=batch)
    part_db.create_table(
        "T",
        ["k", "v"],
        removal_policy=policy,
        lazy_batch_size=batch,
        partitions=partitions,
        partition_key="k",
    )
    return flat_db, part_db


def assert_same_visible(flat_db, part_db):
    """Identical visible rows *and* per-tuple expiration times."""
    flat = dict(flat_db.table("T").read().items())
    part = dict(part_db.table("T").read().items())
    assert part == flat


def assert_same_eval(flat_db, part_db, expr_of):
    """Identical rows, texp, texp(e), and validity for an expression."""
    a = flat_db.evaluate(expr_of(flat_db))
    b = part_db.evaluate(expr_of(part_db))
    assert dict(b.relation.items()) == dict(a.relation.items())
    assert b.expiration == a.expiration
    assert b.validity == a.validity


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_inserts_advances_renewals_deletes(self, policy):
        flat_db, part_db = paired_databases(policy)
        for db in (flat_db, part_db):
            t = db.table("T")
            for i in range(64):
                t.insert((i, i % 5), expires_at=4 + (i % 13))
            for i in range(0, 64, 9):
                t.insert((i, i % 5))  # renew to infinity (max-merge)
        assert_same_visible(flat_db, part_db)
        for when in (3, 5, 8, 11, 16, 17):
            flat_db.advance_to(when)
            part_db.advance_to(when)
            assert_same_visible(flat_db, part_db)
        for db in (flat_db, part_db):
            t = db.table("T")
            for i in range(0, 64, 9):
                t.delete((i, i % 5))
            for i in range(100, 120):
                t.insert((i, i % 3), expires_at=25)
        assert_same_visible(flat_db, part_db)
        flat_db.advance_to(30)
        part_db.advance_to(30)
        assert_same_visible(flat_db, part_db)
        assert len(part_db.table("T")) == 0

    @pytest.mark.parametrize("policy", POLICIES)
    def test_expression_results_identical(self, policy):
        flat_db, part_db = paired_databases(policy)
        for db in (flat_db, part_db):
            t = db.table("T")
            for i in range(40):
                t.insert((i, i % 4), expires_at=6 + (i % 9))
        for expr_of in (
            lambda db: db.table_expr("T"),
            lambda db: db.table_expr("T").select(col(2) >= 2),
            lambda db: db.table_expr("T").project(2),
            lambda db: db.table_expr("T").join(db.table_expr("T"), on=[(1, 1)]),
        ):
            assert_same_eval(flat_db, part_db, expr_of)
        flat_db.advance_to(9)
        part_db.advance_to(9)
        assert_same_eval(flat_db, part_db, lambda db: db.table_expr("T"))

    def test_lazy_vacuum_equivalence(self):
        flat_db, part_db = paired_databases(RemovalPolicy.LAZY, batch=1000)
        for db in (flat_db, part_db):
            t = db.table("T")
            for i in range(30):
                t.insert((i, 0), expires_at=5)
            db.advance_to(6)
        # Large batch: nothing reclaimed yet, but reads already hide the
        # expired tuples on both sides.
        assert part_db.table("T").physical_size == 30
        assert_same_visible(flat_db, part_db)
        assert flat_db.table("T").vacuum() == part_db.table("T").vacuum() == 30
        assert part_db.table("T").physical_size == 0

    def test_renewal_during_lazy_buffer_not_expired(self):
        flat_db, part_db = paired_databases(RemovalPolicy.LAZY, batch=1000)
        for db in (flat_db, part_db):
            t = db.table("T")
            t.insert((1, 1), expires_at=5)
            db.advance_to(5)  # due and buffered, not yet vacuumed
            t.insert((1, 1), expires_at=50)  # renewal resurrects it
            t.vacuum()
        assert_same_visible(flat_db, part_db)
        assert part_db.table("T").read().expiration_of((1, 1)) == ts(50)


class TestParallelSweep:
    def test_sweep_uses_executor_and_counts(self):
        db = Database()
        table = db.create_table("T", ["k"], partitions=4)
        for i in range(100):
            table.insert((i,), expires_at=10)
        assert db.now == ts(0)
        db.advance_to(10)
        assert len(table) == 0
        assert table.physical_size == 0
        assert table.statistics.expirations_processed == 100
        snap = db.metrics.snapshot()
        expired = sum(
            value
            for key, value in snap.items()
            if key.startswith("repro_partition_tuples_expired_total{")
            and 'table="T"' in key
        )
        assert expired == 100
        shards_hit = [
            key
            for key in snap
            if key.startswith("repro_partition_sweep_seconds{")
            and 'table="T"' in key
        ]
        assert shards_hit  # per-shard sweep timings recorded
        db.close()

    def test_triggers_fire_once_per_expired_tuple(self):
        db = Database()
        table = db.create_table("T", ["k"], partitions=4)
        seen = []
        table.triggers.register("log", lambda event: seen.append(event.tuple.row))
        for i in range(50):
            table.insert((i,), expires_at=3)
        table.insert((999,), expires_at=99)
        db.advance_to(3)
        assert sorted(seen) == [(i,) for i in range(50)]
        assert table.statistics.triggers_fired == 50

    def test_standalone_table_sweeps_without_database(self):
        clock = LogicalClock()
        table = PartitionedTable("T", Schema(["k"]), clock, partitions=3)
        clock.on_advance(table.on_clock_advance)
        for i in range(20):
            table.insert((i,), expires_at=5)
        clock.advance_to(5)
        assert len(table) == 0

    def test_single_partition_table(self):
        db = Database()
        table = db.create_table("T", ["k"], partitions=1)
        table.insert((1,), expires_at=5)
        db.advance_to(5)
        assert len(table) == 0


class TestShardedRelation:
    def test_routing_is_stable(self):
        rel = ShardedRelation(Schema(["k", "v"]), key_index=0, partitions=4)
        rel.insert((7, "x"), expires_at=10)
        assert rel.shard_of((7, "anything")).contains((7, "x"))
        assert rel.contains((7, "x"))
        assert len(rel) == 1

    def test_max_merge_across_duplicate_inserts(self):
        rel = ShardedRelation(Schema(["k"]), key_index=0, partitions=2)
        rel.insert((1,), expires_at=5)
        rel.insert((1,), expires_at=3)  # earlier: ignored by max-merge
        assert rel.expiration_of((1,)) == ts(5)

    def test_equality_with_flat_relation(self):
        from repro.core.relation import Relation

        flat = Relation(Schema(["k"]))
        sharded = ShardedRelation(Schema(["k"]), key_index=0, partitions=3)
        for rel in (flat, sharded):
            rel.insert((1,), expires_at=5)
            rel.insert((2,), expires_at=INFINITY)
        assert sharded.same_content(flat)
        assert flat.same_content(sharded)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(EngineError):
            ShardedRelation(Schema(["k"]), key_index=0, partitions=0)
        with pytest.raises(EngineError):
            ShardedRelation(Schema(["k"]), key_index=5, partitions=2)

    def test_index_routing_and_pop(self):
        index = ShardedExpirationIndex(key_index=0, partitions=3)
        index.schedule((1,), ts(5))
        index.schedule((2,), ts(3))
        assert index.next_expiration() == ts(3)
        due = index.pop_due(5)
        assert sorted(due) == [((1,), ts(5)), ((2,), ts(3))]
        assert index.next_expiration() is None


class TestDatabaseIntegration:
    def test_create_table_validation(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.create_table("T", ["k"], partition_key="k")  # key without count
        table = db.create_table("T", ["k", "v"], partitions=2)
        assert table.partition_key == "k"  # defaults to the first column

    def test_sql_ddl_and_describe(self):
        db = Database()
        db.sql("CREATE TABLE S (sid, uid) PARTITION BY HASH (uid) PARTITIONS 4")
        table = db.table("S")
        assert isinstance(table, PartitionedTable)
        assert table.partitions == 4
        assert table.partition_key == "uid"
        db.sql("INSERT INTO S VALUES (1, 10) EXPIRES AT 30")
        assert db.sql("SELECT sid FROM S").rows == [(1,)]
        described = db.sql("DESCRIBE S").message
        assert "partitions=4" in described
        assert "hash(uid)" in described

    def test_explain_analyze_shows_shard_scans(self):
        db = Database()
        db.sql("CREATE TABLE S (sid, uid) PARTITION BY HASH (uid) PARTITIONS 4")
        for i in range(20):
            db.sql(f"INSERT INTO S VALUES ({i}, {i % 7}) EXPIRES AT 50")
        message = db.sql("EXPLAIN ANALYZE SELECT sid FROM S WHERE uid = 3").message
        assert "shard_scan" in message
        db.close()

    def test_plan_cache_hits_on_partitioned_scan(self):
        db = Database()
        table = db.create_table("T", ["k", "v"], partitions=4)
        for i in range(30):
            table.insert((i, i % 3), expires_at=40)
        expr = db.table_expr("T").select(col(2) == 1)
        first = db.evaluate(expr)
        before = db.plan_cache.stats.hits
        second = db.evaluate(expr)
        assert db.plan_cache.stats.hits == before + 1
        assert dict(second.relation.items()) == dict(first.relation.items())

    def test_repartition_invalidates_plans(self):
        db = Database()
        table = db.create_table("T", ["k"], partitions=2)
        table.insert((1,), expires_at=40)
        expr = db.table_expr("T")
        assert set(db.evaluate(expr).relation.rows()) == {(1,)}
        db.drop_table("T")
        table = db.create_table("T", ["k"], partitions=4)
        table.insert((2,), expires_at=40)
        assert set(db.evaluate(expr).relation.rows()) == {(2,)}

    def test_persistence_round_trip(self):
        db = Database()
        db.create_table(
            "T",
            ["k", "v"],
            partitions=3,
            partition_key="v",
            removal_policy=RemovalPolicy.LAZY,
        )
        table = db.table("T")
        for i in range(12):
            table.insert((i, i % 5), expires_at=20 + i)
        restored = database_from_dict(database_to_dict(db))
        loaded = restored.table("T")
        assert isinstance(loaded, PartitionedTable)
        assert loaded.partitions == 3
        assert loaded.partition_key == "v"
        assert dict(loaded.read().items()) == dict(table.read().items())
        restored.advance_to(25)
        db.advance_to(25)
        assert dict(loaded.read().items()) == dict(table.read().items())

    def test_close_is_idempotent_and_pool_recreates(self):
        db = Database()
        db.create_table("T", ["k"], partitions=2)
        pool = db.executor
        assert pool is db.executor  # cached
        db.close()
        db.close()  # idempotent
        assert db.executor is not pool  # fresh pool on demand
        db.close()

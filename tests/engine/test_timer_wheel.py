"""Tests for the timer-wheel expiration index.

Includes a cross-implementation equivalence property: the wheel and the
heap index must agree with a naive dict model (and hence each other) on
arbitrary schedules, re-schedules, and time jumps -- including jumps far
past the wheel horizon (the cascading path).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timestamps import INFINITY, ts
from repro.engine.expiration_index import ExpirationIndex
from repro.engine.timer_wheel import TimerWheelIndex
from repro.errors import EngineError


class TestBasics:
    def test_schedule_and_pop(self):
        wheel = TimerWheelIndex(wheel_size=8)
        wheel.schedule((1,), 5)
        wheel.schedule((2,), 3)
        assert len(wheel) == 2
        assert [(row, int(t)) for row, t in wheel.pop_due(4)] == [((2,), 3)]
        assert [(row, int(t)) for row, t in wheel.pop_due(5)] == [((1,), 5)]

    def test_pop_is_ordered(self):
        wheel = TimerWheelIndex(wheel_size=8)
        for i, texp in enumerate([9, 2, 5]):
            wheel.schedule((i,), texp)
        assert [int(t) for _, t in wheel.pop_due(10)] == [2, 5, 9]

    def test_overflow_cascades(self):
        wheel = TimerWheelIndex(wheel_size=4)
        wheel.schedule((1,), 100)  # far beyond the horizon
        assert wheel.pop_due(50) == []
        assert len(wheel) == 1
        assert wheel.pop_due(100) == [((1,), ts(100))]

    def test_huge_jump_collects_everything(self):
        wheel = TimerWheelIndex(wheel_size=4)
        for i in range(20):
            wheel.schedule((i,), i + 1)
        due = wheel.pop_due(10_000)
        assert len(due) == 20
        assert [int(t) for _, t in due] == sorted(int(t) for _, t in due)

    def test_reschedule_replaces(self):
        wheel = TimerWheelIndex(wheel_size=8)
        wheel.schedule((1,), 3)
        wheel.schedule((1,), 6)
        assert wheel.pop_due(3) == []
        assert wheel.pop_due(6) == [((1,), ts(6))]

    def test_infinite_unschedules(self):
        wheel = TimerWheelIndex(wheel_size=8)
        wheel.schedule((1,), 3)
        wheel.schedule((1,), INFINITY)
        assert len(wheel) == 0
        assert wheel.pop_due(10) == []

    def test_remove(self):
        wheel = TimerWheelIndex(wheel_size=8)
        wheel.schedule((1,), 3)
        wheel.remove((1,))
        assert wheel.pop_due(10) == []

    def test_next_expiration(self):
        wheel = TimerWheelIndex(wheel_size=8)
        assert wheel.next_expiration() is None
        wheel.schedule((1,), 7)
        wheel.schedule((2,), 300)  # overflow
        assert wheel.next_expiration() == ts(7)
        wheel.pop_due(7)
        assert wheel.next_expiration() == ts(300)

    def test_clear(self):
        wheel = TimerWheelIndex(wheel_size=8)
        wheel.schedule((1,), 3)
        wheel.clear()
        assert len(wheel) == 0
        assert wheel.heap_size == 0

    def test_bad_size(self):
        with pytest.raises(EngineError):
            TimerWheelIndex(wheel_size=1)


class TestEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        operations=st.lists(
            st.one_of(
                st.tuples(st.just("schedule"), st.integers(0, 9), st.integers(1, 400)),
                st.tuples(st.just("remove"), st.integers(0, 9), st.just(0)),
                st.tuples(st.just("pop"), st.just(0), st.integers(0, 500)),
            ),
            max_size=40,
        ),
        wheel_size=st.sampled_from([2, 4, 16, 64]),
    )
    def test_wheel_matches_heap_and_model(self, operations, wheel_size):
        wheel = TimerWheelIndex(wheel_size=wheel_size)
        heap = ExpirationIndex()
        model = {}
        now = 0
        for op, key, value in operations:
            row = (key,)
            if op == "schedule":
                texp = now + value  # keep schedules in the future-ish
                wheel.schedule(row, texp)
                heap.schedule(row, texp)
                model[row] = texp
            elif op == "remove":
                wheel.remove(row)
                heap.remove(row)
                model.pop(row, None)
            else:
                now = max(now, value)
                due_wheel = wheel.pop_due(now)
                due_heap = heap.pop_due(now)
                due_model = sorted(
                    ((row, texp) for row, texp in model.items() if texp <= now),
                    key=lambda item: item[1],
                )
                for row, _ in due_model:
                    del model[row]
                # Same (row, texp) multiset; ties in texp may order freely.
                assert sorted((r, int(t)) for r, t in due_wheel) == sorted(
                    (r, t) for r, t in due_model
                )
                # And texps come out non-decreasing.
                texps = [int(t) for _, t in due_wheel]
                assert texps == sorted(texps)
                assert sorted(due_wheel, key=repr) == sorted(due_heap, key=repr)
        # Survivors agree everywhere.
        assert dict(wheel.pending()) == {r: ts(t) for r, t in model.items()}
        assert dict(heap.pending()) == dict(wheel.pending())


class TestTableIntegration:
    def test_table_runs_on_a_wheel(self):
        """The engine only uses the shared index interface."""
        from repro.core.schema import Schema
        from repro.engine.clock import LogicalClock
        from repro.engine.table import Table

        clock = LogicalClock()
        table = Table("T", Schema(["k"]), clock, index_factory=TimerWheelIndex)
        assert isinstance(table._index, TimerWheelIndex)
        clock.on_advance(table.on_clock_advance)
        fired = []
        table.triggers.register("t", lambda event: fired.append(event.tuple.row))
        table.insert((1,), expires_at=5)
        table.insert((2,), expires_at=300)
        clock.advance_to(5)
        assert fired == [(1,)]
        assert len(table) == 1
        clock.advance_to(300)
        assert len(table) == 0

    def test_create_table_index_factory(self):
        """``index_factory=`` plumbs the substrate through the database."""
        from repro.engine.database import Database

        db = Database(check_invariants=True)
        table = db.create_table("T", ["k"], index_factory=TimerWheelIndex)
        assert isinstance(table._index, TimerWheelIndex)
        table.insert((1,), expires_at=5)
        table.insert((2,), expires_at=300)
        assert table.next_expiration() == ts(5)
        db.advance_to(5)
        assert sorted(table.read().rows()) == [(2,)]
        db.advance_to(300)
        assert len(table) == 0

    def test_create_table_index_factory_partitioned(self):
        """A partitioned table builds one wheel per shard."""
        from repro.engine.database import Database

        db = Database(check_invariants=True)
        table = db.create_table(
            "P", ["k", "v"], partitions=3, index_factory=TimerWheelIndex
        )
        assert all(
            isinstance(shard, TimerWheelIndex)
            for shard in table._index.shards
        )
        for key in range(9):
            table.insert((key, 0), expires_at=key + 1)
        db.advance_to(4)
        assert len(table) == 5
        db.advance_to(9)
        assert len(table) == 0
        db.close()

    def test_custom_wheel_size_via_factory(self):
        from repro.engine.database import Database

        db = Database()
        table = db.create_table(
            "T", ["k"], index_factory=lambda: TimerWheelIndex(wheel_size=4)
        )
        table.insert((1,), expires_at=1000)  # straight to overflow
        assert table._index._size == 4
        db.advance_to(1000)
        assert len(table) == 0


class TestCachedMinUnderOverride:
    """Regression: last-write shortening must invalidate the cached min.

    ``next_expiration`` caches the minimum pending tick between
    mutations; an ``override`` that *shortens* a lifetime (the revocation
    path) reschedules through the same entry, and a stale cache here
    would make the trigger scheduler sleep past the new deadline.
    """

    def test_shorten_updates_cached_min(self):
        wheel = TimerWheelIndex(wheel_size=8)
        wheel.schedule((1,), 100)
        wheel.schedule((2,), 200)
        assert wheel.next_expiration() == ts(100)  # prime the cache
        wheel.schedule((2,), 40)  # shorten the non-minimum entry
        assert wheel.next_expiration() == ts(40)
        wheel.schedule((2,), 10)  # shorten the minimum itself
        assert wheel.next_expiration() == ts(10)

    def test_lengthen_sole_minimum_recomputes(self):
        wheel = TimerWheelIndex(wheel_size=8)
        wheel.schedule((1,), 5)
        wheel.schedule((2,), 50)
        assert wheel.next_expiration() == ts(5)
        wheel.schedule((1,), 500)  # the old minimum moved away
        assert wheel.next_expiration() == ts(50)

    def test_shorten_to_infinity_then_back(self):
        wheel = TimerWheelIndex(wheel_size=8)
        wheel.schedule((1,), 7)
        assert wheel.next_expiration() == ts(7)
        wheel.schedule((1,), INFINITY)
        assert wheel.next_expiration() is None
        wheel.schedule((1,), 3)
        assert wheel.next_expiration() == ts(3)

    @pytest.mark.parametrize("factory", [None, TimerWheelIndex])
    @pytest.mark.parametrize("partitions", [None, 3])
    def test_override_then_next_expiration_on_tables(self, factory, partitions):
        """The full path: Table.override -> index reschedule -> cached min."""
        from repro.engine.database import Database

        db = Database()
        kwargs = {"partitions": partitions} if partitions else {}
        if factory is not None:
            kwargs["index_factory"] = factory
        table = db.create_table("T", ["k"], **kwargs)
        for i in range(6):
            table.insert((i,), expires_at=100 + i)
        assert table.next_expiration() == ts(100)
        table.override((4,), expires_at=9)  # revocation-style shortening
        assert table.next_expiration() == ts(9)
        db.advance_to(9)
        assert (4,) not in table.read()
        assert table.next_expiration() == ts(100)
        db.close()

"""Engine-level integration tests for columnar tables.

The ``layout="columnar"`` table option (and its SQL spelling ``LAYOUT
COLUMNAR``) must thread end-to-end: DDL, compiled batch kernels with
their per-kernel counters and trace spans, plan-cache fingerprinting,
expiration sweeps over the raw texp array, snapshot/WAL round-trips, and
partitioned tables.  Everything here runs against the dict-oracle row
layout as the reference where a comparison is meaningful.
"""

import pytest

from repro.core.algebra.expressions import BaseRef
from repro.core.algebra.predicates import col
from repro.core.columnar import ColumnarRelation, numpy_available
from repro.engine.database import Database
from repro.engine.expiration_index import RemovalPolicy
from repro.engine.recovery import recover_database
from repro.errors import EngineError


def populated(db: Database, name: str, **kwargs) -> None:
    table = db.create_table(name, ["k", "v"], **kwargs)
    for i in range(20):
        table.insert((i % 5, i), expires_at=10 + i)


class TestDdl:
    def test_create_columnar_table(self):
        db = Database()
        table = db.create_table("T", ["a", "b"], layout="columnar")
        assert table.layout == "columnar"
        assert isinstance(table.relation, ColumnarRelation)
        assert table.columnar_backend in ("python", "numpy")

    def test_row_default_unchanged(self):
        table = Database().create_table("T", ["a"])
        assert table.layout == "row"
        assert table.columnar_backend is None
        assert not isinstance(table.relation, ColumnarRelation)

    def test_unknown_layout_rejected(self):
        with pytest.raises(EngineError):
            Database().create_table("T", ["a"], layout="paged")

    def test_sql_layout_clause(self):
        db = Database()
        db.sql("CREATE TABLE pol (uid, deg) LAYOUT COLUMNAR")
        assert db.table("pol").layout == "columnar"
        described = db.sql("DESCRIBE pol").message
        assert "layout=columnar" in described

    def test_sql_layout_and_partitioning_either_order(self):
        db = Database()
        db.sql(
            "CREATE TABLE a (k, v) LAYOUT COLUMNAR "
            "PARTITION BY HASH (k) PARTITIONS 4"
        )
        db.sql(
            "CREATE TABLE b (k, v) PARTITION BY HASH (k) PARTITIONS 4 "
            "LAYOUT COLUMNAR"
        )
        for name in ("a", "b"):
            table = db.table(name)
            assert table.layout == "columnar"
            assert table.partitions == 4


class TestQuerying:
    def test_batch_kernels_engage_and_agree_with_row_layout(self):
        db = Database()
        populated(db, "rows")
        populated(db, "cols", layout="columnar")
        expression = lambda name: (
            BaseRef(name).select(col(2) >= 8).project(1)
        )
        reference = db.evaluate(expression("rows"))
        row_stats = db.last_eval_stats
        result = db.evaluate(expression("cols"))
        col_stats = db.last_eval_stats
        assert result.relation.same_content(reference.relation)
        assert result.expiration == reference.expiration
        # The columnar run went through batch kernels; the row run did not.
        assert "scan_filter" in col_stats.columnar_kernel_rows
        assert "select_mask" in col_stats.columnar_kernel_rows
        assert not row_stats.columnar_kernel_rows
        # Exactly-once billing: identical row accounting either way.
        assert col_stats.tuples_scanned == row_stats.tuples_scanned
        assert col_stats.tuples_emitted == row_stats.tuples_emitted

    def test_join_between_columnar_tables(self):
        db = Database()
        populated(db, "l", layout="columnar")
        populated(db, "r", layout="columnar")
        populated(db, "lr")
        populated(db, "rr")
        joined = db.evaluate(BaseRef("l").join(BaseRef("r"), on=[(1, 1)]))
        assert "hash_join" in db.last_eval_stats.columnar_kernel_rows
        reference = db.evaluate(
            BaseRef("lr").join(BaseRef("rr"), on=[(1, 1)])
        )
        assert joined.relation.same_content(reference.relation)

    def test_kernel_metrics_flushed(self):
        db = Database()
        populated(db, "T", layout="columnar")
        db.evaluate(BaseRef("T").select(col(1) >= 2))
        text = db.metrics.to_prom_text()
        assert "repro_columnar_batches_total" in text
        assert "repro_columnar_rows_total" in text
        assert 'repro_columnar_kernel_rows_total{kernel="scan_filter"}' in text

    def test_explain_analyze_shows_batch_spans(self):
        db = Database()
        db.sql("CREATE TABLE pol (uid, deg) LAYOUT COLUMNAR")
        db.sql("INSERT INTO pol VALUES (1, 25) EXPIRES AT 10")
        db.sql("INSERT INTO pol VALUES (2, 35) EXPIRES AT 15")
        message = db.sql(
            "EXPLAIN ANALYZE SELECT uid FROM pol WHERE deg >= 30"
        ).message
        assert "columnar_batch" in message
        assert "kernel=" in message

    def test_plan_cache_fingerprints_layout(self):
        db = Database()
        populated(db, "T", layout="columnar")
        expression = BaseRef("T").select(col(1) >= 2)
        first = db.evaluate(expression)
        assert db.last_eval_stats.columnar_kernel_rows
        # Same name, same schema, row layout now: the cached columnar plan
        # must not be reused against dict storage.
        db.drop_table("T")
        populated(db, "T")
        second = db.evaluate(expression)
        assert not db.last_eval_stats.columnar_kernel_rows
        assert second.relation.same_content(first.relation)


class TestExpiration:
    @pytest.mark.parametrize("policy", [RemovalPolicy.EAGER, RemovalPolicy.LAZY])
    def test_sweeps_match_row_layout(self, policy):
        db = Database(default_removal_policy=policy)
        populated(db, "rows")
        populated(db, "cols", layout="columnar")
        db.advance_to(19)
        if policy is RemovalPolicy.LAZY:
            db.vacuum_all()
        assert set(db.table("cols").read().rows()) == set(
            db.table("rows").read().rows()
        )

    def test_partitioned_columnar_sweep(self):
        db = Database()
        populated(
            db, "T", layout="columnar", partitions=3, partition_key="k"
        )
        assert len(db.table("T").read()) == 20
        db.advance_to(25)
        expected = {(i % 5, i) for i in range(20) if 10 + i > 25}
        assert set(db.table("T").read().rows()) == expected


class TestPersistence:
    def test_snapshot_round_trip_preserves_layout(self, tmp_path):
        from repro.engine.persistence import (
            load_database,
            save_database,
            table_spec,
        )

        db = Database()
        populated(db, "T", layout="columnar")
        assert table_spec(db.table("T"))["layout"] == "columnar"
        path = tmp_path / "snap.json"
        save_database(db, path)
        restored = load_database(path)
        table = restored.table("T")
        assert table.layout == "columnar"
        assert isinstance(table.relation, ColumnarRelation)
        assert table.relation.same_content(db.table("T").relation)

    def test_wal_recovery_restores_columnar_table(self, tmp_path):
        wal_dir = tmp_path / "wal"
        db = Database(wal_dir=wal_dir)
        populated(db, "T", layout="columnar")
        db.advance_to(12)
        db.table("T").delete((0, 15))
        db.close()
        recovered = recover_database(wal_dir)
        table = recovered.table("T")
        assert table.layout == "columnar"
        assert isinstance(table.relation, ColumnarRelation)
        assert set(table.read().rows()) == set(db.table("T").read().rows())
        assert recovered.now.value == 12


@pytest.mark.skipif(not numpy_available(), reason="numpy not importable")
class TestNumpyBackend:
    def test_database_backend_resolution(self):
        db = Database(columnar_backend="numpy")
        table = db.create_table("T", ["a"], layout="columnar")
        assert table.columnar_backend == "numpy"
        override = db.create_table(
            "U", ["a"], layout="columnar", columnar_backend="python"
        )
        assert override.columnar_backend == "python"

    def test_numpy_results_match_python(self):
        db = Database()
        populated(db, "py", layout="columnar", columnar_backend="python")
        populated(db, "np", layout="columnar", columnar_backend="numpy")
        expression = lambda name: (
            BaseRef(name).select(col(2) >= 8).project(1)
        )
        a = db.evaluate(expression("py"))
        b = db.evaluate(expression("np"))
        assert a.relation.same_content(b.relation)
        # numpy scalars must not leak into result rows.
        for row in b.relation.rows():
            assert all(type(value) is int for value in row)

"""Tests for the Database facade: catalog, time, evaluation, statistics."""

import pytest

from repro.core.timestamps import ts
from repro.engine.database import Database
from repro.engine.expiration_index import RemovalPolicy
from repro.engine.triggers import TriggerManager
from repro.errors import CatalogError


class TestCatalog:
    def test_create_and_lookup(self):
        db = Database()
        table = db.create_table("T", ["a"])
        assert db.table("T") is table
        assert db.has_table("T")
        assert db.table_names() == ["T"]

    def test_duplicate_rejected(self):
        db = Database()
        db.create_table("T", ["a"])
        with pytest.raises(CatalogError):
            db.create_table("T", ["b"])

    def test_unknown_rejected(self):
        with pytest.raises(CatalogError):
            Database().table("T")

    def test_drop(self):
        db = Database()
        db.create_table("T", ["a"])
        db.drop_table("T")
        assert not db.has_table("T")
        with pytest.raises(CatalogError):
            db.drop_table("T")

    def test_table_expr_validates(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.table_expr("T")


class TestTime:
    def test_advance_processes_expirations(self):
        db = Database()
        table = db.create_table("T", ["a"])
        table.insert((1,), expires_at=5)
        db.advance_to(5)
        assert db.total_live_tuples() == 0
        assert db.total_physical_tuples() == 0  # eager by default

    def test_lazy_default_policy(self):
        db = Database(default_removal_policy=RemovalPolicy.LAZY)
        table = db.create_table("T", ["a"])
        table.insert((1,), expires_at=5)
        db.advance_to(5)
        assert db.total_live_tuples() == 0
        assert db.total_physical_tuples() == 1
        assert db.vacuum_all() == 1
        assert db.total_physical_tuples() == 0

    def test_now_property(self):
        db = Database(start_time=4)
        assert db.now == ts(4)
        db.tick(3)
        assert db.now == ts(7)


class TestEvaluation:
    def test_evaluate_at_now(self, figure1_db):
        figure1_db.advance_to(10)
        result = figure1_db.evaluate(figure1_db.table_expr("Pol").project(2))
        assert set(result.relation.rows()) == {(25,)}

    def test_evaluate_at_explicit_time(self, figure1_db):
        result = figure1_db.evaluate(
            figure1_db.table_expr("Pol").project(2), at=10
        )
        assert set(result.relation.rows()) == {(25,)}


class TestStatisticsDiffing:
    def test_snapshot_diff(self):
        db = Database()
        table = db.create_table("T", ["a"])
        before = db.statistics.snapshot()
        table.insert((1,), expires_at=5)
        table.insert((2,))
        db.advance_to(5)
        delta = db.statistics.diff(before)
        assert delta["inserts"] == 2
        assert delta["expirations_processed"] == 1
        assert "explicit_deletes" not in delta

    def test_reset(self):
        db = Database()
        table = db.create_table("T", ["a"])
        table.insert((1,))
        db.statistics.reset()
        assert db.statistics.inserts == 0

    def test_as_dict_stable(self):
        stats = Database().statistics
        assert list(stats.as_dict()) == list(stats.as_dict())


class TestTriggerSystem:
    def test_manager_registration(self):
        manager = TriggerManager("T")
        t = manager.register("a", lambda event: None)
        assert len(manager) == 1
        assert manager.drop("a")
        assert not manager.drop("a")

    def test_duplicate_names(self):
        manager = TriggerManager("T")
        manager.register("a", lambda event: None)
        with pytest.raises(Exception):
            manager.register("a", lambda event: None)

    def test_predicate_guard(self):
        db = Database()
        table = db.create_table("T", ["k", "v"])
        fired = []
        from repro.core.algebra.predicates import col

        table.triggers.register(
            "only_big", lambda event: fired.append(event.tuple.row),
            predicate=(col(2) > 10).resolve(table.schema),
        )
        table.insert((1, 5), expires_at=2)
        table.insert((2, 50), expires_at=2)
        db.advance_to(2)
        assert fired == [(2, 50)]

    def test_trigger_fired_count(self):
        db = Database()
        table = db.create_table("T", ["k"])
        trigger = table.triggers.register("t", lambda event: None)
        table.insert((1,), expires_at=1)
        table.insert((2,), expires_at=1)
        db.advance_to(1)
        assert trigger.fired == 2
        assert db.statistics.triggers_fired == 2

    def test_renewal_pattern_from_paper(self, figure1_db):
        """'After this time, we would either generate a new profile ...
        or ask the user to explicitly renew' -- a trigger that renews."""
        pol = figure1_db.table("Pol")
        renewed = []

        def renew(event):
            uid, deg = event.tuple.row
            # Regenerate the profile from past behaviour: halve the degree.
            renewed.append((uid, deg // 2))

        pol.triggers.register("regenerate", renew)
        figure1_db.advance_to(10)
        assert sorted(renewed) == [(1, 12), (3, 17)]

"""Tests for the write-ahead log: frames, torn tails, compaction."""

import struct
import zlib

import pytest

from repro.core.timestamps import INFINITY, ts
from repro.engine.wal import (
    WriteAheadLog,
    decode_exp,
    decode_prev,
    encode_exp,
    encode_prev,
    scan_log,
)
from repro.errors import WalError


class TestEncodings:
    def test_expiration_roundtrip(self):
        assert encode_exp(INFINITY) is None
        assert encode_exp(ts(5)) == 5
        assert decode_exp(None) == INFINITY
        assert decode_exp(5) == ts(5)

    def test_previous_state_roundtrip(self):
        assert encode_prev(None) == "absent"
        assert encode_prev(INFINITY) is None
        assert encode_prev(ts(7)) == 7
        assert decode_prev("absent") is None
        assert decode_prev(None) == INFINITY
        assert decode_prev(7) == ts(7)


class TestFrames:
    def test_append_and_read_back_in_order(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("clock", now=3)
        wal.append("upsert", table="T", row=[1, 2], texp=9, prev="absent")
        wal.append("remove", table="T", row=[1, 2], prev=9)
        records = wal.records()
        assert [r.kind for r in records] == ["clock", "upsert", "remove"]
        assert records[1]["row"] == [1, 2]
        assert records[1]["texp"] == 9
        wal.close()

    def test_scan_missing_file(self, tmp_path):
        assert scan_log(tmp_path / "nope.log") == ([], 0, False)

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(WalError):
            wal.append("clock", now=1)

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(WalError):
            WriteAheadLog(tmp_path, fsync="sometimes")

    def test_txn_counter_seeds_past_logged_ids(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("begin", txn=5)
        wal.append("commit", txn=5)
        wal.close()
        reopened = WriteAheadLog(tmp_path)
        assert reopened.next_txn_id() == 6
        reopened.close()

    def test_reset_empties_the_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("clock", now=1)
        wal.reset()
        assert wal.records() == []
        wal.append("clock", now=2)  # still appendable after reset
        assert [r["now"] for r in wal.records()] == [2]
        wal.close()


class TestTornTails:
    def _intact(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("clock", now=1)
        wal.append("upsert", table="T", row=[1], texp=None, prev="absent")
        wal.close()
        return wal.log_path, len(wal.log_path.read_bytes())

    @pytest.mark.parametrize(
        "tail",
        [
            b"\x00\x00",                               # short header
            struct.pack(">II", 40, 0) + b"abc",        # short payload
            struct.pack(">II", 2**31, 0) + b"x" * 32,  # absurd length
            struct.pack(">II", 3, 12345) + b"abc",     # CRC mismatch
            struct.pack(">II", 2, zlib.crc32(b"[]")) + b"[]",  # not a record
        ],
    )
    def test_tail_is_detected_and_truncated(self, tmp_path, tail):
        path, valid = self._intact(tmp_path)
        with open(path, "ab") as fh:
            fh.write(tail)
        records, length, torn = scan_log(path)
        assert torn
        assert length == valid
        assert [r.kind for r in records] == ["clock", "upsert"]
        wal = WriteAheadLog(tmp_path)
        with pytest.warns(UserWarning, match="torn tail"):
            assert wal.truncate_torn_tail()
        assert len(path.read_bytes()) == valid
        assert not wal.truncate_torn_tail()  # nothing left to drop
        wal.close()

    def test_clean_log_is_not_torn(self, tmp_path):
        path, valid = self._intact(tmp_path)
        records, length, torn = scan_log(path)
        assert not torn
        assert length == valid
        wal = WriteAheadLog(tmp_path)
        assert not wal.truncate_torn_tail()
        wal.close()


class TestCompaction:
    def test_superseded_and_expired_are_dropped(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("create_table", spec={"name": "T", "columns": ["k"]})
        wal.append("upsert", table="T", row=[1], texp=5, prev="absent")
        wal.append("upsert", table="T", row=[1], texp=20, prev=5)  # renewal
        wal.append("upsert", table="T", row=[2], texp=8, prev="absent")
        wal.append("clock", now=10)
        stats = wal.compact(now=10)
        # row 1: first upsert superseded; row 2: expired at now=10 and not
        # in any base snapshot, so it vanishes outright.
        assert stats["superseded"] == 1
        assert stats["expired"] == 1
        assert stats["demoted"] == 0
        records = wal.records()
        assert [r.kind for r in records] == ["create_table", "upsert", "clock"]
        assert records[1]["texp"] == 20
        assert records[-1]["now"] == 10
        wal.close()

    def test_expired_base_row_demotes_to_remove(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("upsert", table="T", row=[1], texp=5, prev=None)
        stats = wal.compact(now=10, base_rows={("T", (1,))})
        assert stats["demoted"] == 1
        records = wal.records()
        assert [r.kind for r in records] == ["remove", "clock"]
        assert records[0]["row"] == [1]
        wal.close()

    def test_brackets_and_clocks_collapse_and_txn_tags_strip(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("clock", now=1)
        wal.append("begin", txn=1)
        wal.append("upsert", table="T", row=[1], texp=None, prev="absent",
                   txn=1)
        wal.append("commit", txn=1)
        wal.append("clock", now=2)
        stats = wal.compact(now=2)
        assert stats["collapsed"] == 4  # two clocks + begin + commit
        records = wal.records()
        assert [r.kind for r in records] == ["upsert", "clock"]
        assert "txn" not in records[0]  # resolved bracket must not revive
        wal.close()

    def test_refuses_open_transaction(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("begin", txn=1)
        wal.append("upsert", table="T", row=[1], texp=None, prev="absent",
                   txn=1)
        stats = wal.compact(now=0)
        assert stats == {"kept": 0, "expired": 0, "superseded": 0,
                         "collapsed": 0, "demoted": 0}
        assert len(wal.records()) == 2  # untouched
        wal.close()

    def test_refuses_torn_tail(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append("clock", now=1)
        wal.close()
        with open(wal.log_path, "ab") as fh:
            fh.write(b"\xff\xff")
        wal = WriteAheadLog(tmp_path)
        with pytest.raises(WalError, match="torn tail"):
            wal.compact(now=1)
        wal.close()

    def test_compaction_is_replay_equivalent(self, tmp_path):
        """Compacting must not change what scan_log-driven replay sees."""
        wal = WriteAheadLog(tmp_path)
        wal.append("upsert", table="T", row=[1], texp=5, prev="absent")
        wal.append("upsert", table="T", row=[1], texp=30, prev=5)
        wal.append("remove", table="T", row=[2], prev=9)
        wal.append("upsert", table="T", row=[3], texp=4, prev="absent")
        wal.append("clock", now=10)

        def final_visible(records, now):
            state = {}
            for r in records:
                key = tuple(r["row"]) if "row" in r else None
                if r.kind == "upsert":
                    state[key] = r["texp"]
                elif r.kind == "remove":
                    state.pop(key, None)
            return {
                k: t for k, t in state.items() if t is None or t > now
            }

        before = final_visible(wal.records(), 10)
        wal.compact(now=10)
        assert final_visible(wal.records(), 10) == before
        wal.close()

"""Tests for expiration-aware integrity constraints."""

import pytest

from repro.core.algebra.predicates import col
from repro.engine.constraints import (
    CheckConstraint,
    ForeignKeyConstraint,
    KeyConstraint,
)
from repro.engine.database import Database
from repro.errors import ConstraintViolation, EngineError


@pytest.fixture
def db():
    return Database()


class TestCheckConstraint:
    def test_accepts_valid(self, db):
        table = db.create_table("T", ["k", "v"])
        table.add_constraint(CheckConstraint("positive", col("v") > 0))
        table.insert((1, 5))

    def test_rejects_invalid(self, db):
        table = db.create_table("T", ["k", "v"])
        table.add_constraint(CheckConstraint("positive", col("v") > 0))
        with pytest.raises(ConstraintViolation):
            table.insert((1, 0))
        assert len(table) == 0
        assert db.statistics.constraint_violations == 1

    def test_positional_predicate(self, db):
        table = db.create_table("T", ["k", "v"])
        table.add_constraint(CheckConstraint("c", col(1) == col(2)))
        table.insert((3, 3))
        with pytest.raises(ConstraintViolation):
            table.insert((3, 4))


class TestKeyConstraint:
    def test_rejects_duplicate_key(self, db):
        table = db.create_table("T", ["k", "v"])
        table.add_constraint(KeyConstraint("pk", ["k"]))
        table.insert((1, 5), expires_at=10)
        with pytest.raises(ConstraintViolation):
            table.insert((1, 6), expires_at=10)

    def test_same_row_renewal_allowed(self, db):
        table = db.create_table("T", ["k", "v"])
        table.add_constraint(KeyConstraint("pk", ["k"]))
        table.insert((1, 5), expires_at=10)
        table.insert((1, 5), expires_at=20)  # renewal, not a violation

    def test_expired_rows_do_not_collide(self, db):
        table = db.create_table("T", ["k", "v"], lazy_batch_size=10**6)
        table.removal_policy = type(table.removal_policy).LAZY
        table.add_constraint(KeyConstraint("pk", ["k"]))
        table.insert((1, 5), expires_at=10)
        db.advance_to(10)
        # The old row is expired (even if physically present): no clash.
        table.insert((1, 6), expires_at=20)

    def test_composite_key(self, db):
        table = db.create_table("T", ["a", "b", "v"])
        table.add_constraint(KeyConstraint("pk", ["a", "b"]))
        table.insert((1, 1, 5))
        table.insert((1, 2, 5))
        with pytest.raises(ConstraintViolation):
            table.insert((1, 1, 9))


class TestForeignKey:
    def test_child_must_reference_parent(self, db):
        parent = db.create_table("P", ["id", "name"])
        child = db.create_table("C", ["pid", "x"])
        child.add_constraint(ForeignKeyConstraint("fk", ["pid"], "P", ["id"]))
        parent.insert((1, "a"), expires_at=100)
        child.insert((1, 9), expires_at=50)
        with pytest.raises(ConstraintViolation):
            child.insert((2, 9), expires_at=50)

    def test_child_cannot_outlive_parent(self, db):
        parent = db.create_table("P", ["id", "name"])
        child = db.create_table("C", ["pid", "x"])
        child.add_constraint(ForeignKeyConstraint("fk", ["pid"], "P", ["id"]))
        parent.insert((1, "a"), expires_at=20)
        with pytest.raises(ConstraintViolation):
            child.insert((1, 9), expires_at=30)
        child.insert((1, 9), expires_at=20)  # equal lifetime is fine

    def test_infinite_parent_allows_infinite_child(self, db):
        parent = db.create_table("P", ["id"])
        child = db.create_table("C", ["pid"])
        child.add_constraint(ForeignKeyConstraint("fk", ["pid"], "P", ["id"]))
        parent.insert((1,))
        child.insert((1,))

    def test_longest_matching_parent_wins(self, db):
        parent = db.create_table("P", ["id", "v"])
        child = db.create_table("C", ["pid"])
        child.add_constraint(ForeignKeyConstraint("fk", ["pid"], "P", ["id"]))
        parent.insert((1, 0), expires_at=10)
        parent.insert((1, 1), expires_at=50)
        child.insert((1,), expires_at=40)  # fits the second parent row

    def test_expired_parent_does_not_satisfy(self, db):
        parent = db.create_table("P", ["id"], lazy_batch_size=10**6)
        parent.removal_policy = type(parent.removal_policy).LAZY
        child = db.create_table("C", ["pid"])
        child.add_constraint(ForeignKeyConstraint("fk", ["pid"], "P", ["id"]))
        parent.insert((1,), expires_at=5)
        db.advance_to(5)
        with pytest.raises(ConstraintViolation):
            child.insert((1,), expires_at=10)

    def test_mismatched_attribute_counts(self):
        with pytest.raises(ConstraintViolation):
            ForeignKeyConstraint("fk", ["a", "b"], "P", ["id"])


class TestConstraintManagement:
    def test_duplicate_names_rejected(self, db):
        table = db.create_table("T", ["k"])
        table.add_constraint(CheckConstraint("c", col(1) > 0))
        with pytest.raises(EngineError):
            table.add_constraint(CheckConstraint("c", col(1) > 1))

    def test_checks_counted(self, db):
        table = db.create_table("T", ["k"])
        table.add_constraint(CheckConstraint("c", col(1) > 0))
        table.insert((1,))
        table.insert((2,))
        assert db.statistics.constraint_checks == 2

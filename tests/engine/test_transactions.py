"""Tests for buffered transactions."""

import pytest

from repro.core.algebra.predicates import col
from repro.core.timestamps import INFINITY, ts
from repro.engine.constraints import CheckConstraint
from repro.engine.database import Database
from repro.engine.transactions import TransactionState
from repro.errors import ConstraintViolation, TransactionError


@pytest.fixture
def db():
    database = Database()
    database.create_table("T", ["k", "v"])
    return database


class TestCommit:
    def test_applies_on_commit(self, db):
        txn = db.transaction()
        txn.insert("T", (1, 2), expires_at=10)
        txn.insert("T", (3, 4))
        assert len(db.table("T")) == 0  # buffered, not applied
        txn.commit()
        assert len(db.table("T")) == 2
        assert txn.state is TransactionState.COMMITTED
        assert db.statistics.transactions_committed == 1

    def test_delete(self, db):
        db.table("T").insert((1, 2))
        with db.transaction() as txn:
            txn.delete("T", (1, 2))
        assert len(db.table("T")) == 0

    def test_context_manager_commits(self, db):
        with db.transaction() as txn:
            txn.insert("T", (1, 2), ttl=5)
        assert len(db.table("T")) == 1

    def test_context_manager_aborts_on_exception(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction() as txn:
                txn.insert("T", (1, 2))
                raise RuntimeError("boom")
        assert len(db.table("T")) == 0
        assert db.statistics.transactions_aborted == 1


class TestAtomicity:
    def test_constraint_failure_undoes_everything(self, db):
        db.table("T").add_constraint(CheckConstraint("pos", col("v") > 0))
        txn = db.transaction()
        txn.insert("T", (1, 5))
        txn.insert("T", (2, -1))  # violates
        with pytest.raises(ConstraintViolation):
            txn.commit()
        assert len(db.table("T")) == 0
        assert txn.state is TransactionState.ABORTED

    def test_undo_restores_previous_expiration(self, db):
        db.table("T").add_constraint(CheckConstraint("pos", col("v") > 0))
        db.table("T").insert((1, 5), expires_at=10)
        txn = db.transaction()
        txn.insert("T", (1, 5), expires_at=99)  # lifetime extension
        txn.insert("T", (2, -1))  # violates -> rollback
        with pytest.raises(ConstraintViolation):
            txn.commit()
        assert db.table("T").relation.expiration_of((1, 5)) == ts(10)

    def test_undo_restores_deleted_row(self, db):
        db.table("T").add_constraint(CheckConstraint("pos", col("v") > 0))
        db.table("T").insert((1, 5), expires_at=10)
        txn = db.transaction()
        txn.delete("T", (1, 5))
        txn.insert("T", (2, -1))
        with pytest.raises(ConstraintViolation):
            txn.commit()
        assert (1, 5) in db.table("T").relation
        assert db.table("T").relation.expiration_of((1, 5)) == ts(10)


class TestLifecycle:
    def test_unknown_table_fails_fast(self, db):
        txn = db.transaction()
        with pytest.raises(Exception):
            txn.insert("Nope", (1,))

    def test_no_ops_after_commit(self, db):
        txn = db.transaction()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.insert("T", (1, 2))
        with pytest.raises(TransactionError):
            txn.commit()

    def test_abort_discards(self, db):
        txn = db.transaction()
        txn.insert("T", (1, 2))
        txn.abort()
        assert len(db.table("T")) == 0
        with pytest.raises(TransactionError):
            txn.commit()

"""Tests for JSON snapshots of databases."""

import json

import pytest

from repro.core.timestamps import INFINITY, ts
from repro.engine.expiration_index import RemovalPolicy
from repro.engine.persistence import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)
from repro.engine.views import MaintenancePolicy
from repro.errors import EngineError
from repro.workloads.news import figure1_database


class TestRoundtrip:
    def test_tables_and_rows(self, figure1_db):
        restored = database_from_dict(database_to_dict(figure1_db))
        assert restored.table_names() == ["El", "Pol"]
        assert restored.table("Pol").relation.same_content(
            figure1_db.table("Pol").relation
        )
        assert restored.now == figure1_db.now

    def test_clock_preserved(self, figure1_db):
        figure1_db.advance_to(7)
        restored = database_from_dict(database_to_dict(figure1_db))
        assert restored.now == ts(7)
        # Expired tuples were eagerly removed before the snapshot.
        assert set(restored.table("El").read().rows()) == set()

    def test_infinite_expirations(self, figure1_db):
        figure1_db.table("Pol").insert((9, 99))
        restored = database_from_dict(database_to_dict(figure1_db))
        assert restored.table("Pol").relation.expiration_of((9, 99)) == INFINITY

    def test_views_rematerialised(self, figure1_db):
        expr = figure1_db.table_expr("Pol").project(1).difference(
            figure1_db.table_expr("El").project(1)
        )
        figure1_db.materialise("watch", expr, policy=MaintenancePolicy.PATCH)
        restored = database_from_dict(database_to_dict(figure1_db))
        view = restored.view("watch")
        assert view.policy is MaintenancePolicy.PATCH
        assert set(view.read().rows()) == {(3,)}
        restored.advance_to(5)
        assert set(view.read().rows()) == {(1,), (2,), (3,)}

    def test_removal_policy_preserved(self):
        from repro.engine.database import Database

        db = Database(default_removal_policy=RemovalPolicy.LAZY)
        db.create_table("T", ["a"], lazy_batch_size=7)
        restored = database_from_dict(database_to_dict(db))
        assert restored.table("T").removal_policy is RemovalPolicy.LAZY
        assert restored.table("T").lazy_batch_size == 7

    def test_expirations_still_fire_after_restore(self, figure1_db):
        restored = database_from_dict(database_to_dict(figure1_db))
        fired = []
        restored.table("Pol").triggers.register(
            "t", lambda event: fired.append(event.tuple.row)
        )
        restored.advance_to(10)
        assert sorted(fired) == [(1, 25), (3, 35)]

    def test_file_roundtrip(self, figure1_db, tmp_path):
        path = tmp_path / "snapshot.json"
        save_database(figure1_db, path)
        data = json.loads(path.read_text())
        assert data["format"] == 1
        restored = load_database(path)
        assert restored.table("El").relation.same_content(
            figure1_db.table("El").relation
        )


class TestValidation:
    def test_non_json_values_rejected(self, figure1_db):
        figure1_db.create_table("Weird", ["a"]).insert(((1, 2),))  # nested tuple
        with pytest.raises(EngineError):
            database_to_dict(figure1_db)

    def test_unknown_format(self):
        with pytest.raises(EngineError):
            database_from_dict({"format": 99})

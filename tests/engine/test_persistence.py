"""Tests for JSON snapshots of databases."""

import json

import pytest

from repro.core.timestamps import INFINITY, ts
from repro.engine.expiration_index import RemovalPolicy
from repro.engine.persistence import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)
from repro.engine.views import MaintenancePolicy
from repro.errors import EngineError
from repro.workloads.news import figure1_database


class TestRoundtrip:
    def test_tables_and_rows(self, figure1_db):
        restored = database_from_dict(database_to_dict(figure1_db))
        assert restored.table_names() == ["El", "Pol"]
        assert restored.table("Pol").relation.same_content(
            figure1_db.table("Pol").relation
        )
        assert restored.now == figure1_db.now

    def test_clock_preserved(self, figure1_db):
        figure1_db.advance_to(7)
        restored = database_from_dict(database_to_dict(figure1_db))
        assert restored.now == ts(7)
        # Expired tuples were eagerly removed before the snapshot.
        assert set(restored.table("El").read().rows()) == set()

    def test_infinite_expirations(self, figure1_db):
        figure1_db.table("Pol").insert((9, 99))
        restored = database_from_dict(database_to_dict(figure1_db))
        assert restored.table("Pol").relation.expiration_of((9, 99)) == INFINITY

    def test_views_rematerialised(self, figure1_db):
        expr = figure1_db.table_expr("Pol").project(1).difference(
            figure1_db.table_expr("El").project(1)
        )
        figure1_db.materialise("watch", expr, policy=MaintenancePolicy.PATCH)
        restored = database_from_dict(database_to_dict(figure1_db))
        view = restored.view("watch")
        assert view.policy is MaintenancePolicy.PATCH
        assert set(view.read().rows()) == {(3,)}
        restored.advance_to(5)
        assert set(view.read().rows()) == {(1,), (2,), (3,)}

    def test_removal_policy_preserved(self):
        from repro.engine.database import Database

        db = Database(default_removal_policy=RemovalPolicy.LAZY)
        db.create_table("T", ["a"], lazy_batch_size=7)
        restored = database_from_dict(database_to_dict(db))
        assert restored.table("T").removal_policy is RemovalPolicy.LAZY
        assert restored.table("T").lazy_batch_size == 7

    def test_expirations_still_fire_after_restore(self, figure1_db):
        restored = database_from_dict(database_to_dict(figure1_db))
        fired = []
        restored.table("Pol").triggers.register(
            "t", lambda event: fired.append(event.tuple.row)
        )
        restored.advance_to(10)
        assert sorted(fired) == [(1, 25), (3, 35)]

    def test_file_roundtrip(self, figure1_db, tmp_path):
        path = tmp_path / "snapshot.json"
        save_database(figure1_db, path)
        data = json.loads(path.read_text())
        assert data["format"] == 1
        restored = load_database(path)
        assert restored.table("El").relation.same_content(
            figure1_db.table("El").relation
        )


class TestIndexFactoryAndViewSettings:
    """Round-trip regressions for the substrate and view knobs that the
    snapshot format previously silently dropped."""

    def _partitioned_timer_wheel_db(self):
        from repro.engine.database import Database
        from repro.engine.timer_wheel import TimerWheelIndex

        db = Database()
        db.create_table(
            "P", ["k", "v"], partitions=3, partition_key="k",
            index_factory=TimerWheelIndex,
        )
        db.create_table("F", ["k", "v"], index_factory=TimerWheelIndex)
        for key in range(12):
            db.table("P").insert((key, key % 4), expires_at=10 + key)
            db.table("F").insert((key, key % 4), expires_at=10 + key)
        db.materialise(
            "W", db.table_expr("F").difference(db.table_expr("P")),
            policy=MaintenancePolicy.PATCH, patch_limit=5,
        )
        return db

    def test_index_factory_roundtrip(self):
        from repro.engine.timer_wheel import TimerWheelIndex

        db = self._partitioned_timer_wheel_db()
        restored = database_from_dict(database_to_dict(db))
        assert restored.table("P").index_factory is TimerWheelIndex
        assert restored.table("F").index_factory is TimerWheelIndex
        assert restored.table("P").partitions == 3
        # The restored substrate behaves: expirations still sweep.
        db.advance_to(15)
        restored.advance_to(15)
        assert set(restored.table("P").read().rows()) == set(
            db.table("P").read().rows()
        )

    def test_patch_limit_roundtrip(self):
        db = self._partitioned_timer_wheel_db()
        restored = database_from_dict(database_to_dict(db))
        view = restored.view("W")
        assert view.policy is MaintenancePolicy.PATCH
        assert view.patch_limit == 5
        assert set(view.read().rows()) == set(db.view("W").read().rows())

    def test_unknown_custom_factory_warns_and_degrades(self):
        from repro.engine.database import Database
        from repro.engine.expiration_index import ExpirationIndex

        class OddIndex(ExpirationIndex):
            pass

        db = Database()
        db.create_table("T", ["k"], index_factory=OddIndex)
        with pytest.warns(UserWarning, match="not one of the persistable"):
            data = database_to_dict(db)
        assert "index_factory" not in data["tables"][0]

    def test_unknown_factory_name_rejected(self):
        from repro.engine.database import Database

        data = database_to_dict(Database())
        data["tables"] = [{
            "name": "T", "columns": ["k"], "removal_policy": "eager",
            "index_factory": "skip_list", "rows": [],
        }]
        with pytest.raises(EngineError, match="unknown index_factory"):
            database_from_dict(data)


class TestValidation:
    def test_non_json_values_rejected(self, figure1_db):
        figure1_db.create_table("Weird", ["a"]).insert(((1, 2),))  # nested tuple
        with pytest.raises(EngineError):
            database_to_dict(figure1_db)

    def test_unknown_format(self):
        with pytest.raises(EngineError):
            database_from_dict({"format": 99})

"""Crash-recovery edge cases.

Empty/log-only/snapshot-only starting states, torn final records,
logs whose every record is already expired, and transactions in flight
(applying or aborting) at the moment of the crash.
"""

import pytest

from repro.core.timestamps import ts
from repro.engine.database import Database
from repro.engine.recovery import recover_database
from repro.engine.views import MaintenancePolicy
from repro.engine.wal import WriteAheadLog, scan_log
from repro.errors import RecoveryError, RelationError, WalError


def durable(tmp_path, **kwargs):
    return Database(wal_dir=tmp_path, **kwargs)


class TestStartingStates:
    def test_empty_directory(self, tmp_path):
        db = recover_database(tmp_path)
        assert db.table_names() == []
        assert db.now == ts(0)
        report = db.last_recovery
        assert not report.snapshot_loaded
        assert report.records_replayed == 0
        assert not report.torn_tail_truncated
        db.close()

    def test_log_only(self, tmp_path):
        db = durable(tmp_path)
        db.create_table("T", ["k", "v"]).insert((1, 2), expires_at=50)
        db.table("T").insert((3, 4))  # immortal
        db.tick(5)
        db.close()

        recovered = recover_database(tmp_path)
        assert not recovered.last_recovery.snapshot_loaded
        assert recovered.now == ts(5)
        assert set(recovered.table("T").read().rows()) == {(1, 2), (3, 4)}
        assert recovered.table("T").relation.expiration_of((1, 2)) == ts(50)
        recovered.close()

    def test_snapshot_only(self, tmp_path):
        db = durable(tmp_path)
        db.create_table("T", ["k"]).insert((1,), expires_at=9)
        db.checkpoint()  # snapshot written, log truncated
        db.close()

        recovered = recover_database(tmp_path)
        report = recovered.last_recovery
        assert report.snapshot_loaded
        assert report.records_replayed == 0
        assert set(recovered.table("T").read().rows()) == {(1,)}
        recovered.close()

    def test_snapshot_plus_log(self, tmp_path):
        db = durable(tmp_path)
        db.create_table("T", ["k"]).insert((1,), expires_at=9)
        db.checkpoint()
        db.table("T").insert((2,), expires_at=30)
        db.tick(4)
        db.close()

        recovered = recover_database(tmp_path)
        report = recovered.last_recovery
        assert report.snapshot_loaded
        assert report.records_replayed > 0
        assert recovered.now == ts(4)
        assert set(recovered.table("T").read().rows()) == {(1,), (2,)}
        recovered.close()

    def test_unreadable_snapshot_raises(self, tmp_path):
        (tmp_path / WriteAheadLog.SNAPSHOT_NAME).write_text("{oops")
        with pytest.raises(RecoveryError, match="unreadable snapshot"):
            recover_database(tmp_path)

    def test_start_time_kwarg_rejected(self, tmp_path):
        with pytest.raises(RecoveryError):
            recover_database(tmp_path, start_time=5)

    def test_fresh_database_refuses_durable_directory(self, tmp_path):
        db = durable(tmp_path)
        db.create_table("T", ["k"]).insert((1,))
        db.close()
        with pytest.raises(WalError, match="recover"):
            Database(wal_dir=tmp_path)


class TestTornTail:
    def test_torn_final_record_truncated_with_warning(self, tmp_path):
        db = durable(tmp_path)
        db.create_table("T", ["k"]).insert((1,), expires_at=50)
        db.close()
        with open(tmp_path / WriteAheadLog.LOG_NAME, "ab") as fh:
            fh.write(b"\x00\x00\x01\x00partial")  # frame torn mid-payload

        with pytest.warns(UserWarning, match="torn tail"):
            recovered = recover_database(tmp_path)
        assert recovered.last_recovery.torn_tail_truncated
        assert set(recovered.table("T").read().rows()) == {(1,)}
        # The log is clean again: a second recovery sees no torn tail.
        recovered.close()
        again = recover_database(tmp_path)
        assert not again.last_recovery.torn_tail_truncated
        again.close()


class TestExpirationAwareReplay:
    def test_all_records_expired_leaves_valid_empty_tables(self, tmp_path):
        db = durable(tmp_path)
        table = db.create_table("T", ["k"])
        for key in range(5):
            table.insert((key,), expires_at=key + 1)
        db.advance_to(10)
        db.close()

        recovered = recover_database(tmp_path)
        report = recovered.last_recovery
        assert report.records_skipped_expired == 5
        assert recovered.now == ts(10)
        table = recovered.table("T")
        assert len(table) == 0
        assert table.physical_size == 0
        # The schema survived: the table is immediately usable.
        table.insert((99,), expires_at=20)
        assert set(table.read().rows()) == {(99,)}
        recovered.close()

    def test_expired_upsert_erases_snapshot_incarnation(self, tmp_path):
        # Snapshot holds the row immortal; after the checkpoint it is
        # deleted and re-inserted with a short life that has lapsed by the
        # crash.  Skipping the expired upsert must also erase the snapshot
        # copy, not let it leak back.
        db = durable(tmp_path)
        db.create_table("T", ["k"]).insert((1,))
        db.checkpoint()
        db.table("T").delete((1,))
        db.table("T").insert((1,), expires_at=3)
        db.advance_to(5)
        db.close()

        recovered = recover_database(tmp_path)
        assert set(recovered.table("T").read().rows()) == set()
        assert recovered.table("T").physical_size == 0
        recovered.close()

    def test_partitioned_sweep_removals_are_durable(self, tmp_path):
        # Regression: the partitioned sweep path skipped the WAL remove
        # records the flat path writes, so rows snapshotted before a
        # sweep were resurrected at recovery and their ON-EXPIRE
        # triggers fired a second time.
        from repro.engine.expiration_index import RemovalPolicy

        db = durable(tmp_path, default_removal_policy=RemovalPolicy.LAZY)
        table = db.create_table(
            "T", ["k", "v"], partitions=3, partition_key="k",
            lazy_batch_size=1_000,
        )
        fired = []
        table.triggers.register(
            "audit", lambda event: fired.append(event.tuple.row)
        )
        for key in range(6):
            table.insert((key, key), expires_at=4)
        db.checkpoint()  # the snapshot retains all six rows
        db.advance_to(5)
        assert table.vacuum() == 6  # sweep fires + must log removes
        assert len(fired) == 6
        db.close()

        recovered = recover_database(tmp_path)
        t = recovered.table("T")
        assert t.physical_size == 0  # nothing resurrected
        refired = []
        t.triggers.register(
            "audit", lambda event: refired.append(event.tuple.row)
        )
        recovered.tick(1)
        assert t.vacuum() == 0
        assert refired == []  # each (row, texp) fired exactly once
        assert recovered.verify(strict=True, deep=True) == []
        recovered.close()


class TestInFlightTransactions:
    def test_unbracketed_transaction_rolled_back(self, tmp_path):
        db = durable(tmp_path)
        db.create_table("T", ["k"]).insert((1,), expires_at=100)
        db.close()
        # Hand-write the crash shape: a begin with physical records and no
        # closing bracket -- the process died mid-apply.
        wal = WriteAheadLog(tmp_path)
        txn = wal.next_txn_id()
        wal.append("begin", txn=txn)
        wal.append("upsert", table="T", row=[5], texp=None, prev="absent",
                   txn=txn)
        wal.append("upsert", table="T", row=[1], texp=200, prev=100, txn=txn)
        wal.close()

        recovered = recover_database(tmp_path)
        assert recovered.last_recovery.transactions_rolled_back == 1
        assert set(recovered.table("T").read().rows()) == {(1,)}
        assert recovered.table("T").relation.expiration_of((1,)) == ts(100)
        recovered.close()

    def test_aborting_transaction_at_crash_leaves_pre_txn_state(self, tmp_path):
        db = durable(tmp_path)
        db.create_table("T", ["k"]).insert((1,), expires_at=50)
        txn = db.transaction()
        txn.insert("T", (2,), expires_at=80)
        txn.insert("T", (9,), expires_at=db.now)  # rejected at apply time
        with pytest.raises(RelationError):
            txn.commit()  # aborts, logging compensating records + bracket
        db.close()

        recovered = recover_database(tmp_path)
        assert recovered.last_recovery.transactions_rolled_back == 0
        assert set(recovered.table("T").read().rows()) == {(1,)}
        assert recovered.table("T").relation.expiration_of((1,)) == ts(50)
        recovered.close()


class TestComposition:
    def test_recover_continue_crash_recover_again(self, tmp_path):
        db = durable(tmp_path)
        db.create_table("T", ["k"]).insert((1,), expires_at=100)
        db.close()

        first = recover_database(tmp_path)
        first.table("T").insert((2,), expires_at=100)
        first.tick(3)
        first.close()

        second = recover_database(tmp_path)
        assert second.now == ts(3)
        assert set(second.table("T").read().rows()) == {(1,), (2,)}
        second.close()

    def test_views_rematerialised_never_logged(self, tmp_path):
        db = durable(tmp_path)
        db.create_table("T", ["k", "v"])
        db.create_table("U", ["k", "v"])
        db.materialise(
            "W", db.table_expr("T").difference(db.table_expr("U")),
            policy=MaintenancePolicy.PATCH, patch_limit=4,
        )
        db.table("T").insert((1, 10), expires_at=50)
        db.table("T").insert((2, 20))
        db.close()

        # The log records the view's definition, never its content.
        records, _, _ = scan_log(tmp_path / WriteAheadLog.LOG_NAME)
        assert [r.kind for r in records].count("create_view") == 1

        recovered = recover_database(tmp_path)
        view = recovered.view("W")
        assert view.policy is MaintenancePolicy.PATCH
        assert view.patch_limit == 4
        assert set(view.read().rows()) == {(1, 10), (2, 20)}
        recovered.close()

    def test_unknown_record_kind_warns_and_continues(self, tmp_path):
        db = durable(tmp_path)
        db.create_table("T", ["k"]).insert((1,))
        db.close()
        wal = WriteAheadLog(tmp_path)
        wal.append("hologram", payload=1)
        wal.close()

        with pytest.warns(UserWarning, match="unknown WAL record kind"):
            recovered = recover_database(tmp_path)
        assert set(recovered.table("T").read().rows()) == {(1,)}
        recovered.close()


class TestSweepRemovalDurability:
    """Every physical-removal path must WAL-log what it reclaims.

    The partitioned-LAZY variant above is the original regression; this
    sweeps the whole matrix -- the flat eager drain, the lazy vacuum,
    the columnar in-line expiry, and the partitioned parallel sweep, in
    row and columnar layouts -- because each one removes rows through
    different code and any of them silently skipping the WAL resurrects
    swept rows from the snapshot and re-fires their ON-EXPIRE triggers.
    """

    LAYOUTS = [
        {},
        {"layout": "columnar"},
        {"partitions": 3, "partition_key": "k"},
        {"partitions": 3, "partition_key": "k", "layout": "columnar"},
    ]

    @pytest.mark.parametrize("kwargs", LAYOUTS)
    @pytest.mark.parametrize("policy", ["EAGER", "LAZY"])
    def test_swept_rows_stay_dead_after_recovery(self, tmp_path, kwargs, policy):
        from repro.engine.expiration_index import RemovalPolicy

        removal = RemovalPolicy[policy]
        db = durable(tmp_path)
        table = db.create_table(
            "T", ["k", "v"], removal_policy=removal,
            lazy_batch_size=1_000, **kwargs,
        )
        fired = []
        table.triggers.register(
            "audit", lambda event: fired.append(event.tuple.row)
        )
        for key in range(6):
            table.insert((key, key), expires_at=4)
        table.insert((99, 99), expires_at=50)  # a survivor
        db.checkpoint()  # snapshot retains all seven rows
        db.advance_to(5)  # EAGER: the sweep happens right here
        if removal is RemovalPolicy.LAZY:
            assert table.vacuum() == 6
        assert len(fired) == 6
        assert table.physical_size == 1
        db.close()

        recovered = recover_database(tmp_path)
        t = recovered.table("T")
        refired = []
        t.triggers.register(
            "audit", lambda event: refired.append(event.tuple.row)
        )
        assert t.physical_size == 1  # nothing resurrected
        assert set(t.read().rows()) == {(99, 99)}
        recovered.tick(1)
        if removal is RemovalPolicy.LAZY:
            t.vacuum()
        assert refired == []  # each (row, texp) fired exactly once
        assert recovered.verify(strict=True, deep=True) == []
        recovered.close()

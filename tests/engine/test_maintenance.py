"""Tests for incremental view maintenance under base inserts (§5 extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import ExpirationStrategy
from repro.core.algebra.expressions import BaseRef
from repro.core.algebra.predicates import col
from repro.engine.database import Database
from repro.engine.maintenance import IncrementalView, supports_incremental
from repro.errors import ViewError


def fresh(db, expression, at=None):
    return set(db.evaluate(expression, at=at).relation.rows())


@pytest.fixture
def db():
    database = Database()
    database.create_table("R", ["k", "v"])
    database.create_table("S", ["k", "v"])
    return database


class TestSupport:
    def test_monotonic_linear(self, db):
        assert supports_incremental(db.table_expr("R").project(1))
        assert supports_incremental(
            db.table_expr("R").join(db.table_expr("S"), on=[(1, 1)])
        )

    def test_nonlinear_rejected(self, db):
        expr = db.table_expr("R").join(db.table_expr("R"), on=[(1, 1)])
        assert not supports_incremental(expr)

    def test_difference_disjoint(self, db):
        assert supports_incremental(
            db.table_expr("R").difference(db.table_expr("S"))
        )

    def test_difference_shared_base_rejected(self, db):
        expr = db.table_expr("R").difference(
            db.table_expr("R").select(col(2) == 1)
        )
        assert not supports_incremental(expr)

    def test_aggregate_over_monotonic(self, db):
        expr = db.table_expr("R").aggregate(group_by=[2], function="count")
        assert supports_incremental(expr)

    def test_unsupported_raises(self, db):
        inner = db.table_expr("R").difference(db.table_expr("S"))
        with pytest.raises(ViewError):
            IncrementalView(db, "v", inner.difference(db.table_expr("S")))


class TestMonotonicDeltas:
    def test_insert_propagates(self, db):
        expr = db.table_expr("R").project(2)
        view = IncrementalView(db, "v", expr)
        db.table("R").insert((1, 10), expires_at=20)
        db.table("R").insert((2, 30), expires_at=10)
        assert set(view.read().rows()) == fresh(db, expr)
        assert view.delta_applications == 2
        assert view.refreshes == 1  # only the initial build

    def test_join_delta_uses_other_side(self, db):
        expr = db.table_expr("R").join(db.table_expr("S"), on=[(1, 1)])
        view = IncrementalView(db, "v", expr)
        db.table("S").insert((7, 100), expires_at=50)
        db.table("R").insert((7, 1), expires_at=30)
        assert set(view.read().rows()) == {(7, 1, 7, 100)}
        # Expiration is the min of the parents.
        db.advance_to(30)
        assert set(view.read().rows()) == set()

    def test_duplicate_insert_extends_lifetime(self, db):
        expr = db.table_expr("R").project(2)
        view = IncrementalView(db, "v", expr)
        db.table("R").insert((1, 10), expires_at=5)
        db.table("R").insert((2, 10), expires_at=15)  # same projection
        db.advance_to(10)
        assert set(view.read().rows()) == {(10,)}

    def test_expirations_need_no_deltas(self, db):
        expr = db.table_expr("R").select(col(2) > 5)
        view = IncrementalView(db, "v", expr)
        db.table("R").insert((1, 10), expires_at=4)
        db.advance_to(4)
        assert set(view.read().rows()) == set()
        assert view.refreshes == 1


class TestDifferenceDeltas:
    def test_left_insert_visible_when_unmatched(self, db):
        expr = db.table_expr("R").difference(db.table_expr("S"))
        view = IncrementalView(db, "v", expr)
        db.table("R").insert((1, 1), expires_at=20)
        assert set(view.read().rows()) == {(1, 1)}

    def test_left_insert_hidden_then_patched(self, db):
        expr = db.table_expr("R").difference(db.table_expr("S"))
        view = IncrementalView(db, "v", expr)
        db.table("S").insert((1, 1), expires_at=5)
        db.table("R").insert((1, 1), expires_at=20)
        assert set(view.read().rows()) == set()
        db.advance_to(5)  # the S match expires: the tuple re-appears
        assert set(view.read().rows()) == {(1, 1)}
        db.advance_to(20)
        assert set(view.read().rows()) == set()

    def test_right_insert_knocks_out_tuple(self, db):
        expr = db.table_expr("R").difference(db.table_expr("S"))
        view = IncrementalView(db, "v", expr)
        db.table("R").insert((1, 1), expires_at=20)
        assert set(view.read().rows()) == {(1, 1)}
        db.table("S").insert((1, 1), expires_at=8)
        assert set(view.read().rows()) == set()
        db.advance_to(8)
        assert set(view.read().rows()) == {(1, 1)}

    def test_right_insert_outliving_left_removes_forever(self, db):
        expr = db.table_expr("R").difference(db.table_expr("S"))
        view = IncrementalView(db, "v", expr)
        db.table("R").insert((1, 1), expires_at=8)
        db.table("S").insert((1, 1), expires_at=20)
        for when in (0, 4, 8, 12, 20, 25):
            db.advance_to(when)
            assert set(view.read().rows()) == fresh(db, expr)

    def test_match_extension_requeues_patch(self, db):
        expr = db.table_expr("R").difference(db.table_expr("S"))
        view = IncrementalView(db, "v", expr)
        db.table("R").insert((1, 1), expires_at=30)
        db.table("S").insert((1, 1), expires_at=5)
        view.read()
        # Renew the match before the patch comes due.
        db.advance_to(3)
        db.table("S").insert((1, 1), expires_at=12)
        for when in (4, 5, 8, 12, 20, 30):
            db.advance_to(when)
            assert set(view.read().rows()) == fresh(db, expr), when


class TestAggregateDeltas:
    def test_count_updates_affected_partition_only(self, db):
        expr = db.table_expr("R").aggregate(group_by=[2], function="count",
                                            strategy=ExpirationStrategy.EXACT)
        view = IncrementalView(db, "v", expr)
        db.table("R").insert((1, 25), expires_at=10)
        db.table("R").insert((2, 25), expires_at=15)
        db.table("R").insert((3, 35), expires_at=10)
        assert set(view.read().rows()) == fresh(db, expr)
        db.table("R").insert((4, 25), expires_at=20)
        assert set(view.read().rows()) == fresh(db, expr)

    def test_expiry_reaggregates(self, db):
        expr = db.table_expr("R").aggregate(group_by=[2], function="count",
                                            strategy=ExpirationStrategy.EXACT)
        view = IncrementalView(db, "v", expr)
        db.table("R").insert((1, 25), expires_at=10)
        db.table("R").insert((2, 25), expires_at=15)
        db.advance_to(10)
        # Recomputation would give count 1 for the 25-partition.
        assert set(view.read().rows()) == fresh(db, expr) == {(2, 25, 1)}

    def test_min_aggregate_value_shrinks_on_insert(self, db):
        expr = db.table_expr("R").aggregate(group_by=[2], function="min",
                                            attribute=1)
        view = IncrementalView(db, "v", expr)
        db.table("R").insert((5, 1), expires_at=20)
        assert set(view.read().rows()) == {(5, 1, 5)}
        db.table("R").insert((2, 1), expires_at=20)
        assert set(view.read().rows()) == {(5, 1, 2), (2, 1, 2)}


class TestCompositeShapes:
    def test_difference_with_join_left_side(self, db):
        db.create_table("T", ["k", "w"])
        expr = (
            db.table_expr("R")
            .join(db.table_expr("T"), on=[(1, 1)])
            .project(1, 2)
            .difference(db.table_expr("S"))
        )
        view = IncrementalView(db, "v", expr)
        db.table("R").insert((1, 10), expires_at=40)
        db.table("T").insert((1, 99), expires_at=25)
        db.table("S").insert((1, 10), expires_at=8)
        for when in (0, 5, 8, 20, 25, 40):
            db.advance_to(when)
            assert set(view.read().rows()) == fresh(db, expr), when

    def test_aggregate_with_conservative_strategy(self, db):
        expr = db.table_expr("R").aggregate(
            group_by=[2], function="sum", attribute=1,
            strategy=ExpirationStrategy.CONSERVATIVE,
        )
        view = IncrementalView(db, "v", expr)
        db.table("R").insert((5, 1), expires_at=10)
        db.table("R").insert((7, 1), expires_at=30)
        db.table("R").insert((2, 2), expires_at=20)
        for when in (0, 5, 10, 15, 20, 30):
            db.advance_to(when)
            assert set(view.read().rows()) == fresh(db, expr), when

    def test_aggregate_with_neutral_strategy(self, db):
        expr = db.table_expr("R").aggregate(
            group_by=[2], function="min", attribute=1,
            strategy=ExpirationStrategy.NEUTRAL_SETS,
        )
        view = IncrementalView(db, "v", expr)
        db.table("R").insert((9, 1), expires_at=5)   # neutral for min
        db.table("R").insert((1, 1), expires_at=30)
        for when in (0, 4, 5, 10, 30):
            db.advance_to(when)
            assert set(view.read().rows()) == fresh(db, expr), when


class TestExplicitDeletes:
    def test_delete_falls_back_to_refresh(self, db):
        expr = db.table_expr("R").project(1)
        view = IncrementalView(db, "v", expr)
        db.table("R").insert((1, 1), expires_at=20)
        db.table("R").delete((1, 1))
        assert set(view.read().rows()) == set()
        assert view.refreshes == 2


class TestRandomisedEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from(["R", "S"]),
                st.integers(0, 3),
                st.integers(0, 2),
                st.integers(1, 25),
            ),
            min_size=1,
            max_size=15,
        ),
        read_times=st.lists(st.integers(0, 30), min_size=1, max_size=5),
    )
    def test_difference_view_matches_recompute(self, operations, read_times):
        db = Database()
        db.create_table("R", ["k", "v"])
        db.create_table("S", ["k", "v"])
        expr = db.table_expr("R").difference(db.table_expr("S"))
        view = IncrementalView(db, "v", expr)
        schedule = sorted(read_times)
        op_index = 0
        now = 0
        for table, k, v, life in operations:
            db.table(table).insert((k, v), expires_at=now + life)
        for when in schedule:
            if when > db.now.value:
                db.advance_to(when)
            assert set(view.read().rows()) == set(
                db.evaluate(expr).relation.rows()
            )

"""Stateful (model-based) testing of the engine.

A hypothesis rule-based state machine drives a table through random
inserts, renewals, explicit deletes, clock advances, and vacuums -- under
both removal policies -- while a naive dict model predicts the visible
contents.  Invariants checked after every step:

* the visible rows equal the model's unexpired rows;
* a monotonic materialised view over the table equals a recomputation;
* physical size never drops below live size;
* triggers fire exactly once per truly-expired tuple.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.timestamps import ts
from repro.engine.database import Database
from repro.engine.expiration_index import RemovalPolicy

KEYS = st.integers(min_value=0, max_value=5)
LIFETIMES = st.integers(min_value=1, max_value=15)
ADVANCES = st.integers(min_value=0, max_value=6)


class EngineMachine(RuleBasedStateMachine):
    @initialize(policy=st.sampled_from(list(RemovalPolicy)),
                batch=st.integers(min_value=1, max_value=8))
    def setup(self, policy, batch):
        self.db = Database(default_removal_policy=policy)
        self.table = self.db.create_table("T", ["k"], lazy_batch_size=batch)
        # A plain materialised view is a *snapshot* (the paper's no-updates
        # assumption): it cannot see inserts made after materialisation.
        # The incremental maintainer is the component contracted to track
        # arbitrary inserts/deletes, so it is the stateful test subject.
        from repro.engine.maintenance import IncrementalView

        self.view = IncrementalView(self.db, "v", self.db.table_expr("T"))
        self.model = {}  # row -> expiration tick (None = infinity)
        self.fired = []
        self.table.triggers.register(
            "log", lambda event: self.fired.append(event.tuple.row)
        )

    # -- operations ---------------------------------------------------------

    @rule(key=KEYS, lifetime=LIFETIMES)
    def insert(self, key, lifetime):
        now = self.db.now.value
        row = (key,)
        expires = now + lifetime
        self.table.insert(row, expires_at=expires)
        if row in self.model and self.model[row] is None:
            return  # an immortal copy wins the max-merge
        self.model[row] = max(self.model.get(row, 0), expires)

    @rule(key=KEYS)
    def insert_immortal(self, key):
        row = (key,)
        self.table.insert(row)
        self.model[row] = None  # infinity

    @rule(key=KEYS)
    def delete(self, key):
        row = (key,)
        removed = self.table.delete(row)
        if row in self.model and self._alive(row):
            assert removed  # live rows always delete
        # An expired row may or may not still be physically present under
        # lazy removal; either delete outcome is fine.
        self.model.pop(row, None)

    @rule(delta=ADVANCES)
    def advance(self, delta):
        self.db.tick(delta) if delta else None

    @rule()
    def vacuum(self):
        self.table.vacuum()

    # -- helpers --------------------------------------------------------------

    def _alive(self, row):
        expires = self.model.get(row, 0)
        return expires is None or expires > self.db.now.value

    def _model_visible(self):
        return {row for row in self.model if self._alive(row)}

    # -- invariants ----------------------------------------------------------------

    @invariant()
    def visible_matches_model(self):
        if not hasattr(self, "db"):
            return
        assert set(self.table.read().rows()) == self._model_visible()

    @invariant()
    def view_matches_recomputation(self):
        if not hasattr(self, "db"):
            return
        got = set(self.view.read().rows())
        truth = set(self.db.evaluate(self.db.table_expr("T")).relation.rows())
        assert got == truth

    @invariant()
    def physical_at_least_live(self):
        if not hasattr(self, "db"):
            return
        assert self.table.physical_size >= len(self.table)

    @invariant()
    def incremental_rebuilds_only_after_deletes(self):
        if not hasattr(self, "db"):
            return
        # Inserts and expirations are absorbed without rebuilding; only
        # explicit deletes may force a refresh (one per read at most).
        assert self.view.refreshes >= 1


EngineMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestEngineMachine = EngineMachine.TestCase

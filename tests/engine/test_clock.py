"""Tests for the logical clock."""

import pytest

from repro.core.timestamps import INFINITY, ts
from repro.engine.clock import LogicalClock
from repro.errors import ClockError


class TestAdvance:
    def test_starts_at_zero(self):
        assert LogicalClock().now == ts(0)

    def test_custom_start(self):
        assert LogicalClock(5).now == ts(5)

    def test_advance(self):
        clock = LogicalClock()
        assert clock.advance_to(7) == ts(7)
        assert clock.now == ts(7)

    def test_tick(self):
        clock = LogicalClock(3)
        clock.tick()
        clock.tick(4)
        assert clock.now == ts(8)

    def test_no_backwards(self):
        clock = LogicalClock(5)
        with pytest.raises(ClockError):
            clock.advance_to(4)

    def test_same_time_is_noop(self):
        clock = LogicalClock(5)
        clock.advance_to(5)
        assert clock.now == ts(5)

    def test_no_infinity(self):
        with pytest.raises(ClockError):
            LogicalClock().advance_to(INFINITY)
        with pytest.raises(ClockError):
            LogicalClock(INFINITY)

    def test_negative_tick(self):
        with pytest.raises(ClockError):
            LogicalClock().tick(-1)


class TestListeners:
    def test_called_with_old_and_new(self):
        clock = LogicalClock()
        seen = []
        clock.on_advance(lambda old, new: seen.append((int(old), int(new))))
        clock.advance_to(3)
        clock.advance_to(8)
        assert seen == [(0, 3), (3, 8)]

    def test_not_called_on_noop(self):
        clock = LogicalClock(2)
        seen = []
        clock.on_advance(lambda old, new: seen.append(new))
        clock.advance_to(2)
        assert seen == []

    def test_multiple_listeners_in_order(self):
        clock = LogicalClock()
        order = []
        clock.on_advance(lambda old, new: order.append("first"))
        clock.on_advance(lambda old, new: order.append("second"))
        clock.tick()
        assert order == ["first", "second"]

"""Renewal-on-touch: the ``since_last_modification`` expiry policy.

A touched row's idle timer restarts through the model's max-merge (a
touch is a re-insertion at ``now + timeout``, which under a monotone
clock and constant timeout is always the max); a dead row stays dead (a
touch is not an insert).  The interleavings pinned here are the ones the
expiration index makes dangerous: touch after the deadline but before
the sweep that enforces it, touch leaving a stale index entry behind for
a later (possibly parallel, partitioned) sweep, and touch against an
override-shortened lifetime.
"""

import pytest

from repro.core.timestamps import ts
from repro.engine.database import Database
from repro.engine.expiration_index import RemovalPolicy
from repro.engine.recovery import recover_database
from repro.errors import EngineError

LAYOUTS = [
    {},  # flat, row layout
    {"layout": "columnar"},
    {"partitions": 4, "partition_key": "k"},
    {"partitions": 4, "partition_key": "k", "layout": "columnar"},
]
POLICIES = [RemovalPolicy.EAGER, RemovalPolicy.LAZY]


def make_slm(db, timeout=10, **kwargs):
    return db.create_table(
        "T", ["k", "v"],
        expiry="since_last_modification", default_ttl=timeout, **kwargs,
    )


class TestPolicyConstruction:
    def test_slm_requires_default_ttl(self):
        with pytest.raises(EngineError, match="default_ttl"):
            Database().create_table(
                "T", ["k"], expiry="since_last_modification"
            )

    def test_unknown_policy_rejected(self):
        with pytest.raises(EngineError, match="expiry"):
            Database().create_table("T", ["k"], expiry="sliding")

    def test_non_positive_default_ttl_rejected(self):
        with pytest.raises(EngineError):
            Database().create_table("T", ["k"], default_ttl=0)

    def test_insert_without_lifetime_uses_default_ttl(self):
        db = Database()
        table = db.create_table("T", ["k"], default_ttl=6)
        table.insert((1,))
        assert table.relation.expiration_of((1,)) == ts(6)
        table.insert((2,), ttl=3)  # explicit lifetime still wins
        assert table.relation.expiration_of((2,)) == ts(3)


class TestTouchSemantics:
    def test_touch_restarts_the_idle_timer(self):
        db = Database()
        table = make_slm(db, timeout=10)
        table.insert((1, 1))
        db.tick(7)
        assert table.touch((1, 1)) is not None
        assert table.relation.expiration_of((1, 1)) == ts(17)
        assert table.statistics.touches == 1

    def test_touch_on_absolute_table_is_noop(self):
        db = Database()
        table = db.create_table("T", ["k"], default_ttl=10)
        table.insert((1,))
        assert table.touch((1,)) is None
        assert table.statistics.touches == 0

    def test_touch_absent_row_is_noop(self):
        db = Database()
        table = make_slm(db)
        assert table.touch((9, 9)) is None
        assert len(table) == 0  # no insert-through

    def test_touch_with_bad_ttl_rejected(self):
        db = Database()
        table = make_slm(db)
        table.insert((1, 1))
        with pytest.raises(EngineError):
            table.touch((1, 1), ttl=0)

    def test_touch_metric_exported(self):
        db = Database()
        table = make_slm(db)
        table.insert((1, 1))
        table.touch((1, 1))
        assert "repro_engine_touches_total 1" in db.metrics.to_prom_text()


class TestInterleavings:
    """Touch racing the deadline, the sweep, and the revocation path."""

    @pytest.mark.parametrize("kwargs", LAYOUTS)
    def test_touch_after_due_before_sweep_does_not_resurrect(self, kwargs):
        # Under LAZY the deadline passes first and the reclaim comes
        # later (vacuum); a touch in between sees a dead row and must
        # leave it dead -- the PR 9 resurrection shape, from the renewal
        # side.
        db = Database()
        table = make_slm(db, timeout=5, removal_policy=RemovalPolicy.LAZY, **kwargs)
        table.insert((1, 1))
        db.tick(5)  # due now, physically still resident
        assert table.physical_size == 1
        assert table.touch((1, 1)) is None
        table.vacuum()
        assert table.physical_size == 0
        assert table.statistics.touches == 0
        assert db.verify(strict=True, deep=True) == []

    @pytest.mark.parametrize("kwargs", LAYOUTS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_touched_row_survives_sweep_of_stale_deadline(self, kwargs, policy):
        # The touch moves texp but the index may still hold the *old*
        # deadline; the sweep that pops it must notice the row was
        # renewed rather than removing it (partitioned layouts run that
        # sweep in parallel shard jobs).
        db = Database()
        table = make_slm(db, timeout=5, removal_policy=policy, **kwargs)
        for i in range(8):
            table.insert((i, i))
        db.tick(3)
        for i in range(0, 8, 2):
            assert table.touch((i, i)) is not None  # now due at 8, not 5
        db.tick(2)  # crosses the stale deadline 5
        if policy is RemovalPolicy.LAZY:
            table.vacuum()
        assert sorted(r[0] for r in table.read().rows()) == [0, 2, 4, 6]
        assert table.physical_size == 4
        assert db.verify(strict=True, deep=True) == []

    @pytest.mark.parametrize("kwargs", LAYOUTS)
    def test_touch_after_override_shortening(self, kwargs):
        db = Database()
        table = make_slm(db, timeout=10, **kwargs)
        table.insert((1, 1))
        table.override((1, 1), expires_at=2)  # last-write shortening
        assert table.touch((1, 1)) is not None  # still alive: renews
        assert table.relation.expiration_of((1, 1)) == ts(10)
        db.tick(5)
        assert (1, 1) in table.read()

    @pytest.mark.parametrize("kwargs", LAYOUTS)
    def test_touch_after_revocation_stays_dead(self, kwargs):
        db = Database()
        table = make_slm(db, timeout=10, **kwargs)
        table.insert((1, 1))
        table.override((1, 1), expires_at=db.now)  # immediate revoke
        assert table.touch((1, 1)) is None
        assert (1, 1) not in table.read()
        db.tick(1)
        assert db.verify(strict=True, deep=True) == []


class TestDurability:
    def test_policy_and_touches_survive_recovery(self, tmp_path):
        db = Database(wal_dir=tmp_path)
        table = db.create_table(
            "T", ["k", "v"],
            expiry="since_last_modification", default_ttl=5,
        )
        table.insert((1, 1))
        db.tick(3)
        table.touch((1, 1))  # renewed to 8
        db.close()

        recovered = recover_database(tmp_path)
        table = recovered.table("T")
        assert table.expiry == "since_last_modification"
        assert table.default_ttl == 5
        assert table.relation.expiration_of((1, 1)) == ts(8)
        recovered.tick(4)  # past the pre-touch deadline
        assert (1, 1) in table.read()

"""Regression tests for transaction rollback going through the Table API.

The old ``Transaction._undo`` mutated ``table.relation`` directly, leaving
every derived structure out of sync: an aborted insert stayed scheduled in
the expiration index (later firing ON-EXPIRE for a row that no longer
exists -- or silently leaking index entries), a row restored by undoing a
delete was never re-scheduled (so it never physically expired and never
fired its trigger), the plan-cache data version was not bumped, and
view-maintenance listeners were not re-notified.  Each class below pins
one user-visible symptom; every test also runs with the full invariant
catalogue armed (``check_invariants=True``), so any cross-structure
desync fails loudly even where the symptom is subtle.
"""

import pytest

from repro.core.timestamps import ts
from repro.engine.database import Database
from repro.engine.views import MaintenancePolicy
from repro.errors import RelationError


def poison(txn, table):
    """Append an insert that is already expired, forcing commit to abort."""
    txn.insert(table, (999,) * txn.database.table(table).schema.arity,
               expires_at=txn.database.now)


class TestAbortThenExpire:
    def test_aborted_insert_never_fires(self):
        db = Database(check_invariants=True)
        table = db.create_table("T", ["k"])
        fired = []
        table.triggers.register(
            "log", lambda e: fired.append((e.tuple.row, e.tuple.expires_at))
        )
        with pytest.raises(RelationError):
            with db.transaction() as txn:
                txn.insert("T", (1,), expires_at=10)
                poison(txn, "T")
        assert len(table) == 0
        assert table.next_expiration() is None  # no phantom index entry
        db.advance_to(10)
        assert fired == []

    def test_abort_restores_the_earlier_expiration(self):
        db = Database(check_invariants=True)
        table = db.create_table("T", ["k"])
        table.insert((1,), expires_at=5)
        fired = []
        table.triggers.register(
            "log", lambda e: fired.append((e.tuple.row, e.tuple.expires_at))
        )
        with pytest.raises(RelationError):
            with db.transaction() as txn:
                txn.insert("T", (1,), expires_at=50)  # max-merge extension
                poison(txn, "T")
        assert table.relation.expiration_of((1,)) == ts(5)
        assert table.next_expiration() == ts(5)  # index rolled back too
        db.advance_to(5)
        assert fired == [((1,), ts(5))]  # original time, original texp
        db.advance_to(50)
        assert fired == [((1,), ts(5))]  # nothing left to fire

    def test_undone_delete_expires_physically(self):
        db = Database(check_invariants=True)
        table = db.create_table("T", ["k"])
        table.insert((1,), expires_at=10)
        fired = []
        table.triggers.register("log", lambda e: fired.append(e.tuple.row))
        with pytest.raises(RelationError):
            with db.transaction() as txn:
                txn.delete("T", (1,))
                poison(txn, "T")
        assert sorted(table.read().rows()) == [(1,)]
        db.advance_to(10)
        assert fired == [(1,)]
        assert table.physical_size == 0  # re-scheduled, so actually purged


class TestAbortThenCachedRead:
    def test_cache_serves_pre_txn_content_after_abort(self):
        db = Database(check_invariants=True)
        table = db.create_table("T", ["k", "v"])
        table.insert((1, 10), expires_at=100)
        expr = db.table_expr("T")
        before = sorted(db.evaluate(expr).relation.rows())
        with pytest.raises(RelationError):
            with db.transaction() as txn:
                txn.insert("T", (2, 20), expires_at=100)
                poison(txn, "T")
        after = sorted(db.evaluate(expr).relation.rows())
        assert after == before == [(1, 10)]
        # Repeat lookups (cache hits included) stay on the aborted-free
        # content as time passes.
        db.advance_to(50)
        assert sorted(db.evaluate(expr).relation.rows()) == [(1, 10)]
        db.advance_to(100)
        assert sorted(db.evaluate(expr).relation.rows()) == []


class TestAbortThenViewRead:
    def test_monotonic_view_after_abort(self):
        db = Database(check_invariants=True)
        table = db.create_table("T", ["k", "v"])
        table.insert((1, 10), expires_at=50)
        view = db.materialise("V", db.table_expr("T").project(1))
        assert sorted(view.read().rows()) == [(1,)]
        with pytest.raises(RelationError):
            with db.transaction() as txn:
                txn.insert("T", (2, 20), expires_at=50)
                txn.delete("T", (1, 10))
                poison(txn, "T")
        assert sorted(view.read().rows()) == [(1,)]

    def test_difference_view_after_abort(self):
        db = Database(check_invariants=True)
        left = db.create_table("L", ["k"])
        right = db.create_table("R", ["k"])
        left.insert((1,), expires_at=30)
        right.insert((2,), expires_at=30)
        view = db.materialise(
            "V",
            db.table_expr("L").difference(db.table_expr("R")),
            policy=MaintenancePolicy.SCHRODINGER,
        )
        assert sorted(view.read().rows()) == [(1,)]
        with pytest.raises(RelationError):
            with db.transaction() as txn:
                txn.insert("L", (2,), expires_at=40)  # would be shadowed
                txn.delete("L", (1,))
                poison(txn, "L")
        assert sorted(view.read().rows()) == [(1,)]
        db.advance_to(30)
        assert sorted(view.read().rows()) == []


class TestAbortOnPartitionedTables:
    def test_partitioned_abort_rolls_back_every_shard(self):
        db = Database(check_invariants=True)
        table = db.create_table("P", ["k", "v"], partitions=3)
        for key in range(6):
            table.insert((key, 0), expires_at=10)
        fired = []
        table.triggers.register("log", lambda e: fired.append(e.tuple.row))
        with pytest.raises(RelationError):
            with db.transaction() as txn:
                txn.insert("P", (6, 1), expires_at=20)
                txn.insert("P", (7, 1), expires_at=20)
                txn.delete("P", (0, 0))
                poison(txn, "P")
        assert len(table) == 6
        assert sorted(table.read().rows()) == [(k, 0) for k in range(6)]
        db.advance_to(10)
        assert sorted(fired) == [(k, 0) for k in range(6)]
        assert len(table) == 0 and table.physical_size == 0
        db.advance_to(20)
        assert len(fired) == 6  # the aborted inserts never fire
        db.close()

    def test_partitioned_abort_under_lazy_removal(self):
        from repro.engine.expiration_index import RemovalPolicy

        db = Database(
            default_removal_policy=RemovalPolicy.LAZY, check_invariants=True
        )
        table = db.create_table("P", ["k", "v"], partitions=2)
        table.insert((1, 0), expires_at=5)
        with pytest.raises(RelationError):
            with db.transaction() as txn:
                txn.delete("P", (1, 0))
                poison(txn, "P")
        db.advance_to(5)
        assert sorted(table.read().rows()) == []
        assert table.vacuum() == 1  # the restored row was swept, not leaked
        assert table.physical_size == 0
        db.close()

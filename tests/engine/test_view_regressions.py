"""Regression tests for the view-maintenance correctness fixes.

Each test pins one historical bug:

1. materialised views silently served stale rows after base-table inserts
   or explicit deletes (expiration is *not* the only way bases change);
2. the recomputation counter was decremented after the initial
   materialisation, violating counter monotonicity;
3. a PATCH refresh evaluated the difference twice (once for the full
   expression, once inside the patch construction);
4. patched reads past the truncated queue's ``guaranteed_until`` horizon
   returned wrong rows instead of raising :class:`StaleViewError`.
"""

import pytest

from repro.core.timestamps import INFINITY, ts
from repro.engine.database import Database
from repro.engine.views import MaintenancePolicy
from repro.errors import StaleViewError


def diff_expr(db):
    return db.table_expr("Pol").project(1).difference(db.table_expr("El").project(1))


def fresh(db, expression, at=None):
    return set(db.evaluate(expression, at=at).relation.rows())


class TestCounterMonotonicity:
    def test_materialise_never_rewinds_recomputations(self, figure1_db):
        registry = figure1_db.metrics
        before = registry.snapshot().get("repro_views_recomputations_total", 0)
        view = figure1_db.materialise(
            "v", figure1_db.table_expr("Pol").project(2)
        )
        after = registry.snapshot().get("repro_views_recomputations_total", 0)
        # The initial materialisation is not a *re*-computation: counted as
        # zero, never counted-then-decremented.
        assert after == before
        assert view.recomputations == 0
        assert figure1_db.statistics.view_recomputations == before

    def test_explicit_refresh_counts_exactly_one(self, figure1_db):
        view = figure1_db.materialise("v", diff_expr(figure1_db))
        before = figure1_db.statistics.view_recomputations
        view.refresh()
        assert figure1_db.statistics.view_recomputations == before + 1
        assert view.recomputations == 1


class TestStalenessAfterMutation:
    def test_monotonic_view_sees_base_insert(self, figure1_db):
        expr = figure1_db.table_expr("Pol").project(2)
        view = figure1_db.materialise("v", expr)
        assert view.is_monotonic
        figure1_db.table("Pol").insert((9, 99), expires_at=50)
        assert (99,) in set(view.read().rows())
        assert set(view.read().rows()) == fresh(figure1_db, expr)

    def test_monotonic_view_sees_explicit_delete(self, figure1_db):
        expr = figure1_db.table_expr("Pol").project(1)
        view = figure1_db.materialise("v", expr)
        figure1_db.table("Pol").delete((3, 35))
        assert (3,) not in set(view.read().rows())
        assert set(view.read().rows()) == fresh(figure1_db, expr)

    def test_nonmonotonic_view_sees_base_insert(self, figure1_db):
        view = figure1_db.materialise("v", diff_expr(figure1_db))
        figure1_db.table("Pol").insert((8, 88), expires_at=50)
        assert (8,) in set(view.read().rows())
        assert set(view.read().rows()) == fresh(figure1_db, diff_expr(figure1_db))

    def test_patch_view_refreshes_after_insert(self, figure1_db):
        view = figure1_db.materialise(
            "v", diff_expr(figure1_db), policy=MaintenancePolicy.PATCH
        )
        figure1_db.table("Pol").insert((8, 88), expires_at=50)
        figure1_db.advance_to(1)
        assert set(view.read().rows()) == fresh(figure1_db, diff_expr(figure1_db))
        # ... and the refreshed patch queue keeps working afterwards.
        figure1_db.advance_to(5)
        assert set(view.read().rows()) == fresh(figure1_db, diff_expr(figure1_db))

    def test_no_mutation_means_no_refresh(self, figure1_db):
        view = figure1_db.materialise(
            "v", figure1_db.table_expr("Pol").project(2)
        )
        for when in (0, 5, 10, 15):
            figure1_db.advance_to(when)
            view.read()
        assert view.recomputations == 0  # Theorem 1 path untouched

    def test_expirations_do_not_mark_stale(self, figure1_db):
        view = figure1_db.materialise(
            "v", figure1_db.table_expr("Pol").project(1)
        )
        figure1_db.advance_to(10)  # eager removal physically deletes tuples
        assert not view._stale
        assert set(view.read().rows()) == {(2,)}

    def test_drop_view_unsubscribes_listeners(self, figure1_db):
        table = figure1_db.table("Pol")
        view = figure1_db.materialise(
            "v", figure1_db.table_expr("Pol").project(2)
        )
        assert view._on_base_mutation in table.insert_listeners
        assert view._on_base_mutation in table.delete_listeners
        figure1_db.drop_view("v")
        assert view._on_base_mutation not in table.insert_listeners
        assert view._on_base_mutation not in table.delete_listeners


class TestSinglePassPatchRefresh:
    def _eval_queries(self, db):
        snap = db.metrics.snapshot()
        return sum(
            value
            for key, value in snap.items()
            if key.startswith("repro_eval_queries_total{")
        )

    def test_materialise_evaluates_each_side_once(self, figure1_db):
        before = self._eval_queries(figure1_db)
        figure1_db.materialise(
            "v", diff_expr(figure1_db), policy=MaintenancePolicy.PATCH
        )
        # One evaluation per side of the difference -- not a third one for
        # the whole expression (the anti-semijoin output *is* the result).
        assert self._eval_queries(figure1_db) - before == 2

    def test_refresh_evaluates_each_side_once(self, figure1_db):
        view = figure1_db.materialise(
            "v", diff_expr(figure1_db), policy=MaintenancePolicy.PATCH
        )
        before = self._eval_queries(figure1_db)
        view.refresh()
        assert self._eval_queries(figure1_db) - before == 2

    def test_single_pass_result_matches_recompute(self, figure1_db):
        view = figure1_db.materialise(
            "v", diff_expr(figure1_db), policy=MaintenancePolicy.PATCH
        )
        for when in (0, 3, 5, 9, 10, 14):
            figure1_db.advance_to(when)
            assert set(view.read().rows()) == fresh(
                figure1_db, diff_expr(figure1_db)
            )
        assert view.recomputations == 0

    def test_patch_view_expiration_is_infinite_unbounded(self, figure1_db):
        view = figure1_db.materialise(
            "v", diff_expr(figure1_db), policy=MaintenancePolicy.PATCH
        )
        assert view.expiration == INFINITY


class TestTruncatedQueueStaleness:
    def _bounded_view(self, limit):
        db = Database()
        left = db.create_table("L", ["a"])
        right = db.create_table("R", ["a"])
        left.insert((1,), expires_at=20)
        left.insert((2,), expires_at=20)
        right.insert((1,), expires_at=5)
        right.insert((2,), expires_at=8)
        view = db.materialise(
            "v",
            db.table_expr("L").difference(db.table_expr("R")),
            policy=MaintenancePolicy.PATCH,
            patch_limit=limit,
        )
        return db, view

    def test_read_raises_past_guaranteed_horizon(self):
        db, view = self._bounded_view(limit=1)
        # One patch shed: only guaranteed before the shed patch's due time.
        assert view.expiration == ts(8)
        db.advance_to(7)
        assert set(view.read().rows()) == {(1,)}  # the kept patch applied
        db.advance_to(8)
        with pytest.raises(StaleViewError):
            view.read()

    def test_unbounded_queue_never_raises(self):
        db, view = self._bounded_view(limit=None)
        assert view.expiration == INFINITY
        for when in (5, 8, 15, 19, 25):
            db.advance_to(when)
            truth = fresh(db, db.table_expr("L").difference(db.table_expr("R")))
            assert set(view.read().rows()) == truth

    def test_refresh_recovers_from_staleness(self):
        db, view = self._bounded_view(limit=1)
        db.advance_to(8)
        with pytest.raises(StaleViewError):
            view.read()
        view.refresh()
        truth = fresh(db, db.table_expr("L").difference(db.table_expr("R")))
        assert set(view.read().rows()) == truth

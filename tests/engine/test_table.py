"""Tests for expiration-enabled tables: TTL, renewal, eager/lazy removal."""

import pytest

from repro.core.schema import Schema
from repro.core.timestamps import INFINITY, ts
from repro.engine.clock import LogicalClock
from repro.engine.database import Database
from repro.engine.expiration_index import RemovalPolicy
from repro.engine.statistics import EngineStatistics
from repro.engine.table import Table
from repro.errors import EngineError, RelationError


def make_table(policy=RemovalPolicy.EAGER, batch=64):
    clock = LogicalClock()
    table = Table(
        "T", Schema(["k", "v"]), clock, removal_policy=policy, lazy_batch_size=batch
    )
    clock.on_advance(table.on_clock_advance)
    return table, clock


class TestInsertion:
    def test_expires_at(self):
        table, _ = make_table()
        stored = table.insert((1, 2), expires_at=10)
        assert stored.expires_at == ts(10)

    def test_ttl(self):
        table, clock = make_table()
        clock.advance_to(5)
        stored = table.insert((1, 2), ttl=10)
        assert stored.expires_at == ts(15)

    def test_no_expiration(self):
        table, _ = make_table()
        assert table.insert((1, 2)).expires_at == INFINITY

    def test_both_rejected(self):
        table, _ = make_table()
        with pytest.raises(EngineError):
            table.insert((1, 2), expires_at=5, ttl=3)

    def test_nonpositive_ttl_rejected(self):
        table, _ = make_table()
        with pytest.raises(EngineError):
            table.insert((1, 2), ttl=0)

    def test_already_expired_rejected(self):
        table, clock = make_table()
        clock.advance_to(10)
        with pytest.raises(RelationError):
            table.insert((1, 2), expires_at=10)

    def test_renewal_extends(self):
        table, clock = make_table()
        table.insert((1, 2), expires_at=5)
        table.renew((1, 2), ttl=20)
        clock.advance_to(5)
        assert len(table) == 1

    def test_counts_inserts(self):
        table, _ = make_table()
        table.insert((1, 2))
        table.insert((3, 4))
        assert table.statistics.inserts == 2


class TestEagerRemoval:
    def test_physical_removal_on_advance(self):
        table, clock = make_table(RemovalPolicy.EAGER)
        table.insert((1, 2), expires_at=5)
        table.insert((3, 4), expires_at=10)
        clock.advance_to(5)
        assert table.physical_size == 1
        assert len(table) == 1
        assert table.statistics.expirations_processed == 1

    def test_triggers_fire_at_expiry(self):
        table, clock = make_table(RemovalPolicy.EAGER)
        fired = []
        table.triggers.register("t", lambda event: fired.append(event))
        table.insert((1, 2), expires_at=5)
        clock.advance_to(5)
        assert len(fired) == 1
        assert fired[0].tuple.row == (1, 2)
        assert fired[0].fired_at == ts(5)  # zero latency under eager


class TestLazyRemoval:
    def test_expired_invisible_but_physical(self):
        table, clock = make_table(RemovalPolicy.LAZY)
        table.insert((1, 2), expires_at=5)
        clock.advance_to(6)
        assert len(table) == 0  # invisible to reads
        assert table.physical_size == 1  # not reclaimed yet

    def test_vacuum_reclaims_and_fires(self):
        table, clock = make_table(RemovalPolicy.LAZY)
        fired = []
        table.triggers.register("t", lambda event: fired.append(event.fired_at))
        table.insert((1, 2), expires_at=5)
        clock.advance_to(8)
        assert fired == []
        table.vacuum()
        assert table.physical_size == 0
        assert fired == [ts(8)]  # latency: fired 3 ticks late

    def test_batch_threshold_triggers_vacuum(self):
        table, clock = make_table(RemovalPolicy.LAZY, batch=3)
        for i in range(3):
            table.insert((i, i), expires_at=2)
        clock.advance_to(2)
        # Three pending expirations reach the batch size -> auto-vacuum.
        assert table.physical_size == 0


class TestReadSemantics:
    def test_read_hides_expired(self):
        table, clock = make_table(RemovalPolicy.LAZY)
        table.insert((1, 2), expires_at=5)
        table.insert((3, 4), expires_at=10)
        clock.advance_to(5)
        assert set(table.read().rows()) == {(3, 4)}

    def test_read_at_explicit_time(self):
        table, _ = make_table()
        table.insert((1, 2), expires_at=5)
        assert set(table.read(at=4).rows()) == {(1, 2)}
        assert set(table.read(at=5).rows()) == set()

    def test_next_expiration(self):
        table, _ = make_table()
        table.insert((1, 2), expires_at=5)
        table.insert((3, 4), expires_at=3)
        assert table.next_expiration() == ts(3)


class TestDeletes:
    def test_explicit_delete(self):
        table, _ = make_table()
        table.insert((1, 2), expires_at=5)
        assert table.delete((1, 2))
        assert not table.delete((1, 2))
        assert table.statistics.explicit_deletes == 1

    def test_deleted_row_fires_no_trigger(self):
        table, clock = make_table()
        fired = []
        table.triggers.register("t", lambda event: fired.append(event))
        table.insert((1, 2), expires_at=5)
        table.delete((1, 2))
        clock.advance_to(10)
        assert fired == []

    def test_renewed_row_fires_once_at_new_time(self):
        table, clock = make_table()
        fired = []
        table.triggers.register("t", lambda event: fired.append(int(event.tuple.expires_at)))
        table.insert((1, 2), expires_at=5)
        table.renew((1, 2), ttl=9)
        clock.advance_to(20)
        assert fired == [9]

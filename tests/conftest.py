"""Shared fixtures: the paper's Figure 1 example database and friends."""

from __future__ import annotations

import pytest

from repro.core.relation import Relation
from repro.engine.database import Database
from repro.workloads.news import figure1_database, figure1_el, figure1_pol


@pytest.fixture
def pol() -> Relation:
    """Figure 1(a): the politics table at time 0."""
    return figure1_pol()


@pytest.fixture
def el() -> Relation:
    """Figure 1(b): the elections table at time 0."""
    return figure1_el()


@pytest.fixture
def figure1_db() -> Database:
    """A database containing the Figure 1 tables, clock at 0."""
    return figure1_database()


@pytest.fixture
def catalog(pol, el):
    """An evaluator catalog with the paper's example relations."""
    return {"Pol": pol, "El": el}

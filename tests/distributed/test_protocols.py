"""Tests for protocol messages and their size accounting."""

import pytest

from repro.core.patching import Patch
from repro.core.timestamps import ts
from repro.distributed.metrics import SyncReport
from repro.distributed.protocols import (
    DeleteNotice,
    PatchShipment,
    RecomputeRequest,
    RecomputeResponse,
    Snapshot,
    TupleInsert,
)


class TestSizes:
    def test_insert_with_expiration_costs_one_extra_cell(self):
        bare = TupleInsert(row=(1, 2))
        timed = TupleInsert(row=(1, 2), expires_at=ts(9))
        assert bare.size_cells() == 2
        assert timed.size_cells() == 3

    def test_delete_notice(self):
        assert DeleteNotice(row=(1, 2, 3)).size_cells() == 3

    def test_snapshot_mixed_rows(self):
        snapshot = Snapshot(rows=(((1, 2), ts(5)), ((3, 4), None)))
        assert snapshot.size_cells() == 3 + 2

    def test_patch_shipment(self):
        shipment = PatchShipment(
            patches=(Patch((1, 2), ts(3), ts(9)), Patch((5,), ts(4), ts(8)))
        )
        # Each patch: row cells + due + expires_at.
        assert shipment.size_cells() == (2 + 2) + (1 + 2)

    def test_recompute_roundtrip_sizes(self):
        request = RecomputeRequest(view_name="diff")
        response = RecomputeResponse(
            view_name="diff", snapshot=Snapshot(rows=(((1,), ts(2)),))
        )
        assert request.size_cells() == 1
        assert response.size_cells() == 1 + 2


class TestSyncReport:
    def test_consistency_with_no_queries(self):
        assert SyncReport(strategy="x").consistency == 1.0

    def test_summary_row_fields(self):
        report = SyncReport(strategy="x", queries=4, correct_answers=3,
                            incorrect_answers=1, messages=7, cells=70)
        row = report.summary_row()
        assert row["strategy"] == "x"
        assert row["consistency"] == 0.75
        assert row["messages"] == 7

"""Tests for the loosely-coupled maintenance simulations (experiment D1 & TH3)."""

import pytest

from repro.core.timestamps import ts
from repro.distributed.link import Link
from repro.distributed.simulator import (
    DifferenceViewSimulation,
    ReplicationSimulation,
    ReplicationStrategy,
    ViewMaintenanceStrategy,
)
from repro.workloads.generators import UniformLifetime, overlapping_relations, random_stream


def small_workload():
    # Deterministic little workload: rows arrive early, expire over time.
    return [
        (0, (1, "a"), 10),
        (0, (2, "b"), 20),
        (1, (3, "c"), 15),
        (2, (4, "d"), 30),
    ]


class TestReplication:
    def test_expiration_strategy_sends_no_deletes(self):
        sim = ReplicationSimulation(
            ["k", "v"], small_workload(), range(5, 35, 5),
            ReplicationStrategy.EXPIRATION, link=Link(latency=1),
        )
        report = sim.run()
        # One message per insert, nothing else.
        assert report.messages == 4
        assert sim.client.deletes_received == 0
        assert report.consistency == 1.0

    def test_explicit_delete_doubles_traffic(self):
        sim = ReplicationSimulation(
            ["k", "v"], small_workload(), range(5, 35, 5),
            ReplicationStrategy.EXPLICIT_DELETE, link=Link(latency=1),
        )
        report = sim.run()
        assert report.messages == 8  # 4 inserts + 4 deletes

    def test_explicit_delete_serves_stale_under_latency(self):
        # Between a lifetime elapsing and the delete arriving, the client
        # answers with dead tuples -- "extra" inconsistencies.
        sim = ReplicationSimulation(
            ["k", "v"], small_workload(), [10, 15, 20, 30],
            ReplicationStrategy.EXPLICIT_DELETE, link=Link(latency=3),
        )
        report = sim.run()
        assert report.extra_tuples > 0

    def test_expiration_never_serves_stale(self):
        sim = ReplicationSimulation(
            ["k", "v"], small_workload(), [10, 15, 20, 30],
            ReplicationStrategy.EXPIRATION, link=Link(latency=3),
        )
        report = sim.run()
        assert report.extra_tuples == 0

    def test_partition_breaks_baseline_not_expiration(self):
        # The link goes down before the deletes are due and heals late.
        queries = [12, 18, 25]
        down = [(9, 26)]
        baseline = ReplicationSimulation(
            ["k", "v"], small_workload(), queries,
            ReplicationStrategy.EXPLICIT_DELETE,
            link=Link(latency=1, partitions=down),
        ).run()
        expiration = ReplicationSimulation(
            ["k", "v"], small_workload(), queries,
            ReplicationStrategy.EXPIRATION,
            link=Link(latency=1, partitions=down),
        ).run()
        assert baseline.extra_tuples > 0
        assert expiration.extra_tuples == 0
        assert expiration.consistency == 1.0

    def test_periodic_snapshot_traffic_grows_with_period_count(self):
        sim = ReplicationSimulation(
            ["k", "v"], small_workload(), [7, 22],
            ReplicationStrategy.PERIODIC_SNAPSHOT,
            link=Link(latency=1), snapshot_period=5,
        )
        report = sim.run()
        assert report.messages >= 6  # one snapshot per period

    def test_clock_skew_makes_client_conservative(self):
        # A fast client clock (+5) expires replicated tuples early: never
        # stale, but may miss live ones.
        sim = ReplicationSimulation(
            ["k", "v"], small_workload(), [8, 12, 18],
            ReplicationStrategy.EXPIRATION,
            link=Link(latency=0), client_skew=5,
        )
        report = sim.run()
        assert report.extra_tuples == 0
        assert report.missing_tuples > 0

    def test_deterministic(self):
        workload = random_stream(["k", "v"], 30, UniformLifetime(5, 25), seed=11)
        reports = [
            ReplicationSimulation(
                ["k", "v"], workload, range(0, 60, 7),
                ReplicationStrategy.EXPLICIT_DELETE, link=Link(latency=2, seed=5),
            ).run().summary_row()
            for _ in range(2)
        ]
        assert reports[0] == reports[1]


class TestFanOut:
    def make(self, strategy, clients=3):
        from repro.distributed.simulator import FanOutSimulation

        workload = random_stream(["k", "v"], 30, UniformLifetime(10, 40),
                                 arrival_span=25, seed=4)
        links = [Link(latency=l + 1, seed=l) for l in range(clients)]
        return FanOutSimulation(
            ["k", "v"], workload, range(30, 70, 4), strategy, links=links
        )

    def test_expiration_scales_without_delete_traffic(self):
        expiration = self.make(ReplicationStrategy.EXPIRATION).run()
        baseline = self.make(ReplicationStrategy.EXPLICIT_DELETE).run()
        # One insert message per (client, insert) for both; the baseline
        # adds one delete per (client, expiration).
        assert baseline.messages == 2 * expiration.messages
        assert expiration.consistency == 1.0
        assert expiration.detail["worst_client_consistency"] == 1.0
        assert baseline.detail["worst_client_consistency"] < 1.0

    def test_skewed_clients_stay_conservative(self):
        from repro.distributed.simulator import FanOutSimulation

        workload = random_stream(["k", "v"], 20, UniformLifetime(10, 40),
                                 arrival_span=20, seed=9)
        sim = FanOutSimulation(
            ["k", "v"], workload, range(25, 60, 5),
            ReplicationStrategy.EXPIRATION,
            links=[Link(latency=1), Link(latency=1)],
            client_skews=[0, 8],
        )
        report = sim.run()
        assert report.extra_tuples == 0  # skew never serves dead data

    def test_validation(self):
        from repro.distributed.simulator import FanOutSimulation

        with pytest.raises(Exception):
            FanOutSimulation(["k"], [], [], ReplicationStrategy.EXPIRATION, links=[])
        with pytest.raises(Exception):
            FanOutSimulation(
                ["k"], [], [], ReplicationStrategy.EXPIRATION,
                links=[Link()], client_skews=[0, 1],
            )


class TestDifferenceViewSync:
    def make(self, strategy, latency=1, seed=3):
        left, right = overlapping_relations(
            ["k", "v"], 30, 0.5, UniformLifetime(5, 50), seed=seed
        )
        return DifferenceViewSimulation(
            left, right, list(range(0, 70, 3)), strategy, link=Link(latency=latency)
        )

    def test_patch_never_contacts_server_again(self):
        sim = self.make(ViewMaintenanceStrategy.PATCH)
        report = sim.run()
        assert report.recompute_requests == 0
        assert report.consistency == 1.0
        # Exactly two messages: the snapshot and the patch shipment.
        assert report.messages == 2

    def test_schrodinger_is_always_correct(self):
        sim = self.make(ViewMaintenanceStrategy.SCHRODINGER)
        report = sim.run()
        assert report.consistency == 1.0

    def test_schrodinger_recomputes_less_than_every_query(self):
        sim = self.make(ViewMaintenanceStrategy.SCHRODINGER)
        report = sim.run()
        assert 0 < report.recompute_requests < report.queries

    def test_recompute_on_invalid_suffers_in_flight(self):
        report_fast = self.make(
            ViewMaintenanceStrategy.RECOMPUTE_ON_INVALID, latency=0
        ).run()
        report_slow = self.make(
            ViewMaintenanceStrategy.RECOMPUTE_ON_INVALID, latency=6
        ).run()
        assert report_slow.consistency <= report_fast.consistency

    def test_patch_ships_at_most_intersection(self):
        left, right = overlapping_relations(
            ["k", "v"], 30, 0.5, UniformLifetime(5, 50), seed=3
        )
        shared = sum(1 for row in left.rows() if row in right)
        sim = DifferenceViewSimulation(
            left, right, [0, 10], ViewMaintenanceStrategy.PATCH, link=Link(latency=1)
        )
        report = sim.run()
        assert report.patches_shipped <= shared

"""Tests for anti-entropy digests and bucket repair."""

import pytest

from repro.core.relation import Relation
from repro.core.schema import Schema
from repro.core.timestamps import INFINITY, ts
from repro.distributed.anti_entropy import (
    AntiEntropyConfig,
    apply_repair,
    bucket_hashes,
    bucket_of,
    build_digest,
    build_repair,
    diff_digests,
)
from repro.distributed.protocols import RepairResponse
from repro.errors import ProtocolError, SimulationError

SCHEMA = Schema(["k", "v"])


def relation(rows):
    rel = Relation(SCHEMA)
    for row, texp in rows:
        rel.insert(row, expires_at=texp)
    return rel


class TestConfig:
    def test_validation(self):
        with pytest.raises(SimulationError):
            AntiEntropyConfig(period=0)
        with pytest.raises(SimulationError):
            AntiEntropyConfig(num_buckets=0)


class TestDigests:
    def test_bucket_assignment_is_stable_and_in_range(self):
        rows = [(i, "x") for i in range(50)]
        buckets = [bucket_of(row, 8) for row in rows]
        assert buckets == [bucket_of(row, 8) for row in rows]
        assert all(0 <= b < 8 for b in buckets)
        assert len(set(buckets)) > 1  # rows actually spread out

    def test_hashes_are_order_independent(self):
        rows = [(1, "a"), (2, "b"), (3, "c"), (4, "d")]
        assert bucket_hashes(rows, 4) == bucket_hashes(list(reversed(rows)), 4)

    def test_equal_row_sets_produce_equal_digests(self):
        rows = [((i, "x"), ts(50)) for i in range(10)]
        a = build_digest(relation(rows), 5, num_buckets=4)
        b = build_digest(relation(rows), 5, num_buckets=4)
        assert a.buckets == b.buckets
        assert diff_digests(dict(a.buckets), dict(b.buckets)) == ()

    def test_digest_sees_only_unexpired_rows(self):
        rows = [((1, "a"), ts(10)), ((2, "b"), ts(100))]
        early = build_digest(relation(rows), 5, num_buckets=4)
        late = build_digest(relation(rows), 50, num_buckets=4)
        assert early.buckets != late.buckets

    def test_diff_finds_mismatches_in_both_directions(self):
        assert diff_digests({0: 1, 1: 2}, {0: 1, 1: 3}) == (1,)
        assert diff_digests({0: 1}, {0: 1, 2: 5}) == (2,)  # bucket only there
        assert diff_digests({0: 1, 3: 9}, {0: 1}) == (3,)  # bucket only here

    def test_expiration_hides_rows_without_expirations_in_hash(self):
        # Hashes cover rows only, so a replica that never learned the
        # lifetimes (the explicit-delete baseline) still agrees.
        server = relation([((1, "a"), ts(100)), ((2, "b"), ts(100))])
        baseline_client = relation([((1, "a"), INFINITY), ((2, "b"), INFINITY)])
        mine = bucket_hashes(baseline_client.exp_at(5).rows(), 4)
        theirs = bucket_hashes(server.exp_at(5).rows(), 4)
        assert diff_digests(mine, theirs) == ()


class TestRepair:
    def test_round_trip_repairs_a_missing_row(self):
        server = relation([((1, "a"), ts(100)), ((2, "b"), ts(100))])
        client = relation([((1, "a"), ts(100))])  # lost the second insert
        digest = build_digest(server, 5, num_buckets=4)
        mine = bucket_hashes(client.exp_at(5).rows(), 4)
        missing = diff_digests(mine, dict(digest.buckets))
        assert missing
        response = build_repair(server, 5, missing, 4, with_expirations=True)
        changed = apply_repair(client, response, 4)
        assert changed >= 1
        assert set(client.exp_at(5).rows()) == set(server.exp_at(5).rows())
        # Lifetimes travelled too: the repaired row expires on its own.
        assert client.expiration_or_none((2, "b")) == ts(100)

    def test_repair_heals_a_lost_delete(self):
        # Baseline replica serving a dead row forever: repair kills it.
        server = relation([])
        client = relation([((9, "zombie"), INFINITY)])
        digest = build_digest(server, 5, num_buckets=4)
        mine = bucket_hashes(client.exp_at(5).rows(), 4)
        stale = diff_digests(mine, dict(digest.buckets))
        response = build_repair(server, 5, stale, 4, with_expirations=False)
        apply_repair(client, response, 4)
        assert set(client.exp_at(5).rows()) == set()

    def test_repair_is_idempotent(self):
        server = relation([((1, "a"), ts(100))])
        client = relation([])
        response = build_repair(server, 5, range(4), 4, with_expirations=True)
        assert apply_repair(client, response, 4) >= 1
        assert apply_repair(client, response, 4) == 0  # nothing left to fix

    def test_repair_without_expirations_hides_lifetimes(self):
        server = relation([((1, "a"), ts(100))])
        response = build_repair(server, 5, range(4), 4, with_expirations=False)
        assert response.rows[0][1] is None

    def test_rejects_row_outside_requested_buckets(self):
        row = (1, "a")
        wrong = tuple(b for b in range(4) if b != bucket_of(row, 4))[:1]
        client = relation([])
        with pytest.raises(ProtocolError):
            apply_repair(
                client, RepairResponse(buckets=wrong, rows=((row, None),)), 4
            )

    def test_expired_divergence_needs_no_repair(self):
        # The client missed an insert whose tuple has since expired: at a
        # later digest time the two sides already agree -- zero traffic.
        server = relation([((1, "a"), ts(10))])
        client = relation([])
        digest = build_digest(server, 20, num_buckets=4)
        mine = bucket_hashes(client.exp_at(20).rows(), 4)
        assert diff_digests(mine, dict(digest.buckets)) == ()

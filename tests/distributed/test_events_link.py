"""Tests for the event queue and link model."""

import pytest

from repro.core.timestamps import ts
from repro.distributed.events import EventQueue
from repro.distributed.link import Link
from repro.distributed.node import Node
from repro.errors import SimulationError


class TestEventQueue:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        log = []
        queue.schedule(5, lambda at: log.append(("b", int(at))))
        queue.schedule(2, lambda at: log.append(("a", int(at))))
        queue.run_until(10)
        assert log == [("a", 2), ("b", 5)]

    def test_same_time_fifo(self):
        queue = EventQueue()
        log = []
        queue.schedule(3, lambda at: log.append("first"))
        queue.schedule(3, lambda at: log.append("second"))
        queue.run_until(3)
        assert log == ["first", "second"]

    def test_run_until_stops(self):
        queue = EventQueue()
        log = []
        queue.schedule(5, lambda at: log.append(5))
        queue.schedule(15, lambda at: log.append(15))
        assert queue.run_until(10) == 1
        assert log == [5]
        assert len(queue) == 1

    def test_cascading_events(self):
        queue = EventQueue()
        log = []

        def first(at):
            log.append(int(at))
            queue.schedule_in(3, lambda when: log.append(int(when)))

        queue.schedule(2, first)
        queue.run_until(10)
        assert log == [2, 5]

    def test_no_past_scheduling(self):
        queue = EventQueue()
        queue.schedule(5, lambda at: None)
        queue.run_until(5)
        with pytest.raises(SimulationError):
            queue.schedule(4, lambda at: None)

    def test_infinite_events_never_fire(self):
        queue = EventQueue()
        from repro.core.timestamps import INFINITY

        queue.schedule(INFINITY, lambda at: pytest.fail("fired"))
        assert len(queue) == 0

    def test_now_advances_to_horizon(self):
        queue = EventQueue()
        queue.run_until(7)
        assert queue.now == ts(7)


class TestLink:
    def test_latency(self):
        link = Link(latency=3)
        assert link.delivery_time(5) == ts(8)

    def test_jitter_bounded_and_deterministic(self):
        a = Link(latency=2, jitter=4, seed=7)
        b = Link(latency=2, jitter=4, seed=7)
        times_a = [int(a.delivery_time(0)) for _ in range(10)]
        times_b = [int(b.delivery_time(0)) for _ in range(10)]
        assert times_a == times_b
        assert all(2 <= t <= 6 for t in times_a)

    def test_loss(self):
        link = Link(loss_probability=1.0)
        assert link.delivery_time(0) is None
        link = Link(loss_probability=0.0)
        assert link.delivery_time(0) is not None

    def test_partition_queues(self):
        link = Link(latency=1, partitions=[(5, 10)])
        assert link.is_up(4)
        assert not link.is_up(5)
        assert link.delivery_time(7) == ts(11)  # departs at heal time 10
        assert link.stats.messages_queued == 1

    def test_partition_drops_when_not_queueing(self):
        link = Link(latency=1, partitions=[(5, 10)], queue_during_partition=False)
        assert link.delivery_time(7) is None

    def test_forever_partition(self):
        link = Link(latency=1, partitions=[(5, None)])
        assert link.delivery_time(7) is None

    def test_bad_parameters(self):
        with pytest.raises(SimulationError):
            Link(latency=-1)
        with pytest.raises(SimulationError):
            Link(loss_probability=1.5)

    def test_stats_accounting(self):
        link = Link()
        link.record_send(10)
        link.record_delivery(10)
        link.record_loss()
        stats = link.stats.as_dict()
        assert stats["messages_sent"] == 1
        assert stats["cells_sent"] == 10
        assert stats["messages_lost"] == 1

    def test_loss_sampled_during_partition_still_loses(self):
        # Loss is sampled before the partition check: a message that would
        # have been lost anyway is lost, not queued for the heal.
        link = Link(latency=1, loss_probability=1.0, partitions=[(5, 10)])
        assert link.delivery_time(7) is None
        assert link.stats.messages_queued == 0

    def test_back_to_back_partitions_coalesce(self):
        # [5,10) and [10,15) form one down window; a message sent inside
        # the first departs only when the *second* heals.
        link = Link(latency=1, partitions=[(5, 10), (10, 15)])
        assert link.delivery_time(7) == ts(16)
        assert link.stats.messages_queued == 1

    def test_transmit_accounts_sends_and_losses(self):
        lossy = Link(loss_probability=1.0)
        assert lossy.transmit(0, size_cells=4) is None
        assert lossy.stats.messages_sent == 1
        assert lossy.stats.cells_sent == 4
        assert lossy.stats.messages_lost == 1
        clean = Link(latency=2)
        assert clean.transmit(0, size_cells=4) == ts(2)
        assert clean.stats.messages_lost == 0

    def test_transmit_counts_forever_partition_as_lost(self):
        link = Link(latency=1, partitions=[(0, None)])
        assert link.transmit(3, size_cells=2) is None
        assert link.stats.messages_lost == 1

    def test_deterministic_across_identical_seeds(self):
        def trace(seed):
            link = Link(latency=2, jitter=3, loss_probability=0.4, seed=seed)
            return [link.transmit(t, size_cells=1) for t in range(30)]

        assert trace(11) == trace(11)
        assert trace(11) != trace(12)

    def test_bandwidth_adds_serialisation_delay(self):
        link = Link(latency=2, bandwidth=2)
        assert link.serialisation_delay(1) == 1
        assert link.serialisation_delay(5) == 3  # ceil(5 / 2)
        assert link.delivery_time(0, size_cells=5) == ts(5)
        unbounded = Link(latency=2)
        assert unbounded.serialisation_delay(100) == 0

    def test_bandwidth_validation(self):
        with pytest.raises(SimulationError):
            Link(bandwidth=0)

    def test_loss_burst_overrides_base_probability(self):
        link = Link(loss_probability=0.1)
        link.add_loss_burst(10, 20, 1.0)
        assert link.loss_probability_at(5) == 0.1
        assert link.loss_probability_at(10) == 1.0
        assert link.loss_probability_at(19) == 1.0
        assert link.loss_probability_at(20) == 0.1
        assert link.delivery_time(15) is None
        with pytest.raises(SimulationError):
            link.add_loss_burst(0, 5, 1.5)

    def test_added_partition_behaves_like_constructed(self):
        link = Link(latency=1)
        link.add_partition(5, 10)
        assert not link.is_up(7)
        assert link.delivery_time(7) == ts(11)


class TestNode:
    def test_skew(self):
        assert Node("n", clock_skew=3).local_time(10) == ts(13)
        assert Node("n", clock_skew=-3).local_time(10) == ts(7)

    def test_skew_clamps_at_zero(self):
        assert Node("n", clock_skew=-5).local_time(2) == ts(0)

    def test_needs_name(self):
        with pytest.raises(SimulationError):
            Node("")

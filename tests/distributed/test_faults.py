"""Tests for fault injection and end-to-end fault tolerance.

The end-to-end class is the issue's acceptance scenario: a seeded lossy
link plus a partition window plus one state-losing crash/restart.  The
expiration strategy with reliable delivery *and* anti-entropy must
converge exactly to the server's ground truth after quiescence; the
unreliable baseline must demonstrably not.
"""

import pytest

from repro.distributed.faults import BurstLoss, FaultSchedule, LinkFlap, NodeCrash
from repro.distributed.link import Link
from repro.distributed.reliability import ReliabilityConfig, RetryPolicy
from repro.distributed.anti_entropy import AntiEntropyConfig
from repro.distributed.simulator import ReplicationSimulation, ReplicationStrategy
from repro.errors import FaultInjectionError
from repro.workloads.generators import UniformLifetime, random_stream


class TestFaultValidation:
    def test_crash_must_restart_after_crashing(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule([NodeCrash(at=10, restart_at=10)])
        with pytest.raises(FaultInjectionError):
            FaultSchedule([NodeCrash(at=-1, restart_at=5)])

    def test_flap_needs_positive_duration(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule([LinkFlap(at=5, duration=0)])

    def test_burst_bounds(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule([BurstLoss(at=10, until=5)])
        with pytest.raises(FaultInjectionError):
            FaultSchedule([BurstLoss(at=0, until=5, probability=2.0)])

    def test_rejects_unknown_fault_kinds(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule(["not a fault"])

    def test_last_activity(self):
        schedule = FaultSchedule([
            NodeCrash(at=10, restart_at=30),
            LinkFlap(at=40, duration=5),
            BurstLoss(at=0, until=20),
        ])
        assert schedule.last_activity() == 45

    def test_apply_folds_static_faults_into_links(self):
        schedule = FaultSchedule([
            LinkFlap(at=10, duration=5),
            BurstLoss(at=30, until=40, probability=1.0),
        ])
        link = Link(latency=1)
        schedule.apply_to_links([link])
        assert not link.is_up(12)
        assert link.is_up(15)
        assert link.loss_probability_at(35) == 1.0


def acceptance_workload():
    workload = random_stream(
        ["k", "v"], 40, UniformLifetime(10, 30), arrival_span=50, seed=7
    )
    # A few rows that outlive the whole run: the unreliable baseline has
    # no second chance at these, so a lost insert diverges forever.
    workload += [(5, (900 + i, "eternal"), 10_000) for i in range(4)]
    return workload


def acceptance_faults():
    return FaultSchedule([
        BurstLoss(at=25, until=55, probability=1.0),
        LinkFlap(at=90, duration=15),
        NodeCrash(at=120, restart_at=130, lose_state=True),
    ])


def run_replication(strategy, reliable=False, anti_entropy=False, seed=3):
    sim = ReplicationSimulation(
        ["k", "v"], acceptance_workload(), range(10, 200, 10), strategy,
        link=Link(latency=2, loss_probability=0.2, seed=seed),
        reliability=(
            ReliabilityConfig(retry=RetryPolicy(), seed=1) if reliable else None
        ),
        anti_entropy=AntiEntropyConfig(period=20, num_buckets=8)
        if anti_entropy else None,
        faults=acceptance_faults(),
        horizon=400,
    )
    report = sim.run()
    return sim, report


class TestEndToEndFaultTolerance:
    def test_unreliable_baseline_never_converges(self):
        _, report = run_replication(ReplicationStrategy.EXPIRATION)
        assert not report.converged
        assert report.divergence_ticks > 0

    def test_reliable_with_anti_entropy_converges_to_ground_truth(self):
        sim, report = run_replication(
            ReplicationStrategy.EXPIRATION, reliable=True, anti_entropy=True
        )
        assert report.converged
        assert report.converged_at is not None
        # Exact agreement with the origin's live rows after quiescence.
        final = sim.events.now
        assert sim.client.visible_rows(final) == sim.server.live_rows(final)
        assert sim.client.visible_rows(final)  # non-vacuous: rows remain

    def test_retransmission_alone_cannot_survive_state_loss(self):
        # Acked-then-lost rows are never retransmitted; without
        # anti-entropy the replica stays short of ground truth.
        _, reliable_only = run_replication(
            ReplicationStrategy.EXPIRATION, reliable=True
        )
        assert not reliable_only.converged

    def test_expiration_awareness_saves_retransmissions(self):
        _, report = run_replication(
            ReplicationStrategy.EXPIRATION, reliable=True, anti_entropy=True
        )
        assert report.retransmissions > 0
        assert report.retransmissions_avoided > 0
        assert report.cells_avoided > 0

    def test_anti_entropy_heals_the_baseline_too(self):
        sim, report = run_replication(
            ReplicationStrategy.EXPLICIT_DELETE, reliable=True, anti_entropy=True
        )
        assert report.converged
        final = sim.events.now
        assert sim.client.visible_rows(final) == sim.server.live_rows(final)

    def test_expiration_converges_cheaper_than_baseline(self):
        _, baseline = run_replication(
            ReplicationStrategy.EXPLICIT_DELETE, reliable=True, anti_entropy=True
        )
        _, expiration = run_replication(
            ReplicationStrategy.EXPIRATION, reliable=True, anti_entropy=True
        )
        assert expiration.converged and baseline.converged
        assert expiration.cells < baseline.cells
        assert expiration.messages < baseline.messages

    def test_convergence_metrics_are_coherent(self):
        _, report = run_replication(
            ReplicationStrategy.EXPIRATION, reliable=True, anti_entropy=True
        )
        windows = report.detail["divergence_windows"]
        assert report.divergence_ticks == sum(end - start for start, end in windows)
        assert report.max_staleness == max(end - start for start, end in windows)
        assert report.converged_at == windows[-1][1]
        assert report.convergence_lag is not None and report.convergence_lag >= 0

    def test_crash_without_state_loss_recovers_by_retransmission(self):
        faults = FaultSchedule([NodeCrash(at=30, restart_at=40, lose_state=False)])
        sim = ReplicationSimulation(
            ["k", "v"], acceptance_workload(), range(10, 200, 10),
            ReplicationStrategy.EXPIRATION,
            link=Link(latency=2, seed=3),
            reliability=ReliabilityConfig(retry=RetryPolicy(), seed=1),
            faults=faults, horizon=400,
        )
        report = sim.run()
        assert report.converged
        assert report.detail.get("crash_drops", 0) > 0

    def test_deterministic_across_identical_seeds(self):
        rows = [
            run_replication(
                ReplicationStrategy.EXPIRATION, reliable=True, anti_entropy=True
            )[1].fault_tolerance_row()
            for _ in range(2)
        ]
        assert rows[0] == rows[1]

    def test_different_seed_changes_the_run(self):
        a = run_replication(
            ReplicationStrategy.EXPIRATION, reliable=True, seed=3
        )[1].fault_tolerance_row()
        b = run_replication(
            ReplicationStrategy.EXPIRATION, reliable=True, seed=4
        )[1].fault_tolerance_row()
        assert a != b

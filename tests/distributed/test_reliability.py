"""Tests for the reliable session layer (sequence numbers, acks, retries)."""

import random

import pytest

from repro.core.timestamps import ts
from repro.distributed.events import EventQueue
from repro.distributed.link import Link
from repro.distributed.protocols import Ack, DeleteNotice, Envelope, TupleInsert
from repro.distributed.reliability import (
    ReliableReceiver,
    ReliableSender,
    RetryPolicy,
)
from repro.errors import ProtocolError, SimulationError


def no_jitter(**overrides):
    """A fully deterministic policy for timing-sensitive tests."""
    defaults = dict(base_delay=4, multiplier=2.0, max_delay=64, jitter=0,
                    max_attempts=3)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(SimulationError):
            RetryPolicy(base_delay=0)
        with pytest.raises(SimulationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(SimulationError):
            RetryPolicy(base_delay=10, max_delay=5)
        with pytest.raises(SimulationError):
            RetryPolicy(jitter=-1)
        with pytest.raises(SimulationError):
            RetryPolicy(max_attempts=0)

    def test_exponential_backoff_with_cap(self):
        policy = no_jitter(base_delay=4, max_delay=10)
        rng = random.Random(0)
        assert policy.delay(0, rng) == 4
        assert policy.delay(1, rng) == 8
        assert policy.delay(2, rng) == 10  # capped
        assert policy.delay(9, rng) == 10

    def test_jitter_is_bounded_and_seed_deterministic(self):
        policy = RetryPolicy(base_delay=4, jitter=3)
        delays_a = [policy.delay(0, random.Random(7)) for _ in range(5)]
        delays_b = [policy.delay(0, random.Random(7)) for _ in range(5)]
        assert delays_a == delays_b
        assert all(4 <= d <= 7 for d in delays_a)

    def test_max_total_delay_bounds_every_schedule(self):
        policy = RetryPolicy(base_delay=4, jitter=3, max_attempts=5)
        rng = random.Random(1)
        total = sum(policy.delay(a, rng) for a in range(policy.max_attempts + 1))
        assert total <= policy.max_total_delay()


class SenderHarness:
    """A sender wired to a transcript list instead of a link."""

    def __init__(self, policy=None):
        self.events = EventQueue()
        self.wire = []
        self.sender = ReliableSender(
            lambda message, now: self.wire.append((int(now), message)),
            self.events,
            policy=policy or no_jitter(),
        )


class TestReliableSender:
    def test_envelopes_get_consecutive_sequence_numbers(self):
        h = SenderHarness()
        for i in range(3):
            envelope = h.sender.send(TupleInsert(row=(i,)), ts(0))
            assert envelope.seq == i
        assert [m.seq for _, m in h.wire] == [0, 1, 2]
        assert h.sender.stats.sent == 3

    def test_ack_stops_retransmission(self):
        h = SenderHarness()
        h.sender.send(TupleInsert(row=(1,)), ts(0))
        h.sender.on_ack(Ack(cumulative=0), ts(2))
        assert h.sender.in_flight == 0
        h.events.run_until(200)
        assert len(h.wire) == 1  # never retransmitted
        assert h.sender.stats.acked == 1

    def test_unacked_envelope_is_retransmitted_with_backoff(self):
        h = SenderHarness()
        h.sender.send(TupleInsert(row=(1,)), ts(0))
        h.events.run_until(200)
        # Original + max_attempts retransmissions at 4, 12, 28, then abandon.
        times = [t for t, _ in h.wire]
        assert times == [0, 4, 12, 28]
        assert h.sender.stats.retransmissions == 3
        assert h.sender.stats.abandoned == 1
        assert h.sender.in_flight == 0

    def test_selective_ack_retires_out_of_order(self):
        h = SenderHarness()
        h.sender.send(TupleInsert(row=(1,)), ts(0))
        h.sender.send(TupleInsert(row=(2,)), ts(0))
        h.sender.on_ack(Ack(cumulative=-1, selective=(1,)), ts(1))
        assert h.sender.in_flight == 1  # seq 0 still pending
        h.sender.on_ack(Ack(cumulative=0), ts(2))
        assert h.sender.in_flight == 0

    def test_expired_payload_cancels_retransmission(self):
        h = SenderHarness()
        message = TupleInsert(row=(1,), expires_at=ts(3))
        envelope = h.sender.send(message, ts(0), expires_at=ts(3))
        h.events.run_until(200)
        # The first timer fires at 4 > 3: the tuple is dead, cancel.
        assert len(h.wire) == 1
        assert h.sender.stats.retransmissions == 0
        assert h.sender.stats.retransmissions_avoided == 1
        assert h.sender.stats.cells_avoided == envelope.size_cells()
        assert h.sender.in_flight == 0

    def test_unexpired_payload_retries_until_expiry(self):
        h = SenderHarness()
        h.sender.send(TupleInsert(row=(1,), expires_at=ts(20)), ts(0),
                      expires_at=ts(20))
        h.events.run_until(200)
        # Retries at 4 and 12 happen; the timer at 28 finds the tuple dead.
        assert [t for t, _ in h.wire] == [0, 4, 12]
        assert h.sender.stats.retransmissions == 2
        assert h.sender.stats.retransmissions_avoided == 1

    def test_channel_supersession(self):
        h = SenderHarness()
        h.sender.send(TupleInsert(row=(1,)), ts(0), channel="snapshot")
        h.sender.send(TupleInsert(row=(2,)), ts(1), channel="snapshot")
        assert h.sender.in_flight == 1  # the old snapshot was dropped
        assert h.sender.stats.superseded == 1
        h.events.run_until(200)
        retransmitted = {m.payload.row for t, m in h.wire if t > 1}
        assert (1,) not in retransmitted

    def test_deterministic_given_seed(self):
        def trace(seed):
            events = EventQueue()
            wire = []
            sender = ReliableSender(
                lambda message, now: wire.append((int(now), message.seq)),
                events,
                policy=RetryPolicy(jitter=3, max_attempts=4),
                seed=seed,
            )
            for i in range(5):
                sender.send(TupleInsert(row=(i,)), ts(i))
            events.run_until(500)
            return wire

        assert trace(3) == trace(3)
        assert trace(3) != trace(4)


class ReceiverHarness:
    def __init__(self):
        self.delivered = []
        self.acks = []
        self.receiver = ReliableReceiver(
            lambda payload, at: self.delivered.append(payload),
            lambda ack, at: self.acks.append(ack),
        )


class TestReliableReceiver:
    def test_delivers_in_order_exactly_once(self):
        h = ReceiverHarness()
        for seq in (0, 1, 2):
            h.receiver.on_envelope(Envelope(seq=seq, payload=TupleInsert(row=(seq,))), ts(seq))
        assert [m.row for m in h.delivered] == [(0,), (1,), (2,)]
        assert h.receiver.cumulative == 2

    def test_duplicate_is_dropped_but_acked(self):
        h = ReceiverHarness()
        envelope = Envelope(seq=0, payload=TupleInsert(row=(1,)))
        h.receiver.on_envelope(envelope, ts(0))
        h.receiver.on_envelope(envelope, ts(5))
        assert len(h.delivered) == 1
        assert len(h.acks) == 2  # a lost ack must not stall the sender
        assert h.receiver.stats.duplicates_dropped == 1

    def test_out_of_order_arrival_uses_selective_acks(self):
        h = ReceiverHarness()
        h.receiver.on_envelope(Envelope(seq=2, payload=DeleteNotice(row=(2,))), ts(0))
        assert h.acks[-1].cumulative == -1
        assert h.acks[-1].selective == (2,)
        h.receiver.on_envelope(Envelope(seq=0, payload=DeleteNotice(row=(0,))), ts(1))
        assert h.acks[-1].cumulative == 0
        assert h.acks[-1].selective == (2,)
        h.receiver.on_envelope(Envelope(seq=1, payload=DeleteNotice(row=(1,))), ts(2))
        assert h.acks[-1].cumulative == 2
        assert h.acks[-1].selective == ()
        # Delivery happened in arrival order (the protocols commute).
        assert [m.row for m in h.delivered] == [(2,), (0,), (1,)]

    def test_rejects_bare_message(self):
        h = ReceiverHarness()
        with pytest.raises(ProtocolError):
            h.receiver.on_envelope(TupleInsert(row=(1,)), ts(0))

    def test_reset_forgets_session_state(self):
        h = ReceiverHarness()
        h.receiver.on_envelope(Envelope(seq=0, payload=TupleInsert(row=(1,))), ts(0))
        h.receiver.reset()
        assert h.receiver.cumulative == -1
        # A retransmission of seq 0 is re-delivered (crash recovery).
        h.receiver.on_envelope(Envelope(seq=0, payload=TupleInsert(row=(1,))), ts(5))
        assert len(h.delivered) == 2


class TestEndToEnd:
    def test_every_payload_survives_a_lossy_link(self):
        events = EventQueue()
        link = Link(latency=1, loss_probability=0.5, seed=13)
        back = Link(latency=1, loss_probability=0.5, seed=14)
        delivered = []

        def transmit(message, now):
            arrival = link.transmit(now, message.size_cells())
            if arrival is not None:
                events.schedule(arrival, lambda at, m=message: receiver.on_envelope(m, at))

        def send_ack(ack, at):
            arrival = back.transmit(at, ack.size_cells())
            if arrival is not None:
                events.schedule(arrival, lambda when, a=ack: sender.on_ack(a, when))

        sender = ReliableSender(transmit, events,
                                policy=RetryPolicy(max_attempts=12), seed=5)
        receiver = ReliableReceiver(
            lambda payload, at: delivered.append(payload.row), send_ack,
            stats=sender.stats,
        )
        for i in range(20):
            sender.send(TupleInsert(row=(i,)), ts(i))
        events.run_until(2000)
        assert sorted(delivered) == [(i,) for i in range(20)]
        assert sender.in_flight == 0
        assert sender.stats.retransmissions > 0

"""Figure-by-figure, table-by-table reproduction of the paper's examples.

This is the canonical reproduction suite: each test corresponds to one
artefact of the paper (Figures 1-3, Tables 1-2, Theorems 1-3) and asserts
the *exact* rows, expiration times, and validity behaviour printed there.
The benchmark harnesses regenerate the same artefacts with output; these
tests pin them down as assertions.
"""

import pytest

from repro.core.aggregates import ExpirationStrategy
from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import BaseRef
from repro.core.intervals import IntervalSet
from repro.core.patching import PatchedDifference
from repro.core.relation import relation_from_rows
from repro.core.timestamps import INFINITY, ts
from repro.workloads.news import figure1_el, figure1_pol


class TestFigure1:
    """The example relations Pol and El at time 0."""

    def test_pol_rows_and_expirations(self, pol):
        assert {(row, int(texp)) for row, texp in pol.items()} == {
            ((1, 25), 10),
            ((2, 25), 15),
            ((3, 35), 10),
        }

    def test_el_rows_and_expirations(self, el):
        assert {(row, int(texp)) for row, texp in el.items()} == {
            ((1, 75), 5),
            ((2, 85), 3),
            ((4, 90), 2),
        }


class TestFigure2:
    """Monotonic expressions: expiry equals recomputation at every time."""

    def test_2a_pol_at_0(self, catalog):
        result = evaluate(BaseRef("Pol"), catalog, tau=0)
        assert set(result.relation.rows()) == {(1, 25), (2, 25), (3, 35)}

    def test_2b_el_at_0(self, catalog):
        result = evaluate(BaseRef("El"), catalog, tau=0)
        assert set(result.relation.rows()) == {(1, 75), (2, 85), (4, 90)}

    def test_2c_projection_at_0(self, catalog):
        result = evaluate(BaseRef("Pol").project(2), catalog, tau=0)
        assert set(result.relation.rows()) == {(25,), (35,)}
        # <25> merges duplicates <1,25>@10 and <2,25>@15 -> max = 15.
        assert result.relation.expiration_of((25,)) == ts(15)

    def test_2d_projection_at_10(self, catalog):
        result = evaluate(BaseRef("Pol").project(2), catalog, tau=10)
        assert set(result.relation.rows()) == {(25,)}

    def test_2d_materialisation_expires_identically(self, catalog):
        materialised = evaluate(BaseRef("Pol").project(2), catalog, tau=0)
        fresh = evaluate(BaseRef("Pol").project(2), catalog, tau=10)
        assert materialised.relation.exp_at(10).same_content(fresh.relation)

    def test_2e_join_at_0(self, catalog):
        result = evaluate(BaseRef("Pol").join(BaseRef("El"), on=[(1, 1)]), catalog)
        assert set(result.relation.rows()) == {(1, 25, 1, 75), (2, 25, 2, 85)}

    def test_2f_join_at_3(self, catalog):
        result = evaluate(
            BaseRef("Pol").join(BaseRef("El"), on=[(1, 1)]), catalog, tau=3
        )
        assert set(result.relation.rows()) == {(1, 25, 1, 75)}

    def test_2g_join_at_5_empty(self, catalog):
        result = evaluate(
            BaseRef("Pol").join(BaseRef("El"), on=[(1, 1)]), catalog, tau=5
        )
        assert len(result.relation) == 0

    def test_monotonic_materialisations_never_invalidate(self, catalog):
        expr = BaseRef("Pol").join(BaseRef("El"), on=[(1, 1)])
        materialised = evaluate(expr, catalog, tau=0)
        assert materialised.expiration == INFINITY
        for when in (0, 2, 3, 5, 10, 15, 20):
            fresh = evaluate(expr, catalog, tau=when)
            assert materialised.relation.exp_at(when).same_content(fresh.relation)


class TestFigure3:
    """Non-monotonic expressions and their invalidity."""

    def histogram(self):
        return (
            BaseRef("Pol")
            .aggregate(group_by=[2], function="count",
                       strategy=ExpirationStrategy.CONSERVATIVE)
            .project(2, 3)
        )

    def difference(self):
        return BaseRef("Pol").project(1).difference(BaseRef("El").project(1))

    def test_3a_histogram_at_0(self, catalog):
        result = evaluate(self.histogram(), catalog, tau=0)
        assert {(row, int(texp)) for row, texp in result.relation.items()} == {
            ((25, 2), 10),
            ((35, 1), 10),
        }

    def test_3a_should_contain_25_1_from_10_but_does_not(self, catalog):
        materialised = evaluate(self.histogram(), catalog, tau=0)
        fresh = evaluate(self.histogram(), catalog, tau=10)
        assert set(fresh.relation.rows()) == {(25, 1)}
        assert set(materialised.relation.exp_at(10).rows()) == set()
        # "Thus, from time 10 on, the result is invalid."
        assert materialised.expiration == ts(10)

    def test_3b_difference_at_0(self, catalog):
        result = evaluate(self.difference(), catalog, tau=0)
        assert set(result.relation.rows()) == {(3,)}

    def test_3c_difference_at_3(self, catalog):
        result = evaluate(self.difference(), catalog, tau=3)
        assert set(result.relation.rows()) == {(2,), (3,)}

    def test_3d_difference_at_5(self, catalog):
        result = evaluate(self.difference(), catalog, tau=5)
        assert set(result.relation.rows()) == {(1,), (2,), (3,)}

    def test_difference_grows_monotonically_before_10(self, catalog):
        sizes = [
            len(evaluate(self.difference(), catalog, tau=t).relation)
            for t in (0, 3, 5)
        ]
        assert sizes == sorted(sizes)
        assert sizes == [1, 2, 3]

    def test_difference_invalid_from_3(self, catalog):
        materialised = evaluate(self.difference(), catalog, tau=0)
        assert materialised.expiration == ts(3)
        assert materialised.validity == IntervalSet.from_pairs([(0, 3), (15, None)])


class TestTable1:
    """Neutral sets: lifetimes beyond Equation (8) for min/max/avg/sum."""

    def test_min_example(self):
        from repro.core.aggregates import (
            MinAggregate,
            conservative_expiration,
            neutral_set_expiration,
        )

        partition = [(9, ts(3)), (1, ts(20))]
        assert int(conservative_expiration(partition)) == 3
        assert int(neutral_set_expiration(partition, MinAggregate())) == 20

    def test_sum_zero_neutral(self):
        from repro.core.aggregates import SumAggregate, neutral_set_expiration

        partition = [(5, ts(3)), (-5, ts(3)), (7, ts(20))]
        assert int(neutral_set_expiration(partition, SumAggregate())) == 20

    def test_count_never_extends(self):
        from repro.core.aggregates import (
            CountAggregate,
            conservative_expiration,
            neutral_set_expiration,
        )

        partition = [(5, ts(3)), (7, ts(20))]
        assert neutral_set_expiration(
            partition, CountAggregate()
        ) == conservative_expiration(partition)


class TestTable2:
    """The difference lifetime case analysis."""

    def run_case(self, left_texp, right_texp, in_left=True, in_right=True):
        left_rows = [((1,), left_texp)] if in_left else []
        right_rows = [((1,), right_texp)] if in_right else []
        left = relation_from_rows(["a"], left_rows)
        right = relation_from_rows(["a"], right_rows)
        from repro.core.algebra.expressions import Literal

        return evaluate(Literal(left).difference(Literal(right)), {})

    def test_case_1_only_in_r(self):
        result = self.run_case(10, None, in_right=False)
        assert result.relation.expiration_of((1,)) == ts(10)
        assert result.expiration == INFINITY

    def test_case_2_only_in_s(self):
        result = self.run_case(None, 10, in_left=False)
        assert len(result.relation) == 0
        assert result.expiration == INFINITY

    def test_case_3a_r_outlives_s(self):
        result = self.run_case(15, 5)
        assert len(result.relation) == 0
        assert result.expiration == ts(5)  # texp(e) = texp_S(t)

    def test_case_3b_s_outlives_r(self):
        result = self.run_case(5, 15)
        assert len(result.relation) == 0
        assert result.expiration == INFINITY


class TestTheorem3EndToEnd:
    def test_patched_figure3_difference_never_recomputes(self, pol, el):
        pol1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in pol.items()])
        el1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in el.items()])
        view = PatchedDifference(pol1, el1, tau=0)
        assert view.expiration == INFINITY
        expected = {
            0: {(3,)},
            2: {(3,)},
            3: {(2,), (3,)},
            5: {(1,), (2,), (3,)},
            9: {(1,), (2,), (3,)},
            10: {(2,)},
            14: {(2,)},
            15: set(),
        }
        for when, rows in sorted(expected.items()):
            assert set(view.view_at(when).rows()) == rows

"""A full-stack story test: the news service, end to end.

Drives every layer in one scenario -- SQL DDL/DML, triggers, constraints,
all three view policies, the rewriter, QoS answering, a snapshot/restore,
and shipping a difference view to a remote client -- asserting cross-layer
consistency at each step.  If a refactor breaks the glue between two
subsystems, this is the test that notices.
"""

import pytest

from repro.core.qos import QosAnswerer, QosContract, StalenessBound
from repro.core.rewriter import compare_plans
from repro.distributed import (
    DifferenceViewSimulation,
    Link,
    ViewMaintenanceStrategy,
)
from repro.engine.constraints import CheckConstraint, KeyConstraint
from repro.engine.database import Database
from repro.engine.maintenance import IncrementalView
from repro.engine.persistence import database_from_dict, database_to_dict
from repro.engine.views import MaintenancePolicy
from repro.core.algebra.predicates import col
from repro.sql import execute_script


@pytest.fixture
def service():
    db = Database()
    execute_script(
        db,
        """
        CREATE TABLE Pol (uid, deg);
        CREATE TABLE El (uid, deg);
        INSERT INTO Pol VALUES (1, 25) EXPIRES AT 40;
        INSERT INTO Pol VALUES (2, 25) EXPIRES AT 60;
        INSERT INTO Pol VALUES (3, 35) EXPIRES AT 40;
        INSERT INTO Pol VALUES (4, 55) EXPIRES AT 80;
        INSERT INTO El VALUES (1, 75) EXPIRES AT 20;
        INSERT INTO El VALUES (2, 85) EXPIRES AT 12;
        INSERT INTO El VALUES (5, 90) EXPIRES AT 8;
        """,
    )
    return db


class TestNewsServiceStory:
    def test_full_lifecycle(self, service):
        db = service

        # Constraints and triggers participate from the start.
        db.table("Pol").add_constraint(
            CheckConstraint("valid_degree", (col("deg") >= 0) & (col("deg") < 100))
        )
        renewals = []
        db.table("Pol").triggers.register(
            "renewal", lambda event: renewals.append(event.tuple.row[0])
        )
        with pytest.raises(Exception):
            db.table("Pol").insert((9, 250), expires_at=50)

        # Three views over the same data, three policies.
        watch_expr = db.table_expr("Pol").project(1).difference(
            db.table_expr("El").project(1)
        )
        patched = db.materialise("watch_patch", watch_expr,
                                 policy=MaintenancePolicy.PATCH)
        schro = db.materialise("watch_schro", watch_expr,
                               policy=MaintenancePolicy.SCHRODINGER)
        db.sql(
            "CREATE MATERIALIZED VIEW hist AS "
            "SELECT deg, COUNT(*) FROM Pol GROUP BY deg WITH POLICY RECOMPUTE"
        )
        hist = db.view("hist")

        # The rewriter only ever helps materialisations of filtered plans.
        from repro.core.algebra.expressions import Difference, Select

        plan = Select(
            Difference(db.table_expr("Pol"), db.table_expr("El")), col(2) == 25
        )
        before, after = compare_plans(plan, db.catalog, tau=0)
        assert before.expiration <= after.expiration

        # March time forward; every view answers like a recomputation.
        for when in (5, 8, 12, 20, 40, 60, 80):
            db.advance_to(when)
            truth_watch = set(db.evaluate(watch_expr).relation.rows())
            assert set(patched.read().rows()) == truth_watch
            assert set(schro.read().rows()) == truth_watch
            truth_hist = set(
                db.sql("SELECT deg, COUNT(*) FROM Pol GROUP BY deg").relation.rows()
            )
            assert set(hist.read().rows()) == truth_hist
        assert patched.recomputations == 0
        assert renewals  # the expired profiles asked for renewal

        # Expiration did all deletion work.
        assert db.statistics.explicit_deletes == 0

    def test_snapshot_restore_preserves_behaviour(self, service):
        db = service
        expr = db.table_expr("Pol").project(1).difference(
            db.table_expr("El").project(1)
        )
        db.materialise("watch", expr, policy=MaintenancePolicy.PATCH)
        db.advance_to(10)

        restored = database_from_dict(database_to_dict(db))
        for when in (10, 12, 20, 40, 60):
            db.advance_to(when)
            restored.advance_to(when)
            original_rows = set(db.view("watch").read().rows())
            restored_rows = set(restored.view("watch").read().rows())
            assert original_rows == restored_rows

    def test_remote_client_with_qos(self, service):
        db = service
        left = db.table("Pol").relation.copy()
        right = db.table("El").relation.copy()
        # project both sides to uid for a union-compatible difference
        from repro.core.relation import relation_from_rows

        left1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in left.items()])
        right1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in right.items()])

        # Ship the view with patches: perfect, silent client.
        sim = DifferenceViewSimulation(
            left1.copy(), right1.copy(), list(range(0, 90, 4)),
            ViewMaintenanceStrategy.PATCH, link=Link(latency=3),
        )
        report = sim.run()
        assert report.consistency == 1.0
        assert report.recompute_requests == 0

        # The same materialisation behind a staleness contract locally.
        from repro.core.algebra.expressions import Literal

        expr = Literal(left1).difference(Literal(right1))
        from repro.core.algebra.evaluator import evaluate

        materialised = evaluate(expr, {}, tau=0)
        answerer = QosAnswerer(
            expr, {}, materialised, QosContract(staleness=StalenessBound(6))
        )
        for when in range(0, 90, 5):
            answer = answerer.answer(when)
            truth = evaluate(expr, {}, tau=answer.effective_time)
            assert set(answer.relation.rows()) == set(truth.relation.rows())
            if not answer.recomputed:
                assert when - answer.effective_time.value <= 6

    def test_incremental_view_with_live_sql_traffic(self, service):
        db = service
        expr = db.table_expr("Pol").difference(db.table_expr("El"))
        view = IncrementalView(db, "live_watch", expr)
        db.sql("INSERT INTO Pol VALUES (7, 45) EXPIRES AT 70")
        db.sql("INSERT INTO El VALUES (7, 45) EXPIRES AT 30")
        # note: El rows are (uid, deg); the difference matches whole rows,
        # so only identical tuples shadow each other.
        for when in (0, 10, 30, 50, 70):
            db.advance_to(when)
            assert set(view.read().rows()) == set(
                db.evaluate(expr).relation.rows()
            )

"""Continuous queries over expiring streams.

The serve/refresh protocol (answers cached with their Schrödinger
validity interval, arrivals folded in incrementally, refreshes only when
``I(e)`` runs out or a revocation dirties the cache), the two table-level
expiry policies, and a brute-force differential for every standing-query
kind over randomised schedules of inserts, overrides, and clock
advances.
"""

import random

import pytest

from repro.core.approximate import AbsoluteTolerance
from repro.engine.database import Database
from repro.errors import EngineError
from repro.workloads import (
    CONNECTION_SCHEMA,
    EVENT_SCHEMA,
    StreamStore,
)

STREAM_SHAPES = [
    pytest.param({}, id="flat-row"),
    pytest.param({"layout": "columnar"}, id="flat-columnar"),
    pytest.param({"partitions": 3, "partition_key": "key"}, id="partitioned"),
]


def make_store(shape=None, ttl=10, expiry="absolute"):
    store = StreamStore()
    store.create_stream("s", EVENT_SCHEMA, ttl=ttl, expiry=expiry, **(shape or {}))
    return store


class TestStreamStore:
    @pytest.mark.parametrize("shape", STREAM_SHAPES)
    def test_ingest_defaults_to_stream_ttl(self, shape):
        store = make_store(shape, ttl=7)
        store.ingest("s", (1, 1))
        texp = store.stream("s").relation.expiration_or_none((1, 1))
        assert texp.value == 7

    def test_per_event_ttl_overrides_default(self):
        store = make_store(ttl=7)
        store.ingest("s", (1, 1), ttl=3)
        assert store.stream("s").relation.expiration_or_none((1, 1)).value == 3

    def test_attach_to_existing_table(self):
        db = Database()
        db.create_table("s", EVENT_SCHEMA, default_ttl=5)
        store = StreamStore(db)
        assert store.create_stream("s", EVENT_SCHEMA, ttl=99) is db.table("s")
        assert store.stream("s").default_ttl == 5  # attach, not re-create

    def test_touch_on_absolute_stream_is_noop(self):
        store = make_store(ttl=10)
        store.ingest("s", (1, 1))
        assert not store.touch("s", (1, 1))

    def test_duplicate_query_name_rejected(self):
        store = make_store()
        store.count("s")
        with pytest.raises(EngineError):
            store.count("s")

    def test_metrics_families_update(self):
        store = make_store()
        hits = store.count("s")
        store.ingest("s", (1, 1))
        hits.read()
        hits.read()
        metrics = store.database.metrics
        assert metrics.get("repro_streaming_events_total").labels("s").value == 1
        serves = metrics.get("repro_streaming_query_serves_total")
        assert serves.labels("s:count", "refresh").value == 1
        assert serves.labels("s:count", "cached").value == 1


class TestIdleTimeoutPolicy:
    """The since-last-modification stream: activity renews, idleness kills."""

    def test_touched_rows_outlive_untouched(self):
        store = StreamStore()
        store.create_stream(
            "conns", CONNECTION_SCHEMA, ttl=5,
            expiry="since_last_modification",
        )
        active = ("a", "b", 80)
        idle = ("c", "d", 443)
        store.ingest("conns", active)
        store.ingest("conns", idle)
        for _ in range(4):
            store.database.tick(3)
            assert store.touch("conns", active)
        table = store.stream("conns")
        assert table.relation.expiration_or_none(active) is not None
        assert len(table) == 1  # the idle one is gone

    def test_touch_does_not_revive_dead_row(self):
        store = StreamStore()
        store.create_stream(
            "conns", CONNECTION_SCHEMA, ttl=5,
            expiry="since_last_modification",
        )
        store.ingest("conns", ("a", "b", 80))
        store.database.tick(5)
        assert not store.touch("conns", ("a", "b", 80))
        assert len(store.stream("conns")) == 0

    def test_touch_counter(self):
        store = StreamStore()
        store.create_stream(
            "conns", CONNECTION_SCHEMA, ttl=5,
            expiry="since_last_modification",
        )
        store.ingest("conns", ("a", "b", 80))
        store.touch("conns", ("a", "b", 80))
        store.touch("conns", ("x", "y", 1))  # absent: not counted
        metrics = store.database.metrics
        assert (
            metrics.get("repro_streaming_touches_total").labels("conns").value
            == 1
        )


class TestServeRefreshProtocol:
    """Re-evaluation happens only when I(e) runs out, not per event."""

    def test_cached_within_validity(self):
        store = make_store(ttl=10)
        hits = store.count("s")
        store.ingest("s", (1, 1))
        store.ingest("s", (2, 2))
        assert hits.read() == 2
        first_validity = hits.validity
        store.database.tick(3)  # still inside [0, 10)
        assert hits.read() == 2
        assert hits.validity is first_validity  # no refresh happened

    def test_refresh_when_validity_expires(self):
        store = make_store(ttl=10)
        hits = store.count("s")
        store.ingest("s", (1, 1), ttl=4)
        store.ingest("s", (2, 2), ttl=10)
        assert hits.read() == 2
        causes = store.database.metrics.get(
            "repro_streaming_query_refreshes_total"
        )
        before = causes.labels("s:count", "validity").value
        store.database.tick(4)
        assert hits.read() == 1
        assert causes.labels("s:count", "validity").value == before + 1

    def test_arrivals_fold_in_without_refresh(self):
        store = make_store(ttl=10)
        hits = store.count("s")
        assert hits.read() == 0
        for i in range(20):
            store.ingest("s", (i, i))
        assert hits.read() == 20
        serves = store.database.metrics.get("repro_streaming_query_serves_total")
        assert serves.labels("s:count", "refresh").value == 1  # only the first

    def test_override_dirties_the_cache(self):
        store = make_store(ttl=10)
        hits = store.count("s")
        store.ingest("s", (1, 1))
        store.ingest("s", (2, 2))
        assert hits.read() == 2
        # Revoke one row mid-validity: the next read must not serve 2.
        store.stream("s").override((2, 2), expires_at=store.database.now)
        assert hits.read() == 1
        causes = store.database.metrics.get(
            "repro_streaming_query_refreshes_total"
        )
        assert causes.labels("s:count", "revoked").value == 1

    def test_tolerant_count_stretches_validity(self):
        store = make_store(ttl=100)
        exact = store.count("s", name="exact")
        loose = store.count("s", tolerance=AbsoluteTolerance(5), name="loose")
        for i in range(10):
            store.ingest("s", (i, i), ttl=10 + i)
        assert exact.read() == 10
        assert loose.read() == 10
        # Exact validity dies at the first expiration; tolerant one rides
        # out five deaths.
        assert exact.validity.intervals[-1].end.value == 10
        assert loose.validity.intervals[-1].end.value == 15


def brute_count(table, tau):
    return sum(1 for _, texp in table.relation.items() if tau < texp)


def brute_distinct(table, tau, index):
    return len(
        {row[index] for row, texp in table.relation.items() if tau < texp}
    )


def brute_extent(table, tau, index):
    values = [row[index] for row, texp in table.relation.items() if tau < texp]
    return (max(values) - min(values)) if values else None


class TestDifferential:
    """Random schedules vs brute force, across stream shapes."""

    @pytest.mark.parametrize("shape", STREAM_SHAPES)
    def test_exact_queries_match_brute_force(self, shape):
        store = make_store(shape)
        count = store.count("s")
        distinct = store.distinct("s", "key")
        extent = store.extent("s", "value")
        table = store.stream("s")
        rng = random.Random(20060408)
        for step in range(600):
            roll = rng.random()
            if roll < 0.55:
                store.ingest(
                    "s",
                    (rng.randrange(40), rng.randrange(100)),
                    ttl=rng.randint(1, 20),
                )
            elif roll < 0.65:
                rows = list(table.read().rows())
                if rows:
                    # Last-write shortening: revocation mid-validity.
                    table.override(
                        rng.choice(rows),
                        expires_at=store.database.now.value + rng.randint(0, 3),
                    )
            else:
                store.database.tick(rng.randint(1, 4))
            if step % 7 == 0:
                tau = store.database.now
                assert count.read() == brute_count(table, tau)
                assert distinct.read() == brute_distinct(table, tau, 0)
                assert extent.read() == brute_extent(table, tau, 1)

    def test_tolerant_count_stays_in_band(self):
        store = make_store(ttl=30)
        epsilon = 4
        loose = store.count("s", tolerance=AbsoluteTolerance(epsilon))
        table = store.stream("s")
        rng = random.Random(20060409)
        refreshes = store.database.metrics.get(
            "repro_streaming_query_refreshes_total"
        )
        for step in range(800):
            if rng.random() < 0.6:
                store.ingest(
                    "s",
                    (rng.randrange(500), rng.randrange(100)),
                    ttl=rng.randint(1, 25),
                )
            else:
                store.database.tick(1)
            got = loose.read()
            truth = brute_count(table, store.database.now)
            assert abs(got - truth) <= epsilon
        # The tolerance bought real savings: far fewer refreshes than reads.
        total = sum(c.value for _, c in refreshes.series())
        assert total < 800 / 4


class TestReservoirSample:
    def test_members_are_live_subset_and_bounded(self):
        store = make_store(ttl=15)
        sample = store.sample("s", capacity=8, rng=random.Random(1))
        table = store.stream("s")
        rng = random.Random(20060410)
        for _ in range(400):
            if rng.random() < 0.7:
                store.ingest(
                    "s",
                    (rng.randrange(1000), rng.randrange(50)),
                    ttl=rng.randint(1, 12),
                )
            else:
                store.database.tick(1)
            members = sample.read()
            assert len(members) <= 8
            live = set(table.read().rows())
            assert set(members) <= live
            # Depletion refills: with plenty live, never near-empty.
            if len(live) >= 8:
                assert len(members) >= 4

    def test_empty_stream_serves_empty(self):
        store = make_store(ttl=5)
        sample = store.sample("s", capacity=4)
        assert sample.read() == []
        store.ingest("s", (1, 1))
        store.database.tick(5)
        assert sample.read() == []


class TestExtentAndKCenter:
    def test_endpoint_death_shrinks_extent_same_read(self):
        store = make_store(ttl=50)
        extent = store.extent("s", "value")
        store.ingest("s", (1, 0), ttl=50)
        store.ingest("s", (2, 100), ttl=5)  # the max dies early
        assert extent.read() == 100
        store.database.tick(5)
        assert extent.read() == 0  # no stale serve after the endpoint died

    def test_k_center_radius_bounded_by_diameter(self):
        store = make_store(ttl=40)
        extent = store.extent("s", "value")
        rng = random.Random(20060411)
        for i in range(60):
            store.ingest("s", (i, rng.randrange(1000)), ttl=rng.randint(5, 40))
        diameter = extent.read()
        centers, radius = extent.k_center(3)
        assert len(centers) <= 3
        assert radius <= diameter
        # More centers never hurt.
        _, radius5 = extent.k_center(5)
        assert radius5 <= radius

    def test_k_center_empty_stream(self):
        store = make_store(ttl=5)
        extent = store.extent("s", "value")
        assert extent.k_center(2) == ([], 0)


class TestThresholdWatch:
    def test_scan_detection(self):
        store = StreamStore()
        store.create_stream("conns", CONNECTION_SCHEMA, ttl=10)
        watch = store.watch(
            "conns", group_by="src", distinct=("dst", "dport"), threshold=3
        )
        # An honest host touches one target repeatedly; a scanner fans out.
        for _ in range(5):
            store.ingest("conns", ("honest", "web", 443))
        for port in range(4):
            store.ingest("conns", ("scanner", "victim", port))
        alerts = watch.alerts()
        assert alerts == {"scanner": 4}

    def test_alerts_expire_with_entries(self):
        store = StreamStore()
        store.create_stream("conns", CONNECTION_SCHEMA, ttl=5)
        watch = store.watch(
            "conns", group_by="src", distinct=("dst", "dport"), threshold=2
        )
        store.ingest("conns", ("s", "a", 1))
        store.ingest("conns", ("s", "b", 2))
        assert watch.alerts() == {"s": 2}
        store.database.tick(5)
        assert watch.alerts() == {}


class TestPersistence:
    def test_expiry_policy_survives_recovery(self, tmp_path):
        from repro.engine.recovery import recover_database

        db = Database(wal_dir=tmp_path)
        db.create_table(
            "conns", CONNECTION_SCHEMA,
            expiry="since_last_modification", default_ttl=6,
        )
        db.table("conns").insert(("a", "b", 80))
        db.close()

        recovered = recover_database(tmp_path)
        table = recovered.table("conns")
        assert table.expiry == "since_last_modification"
        assert table.default_ttl == 6
        # The policy is live, not just recorded: touch still renews.
        recovered.tick(3)
        assert table.touch(("a", "b", 80)) is not None
        recovered.tick(4)
        assert len(table) == 1

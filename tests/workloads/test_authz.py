"""The expiring-authorization workload: every lifecycle is a texp.

Grants, role/group hierarchy, refresh tokens, lockouts, and audit
retention -- plus the revocation differential (an override is never
served after it commits) and durability of revocations across a crash.
"""

import pytest

from repro.engine.database import Database
from repro.engine.recovery import recover_database
from repro.workloads import AuthzStore


@pytest.fixture
def store():
    return AuthzStore(partitions=2)


class TestDirectGrants:
    def test_grant_check_expire(self, store):
        store.grant("alice", "read", "doc", ttl=10)
        assert store.check("alice", "read", "doc")
        store.database.tick(10)
        assert not store.check("alice", "read", "doc")

    def test_renew_is_max_merge(self, store):
        store.grant("alice", "read", "doc", ttl=100)
        store.renew_grant("alice", "read", "doc", ttl=5)  # shorter: kept
        store.database.tick(50)
        assert store.check("alice", "read", "doc")

    def test_revoke_is_immediate(self, store):
        store.grant("alice", "read", "doc", ttl=100)
        store.revoke("alice", "read", "doc")
        assert not store.check("alice", "read", "doc")  # same tick, no sweep


class TestHierarchy:
    def test_role_path(self, store):
        store.assign_role("bob", "editor", ttl=50)
        store.grant_role("editor", "write", "doc", ttl=50)
        assert store.check("bob", "write", "doc")
        store.revoke_role("bob", "editor")
        assert not store.check("bob", "write", "doc")

    def test_group_path_and_membership_expiry(self, store):
        store.join_group("carol", "eng", ttl=10)
        store.map_group_role("eng", "editor", ttl=50)
        store.grant_role("editor", "write", "doc", ttl=50)
        assert store.check("carol", "write", "doc")
        store.database.tick(10)  # only the *membership* lapses
        assert not store.check("carol", "write", "doc")

    def test_incremental_views_absorb_membership_inserts(self, store):
        store.grant_role("editor", "write", "doc", ttl=100)
        store.warm_views()
        before = store.role_view.refreshes
        for m in range(10):
            store.assign_role(f"m{m}", "editor", ttl=100)
            assert store.check(f"m{m}", "write", "doc")
        # The hot loop was absorbed as deltas, not rebuilds.
        assert store.role_view.refreshes == before
        assert store.role_view.delta_applications >= 10

    def test_semijoin_admin_view_lists_live_grants(self, store):
        store.join_group("carol", "eng", ttl=100)
        store.map_group_role("eng", "editor", ttl=100)
        store.grant_role("editor", "write", "doc", ttl=100)
        assert store.grants_in_force() == [("editor", "write", "doc")]
        store.leave_group("carol", "eng")  # no member left behind the chain
        assert store.grants_in_force() == []


class TestTokensAndLockouts:
    def test_refresh_token_churn_keeps_token_alive(self, store):
        store.issue_token("t1", "alice", ttl=10)
        for _ in range(5):
            store.database.tick(5)
            store.refresh_token("t1", "alice", ttl=10)
        assert store.token_valid("t1", "alice")
        store.database.tick(10)  # churn stops: the token dies by itself
        assert not store.token_valid("t1", "alice")

    def test_logout_cannot_be_expressed_by_renew_but_by_override(self, store):
        store.issue_token("t1", "alice", ttl=100)
        store.revoke_token("t1", "alice")
        assert not store.token_valid("t1", "alice")

    def test_lockout_clears_by_ttl_alone(self, store):
        store.grant("alice", "read", "doc", ttl=100)
        store.lock_out("alice", ttl=5)
        assert not store.check("alice", "read", "doc")
        store.database.tick(5)  # nothing swept, nothing deleted
        assert store.check("alice", "read", "doc")

    def test_manual_unlock_is_an_override(self, store):
        store.grant("alice", "read", "doc", ttl=100)
        store.lock_out("alice", ttl=50)
        store.clear_lockout("alice")
        assert store.check("alice", "read", "doc")
        store.clear_lockout("alice")  # idempotent on a clear subject


class TestAuditRetention:
    def test_retention_is_only_an_expiration(self, store):
        for _ in range(10):
            store.audit("alice", "login", retention=5)
        assert store.audit_window() == 10
        store.database.tick(5)
        assert store.audit_window() == 0  # aged out, no delete ever issued


class TestBulkLoadAndVerify:
    def test_bulk_loaded_grants_serve_and_audit_clean(self, store):
        n = store.load_grants(
            ((f"u{i}", "read", f"d{i}"), 50) for i in range(2_000)
        )
        assert n == 2_000
        assert store.check("u1500", "read", "d1500")
        assert not store.check("u1500", "read", "d7")
        store.database.tick(50)
        assert not store.check("u1500", "read", "d1500")
        assert store.database.verify(strict=True, deep=True) == []


class TestRevocationDurability:
    def test_revocations_survive_a_crash(self, tmp_path):
        store = AuthzStore(Database(wal_dir=tmp_path), partitions=2)
        store.grant("alice", "read", "doc", ttl=100)
        store.grant("bob", "read", "doc", ttl=100)
        store.revoke("alice", "read", "doc")
        store.database.close()

        recovered = AuthzStore(recover_database(tmp_path), partitions=2)
        assert not recovered.check("alice", "read", "doc")
        assert recovered.check("bob", "read", "doc")
        assert recovered.database.verify(strict=True, deep=True) == []
        recovered.database.close()


class TestMetrics:
    def test_decisions_and_latency_are_published(self, store):
        store.grant("alice", "read", "doc", ttl=10)
        store.check("alice", "read", "doc")
        store.check("nobody", "read", "doc")
        snap = store.database.metrics.snapshot()
        assert snap['repro_authz_checks_total{decision="allow",path="direct"}'] == 1
        assert snap['repro_authz_checks_total{decision="deny",path="none"}'] == 1
        family = store.database.metrics.get("repro_authz_check_seconds")
        assert family.count == 2

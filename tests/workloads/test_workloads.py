"""Tests for the workload generators and scenario stores."""

import pytest

from repro.core.timestamps import ts
from repro.errors import ReproError
from repro.workloads import (
    ConstantLifetime,
    GeometricLifetime,
    NewsWorkload,
    SensorFleet,
    SessionStore,
    SessionWorkload,
    UniformLifetime,
    WebCache,
    ZipfLifetime,
    figure1_el,
    figure1_pol,
    overlapping_relations,
    random_relation,
    random_stream,
)

import random


class TestLifetimeDistributions:
    def test_constant(self):
        rng = random.Random(0)
        assert all(ConstantLifetime(7).sample(rng) == 7 for _ in range(5))

    def test_uniform_bounds(self):
        rng = random.Random(0)
        samples = [UniformLifetime(3, 9).sample(rng) for _ in range(100)]
        assert all(3 <= s <= 9 for s in samples)
        assert min(samples) == 3 and max(samples) == 9

    def test_geometric_positive(self):
        rng = random.Random(0)
        samples = [GeometricLifetime(5).sample(rng) for _ in range(200)]
        assert all(s >= 1 for s in samples)
        assert 2 < sum(samples) / len(samples) < 10

    def test_zipf_buckets(self):
        rng = random.Random(0)
        samples = [ZipfLifetime(base=2, buckets=5).sample(rng) for _ in range(200)]
        assert set(samples) <= {2, 4, 6, 8, 10}
        # Short lifetimes dominate under Zipf.
        assert samples.count(2) > samples.count(10)

    def test_validation(self):
        with pytest.raises(ReproError):
            ConstantLifetime(0)
        with pytest.raises(ReproError):
            UniformLifetime(5, 3)
        with pytest.raises(ReproError):
            GeometricLifetime(-1)


class TestGenerators:
    def test_random_relation_size_and_determinism(self):
        a = random_relation(["k", "v"], 50, UniformLifetime(1, 20), seed=3)
        b = random_relation(["k", "v"], 50, UniformLifetime(1, 20), seed=3)
        assert len(a) == 50
        assert a.same_content(b)

    def test_random_relation_origin(self):
        rel = random_relation(["k"], 10, ConstantLifetime(5), origin=100, seed=1)
        assert all(texp == ts(105) for _, texp in rel.items())

    def test_random_stream_sorted(self):
        stream = random_stream(["k", "v"], 40, UniformLifetime(2, 9), seed=2)
        arrivals = [t for t, _, _ in stream]
        assert arrivals == sorted(arrivals)
        assert all(expiry > arrival for arrival, _, expiry in stream)

    def test_overlapping_relations_fraction(self):
        left, right = overlapping_relations(
            ["k", "v"], 40, 0.5, UniformLifetime(2, 30), seed=4
        )
        shared = sum(1 for row in left.rows() if row in right)
        assert shared == 20

    def test_overlap_critical_bias_one(self):
        left, right = overlapping_relations(
            ["k", "v"], 30, 1.0, UniformLifetime(2, 30), seed=4, critical_bias=1.0
        )
        for row, left_texp in left.items():
            right_texp = right.expiration_or_none(row)
            assert right_texp is not None
            assert right_texp < left_texp  # every shared tuple is critical

    def test_overlap_critical_bias_zero(self):
        left, right = overlapping_relations(
            ["k", "v"], 30, 1.0, UniformLifetime(2, 30), seed=4, critical_bias=0.0
        )
        for row, left_texp in left.items():
            right_texp = right.expiration_or_none(row)
            assert right_texp is not None
            assert not right_texp < left_texp  # none critical


class TestFigure1Fixtures:
    def test_pol(self):
        pol = figure1_pol()
        assert set(pol.rows()) == {(1, 25), (2, 25), (3, 35)}
        assert pol.expiration_of((2, 25)) == ts(15)

    def test_el(self):
        el = figure1_el()
        assert el.expiration_of((4, 90)) == ts(2)


class TestNewsWorkload:
    def test_build_database(self):
        db = NewsWorkload(users=30, seed=1).build_database()
        assert set(db.table_names()) == {"El", "Pol", "Sport"}
        assert len(db.table("Pol")) > 0

    def test_renewal_stream(self):
        workload = NewsWorkload(users=10, seed=1)
        stream = workload.renewal_stream("Pol", horizon=50)
        assert stream
        times = [t for t, _, _ in stream]
        assert times == sorted(times)


class TestSessionStore:
    def test_expiry_trigger(self):
        store = SessionStore(session_ttl=5)
        store.login(1)
        store.database.advance_to(5)
        assert store.expired_log == [(1, 1)]

    def test_renewal_keeps_alive(self):
        store = SessionStore(session_ttl=5)
        sid = store.login(1)
        for when in range(1, 20):
            store.database.advance_to(when)
            store.touch(sid, 1)
        assert store.is_active(sid)
        assert store.expired_log == []

    def test_replay_workload(self):
        events = SessionWorkload(users=10, horizon=60, seed=2).events()
        assert events
        store = SessionStore(session_ttl=10)
        store.replay(events)
        # Sessions whose users walked away have expired along the way.
        assert store.database.statistics.expirations_processed > 0
        # And zero explicit deletes were ever issued.
        assert store.database.statistics.explicit_deletes == 0


class TestSensorFleet:
    def test_current_readings_one_per_sensor(self):
        fleet = SensorFleet(sensors=9, base_period=4, seed=0)
        fleet.run_until(24)
        readings = fleet.current_readings()
        assert len(readings) == 9
        assert sorted(r[0] for r in readings) == list(range(9))

    def test_readings_expire_without_emission(self):
        fleet = SensorFleet(sensors=3, base_period=4, seed=0)
        fleet.run_until(8)
        fleet.database.advance_to(50)  # sensors stop reporting
        assert fleet.current_readings() == []


class TestWebCache:
    def test_hits_and_misses(self):
        cache = WebCache(urls=40, ttl=15, seed=9)
        stats = cache.run(400)
        assert stats.requests == 400
        assert stats.hits + stats.misses == 400
        assert 0.2 < stats.hit_rate < 0.95

    def test_expired_entries_are_misses(self):
        cache = WebCache(urls=1, ttl=3, seed=0)
        assert cache.request() is False  # cold miss
        assert cache.request() is True  # hit
        cache.database.advance_to(3)
        assert cache.request() is False  # expired -> miss again

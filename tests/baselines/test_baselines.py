"""Tests for the traditional baselines (explicit delete, periodic recompute)."""

import pytest

from repro.baselines import ExplicitDeleteManager, PeriodicRecomputeView
from repro.core.schema import Schema
from repro.engine.database import Database
from repro.workloads.news import PROFILE_SCHEMA, figure1_database


class TestExplicitDeleteManager:
    def test_one_transaction_per_lifetime(self):
        manager = ExplicitDeleteManager("T", Schema(["k", "v"]), reap_interval=1)
        manager.insert((1, "a"), lifetime=5)
        manager.insert((2, "b"), lifetime=8)
        manager.database.advance_to(10)
        manager.reap()
        assert manager.delete_transactions == 2
        assert len(manager.table) == 0

    def test_staleness_between_reaps(self):
        manager = ExplicitDeleteManager("T", Schema(["k", "v"]), reap_interval=10)
        manager.insert((1, "a"), lifetime=3)
        manager.database.advance_to(5)
        # The lifetime elapsed but the reaper has not run: stale data served.
        assert manager.stale_tuples() == 1
        assert set(manager.table.read().rows()) == {(1, "a")}
        manager.database.advance_to(10)
        manager.maybe_reap()
        assert manager.stale_tuples() == 0

    def test_maybe_reap_respects_interval(self):
        manager = ExplicitDeleteManager("T", Schema(["k"]), reap_interval=10)
        manager.insert((1,), lifetime=1)
        manager.database.advance_to(5)
        assert manager.maybe_reap() == 0  # too early
        manager.database.advance_to(10)
        assert manager.maybe_reap() == 1

    def test_engine_comparison_zero_deletes(self):
        """The paper's headline: the expiration engine needs no deletes."""
        db = Database()
        table = db.create_table("T", ["k", "v"])
        table.insert((1, "a"), expires_at=3)
        db.advance_to(10)
        assert db.statistics.explicit_deletes == 0
        assert db.statistics.transactions_committed == 0
        assert len(table) == 0


class TestPeriodicRecomputeView:
    def make_view(self, period):
        db = figure1_database()
        expr = db.table_expr("Pol").project(1).difference(db.table_expr("El").project(1))
        return db, PeriodicRecomputeView(expr, db, period=period)

    def test_refreshes_on_schedule(self):
        db, view = self.make_view(period=5)
        db.advance_to(4)
        view.read()
        assert view.recomputations == 1  # initial only
        db.advance_to(5)
        view.read()
        assert view.recomputations == 2

    def test_stale_between_refreshes(self):
        db, view = self.make_view(period=10)
        db.advance_to(4)  # the difference changed at 3
        assert not view.is_correct_at()

    def test_correct_right_after_refresh(self):
        db, view = self.make_view(period=5)
        db.advance_to(5)
        assert view.is_correct_at()

    def test_wasted_work_on_stable_views(self):
        """Most periodic refreshes recompute an unchanged monotonic view."""
        db = figure1_database()
        expr = db.table_expr("Pol").project(2)
        view = PeriodicRecomputeView(expr, db, period=2)
        for when in range(1, 9):
            db.advance_to(when)
            view.read()
        # Periodic: ~4 recomputations; expiration-aware monotonic view: 0.
        assert view.recomputations >= 4

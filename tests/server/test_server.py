"""The served engine end to end: TCP, loopback, patches, resume, ladders.

The differential harness is the core obligation: at every step of a
scripted workload, a subscribed client's locally-patched view must equal
the server-side view read -- with expiration doing its share of the
maintenance silently on both ends.
"""

from __future__ import annotations

import asyncio
import socket as socket_module
import time

import pytest

from repro.core.timestamps import ts
from repro.engine.config import DatabaseConfig
from repro.engine.expiration_index import RemovalPolicy
from repro.errors import RemoteError, SessionError
from repro.server.client import AsyncSession, NetworkSession, connect
from repro.server.protocol import encode_frame
from repro.server.server import ReproServer


def run(coro):
    """Each test gets a fresh event loop."""
    return asyncio.run(coro)


async def _drain(session: AsyncSession, rounds: int = 3) -> None:
    for _ in range(rounds):
        await session.poll(0.02)


class TestTcpRoundTrip:
    def test_execute_query_and_ping_over_tcp(self):
        async def scenario():
            server = ReproServer()
            host, port = await server.start()
            try:
                session = await AsyncSession.open(host, port)
                await session.execute("CREATE TABLE Pol (uid, deg)")
                await session.execute(
                    "INSERT INTO Pol VALUES (1, 25) EXPIRES AT 10"
                )
                result = await session.query("SELECT deg FROM Pol")
                assert result.rows == [(25,)]
                assert result.columns == ("deg",)
                assert result.items == [((25,), ts(10))]
                assert await session.ping() == ts(0)
                await session.close()
            finally:
                await server.stop()

        run(scenario())

    def test_sync_client_over_tcp(self):
        async def scenario():
            server = ReproServer()
            host, port = await server.start()

            def sync_part():
                session = NetworkSession(host, port)
                session.execute("CREATE TABLE T (k)")
                session.execute("INSERT INTO T VALUES (1) EXPIRES AT 5")
                assert session.query("SELECT k FROM T").rows == [(1,)]
                with pytest.raises(RemoteError) as err:
                    session.query("SELECT k FROM Missing")
                assert err.value.remote_type == "SqlPlanError"
                session.close()

            try:
                await asyncio.to_thread(sync_part)
            finally:
                await server.stop()

        run(scenario())

    def test_connect_url_speaks_to_server(self):
        async def scenario():
            server = ReproServer()
            host, port = await server.start()

            def sync_part():
                with connect(f"repro://{host}:{port}") as session:
                    session.execute("CREATE TABLE T (k)")
                    session.execute("INSERT INTO T VALUES (3) EXPIRES AT 7")
                    assert session.query("SELECT k FROM T").rows == [(3,)]

            try:
                await asyncio.to_thread(sync_part)
            finally:
                await server.stop()

        run(scenario())

    def test_remote_errors_carry_type_and_leave_session_usable(self):
        async def scenario():
            server = ReproServer()
            session = await AsyncSession.over_loopback(server)
            with pytest.raises(RemoteError) as err:
                await session.query("CREATE TABLE T (k)")  # not a query
            assert err.value.remote_type == "SessionError"
            # The refusal happened before execution: no side effects.
            assert not server.db.has_table("T")
            await session.execute("CREATE TABLE T (k)")  # still usable
            assert server.db.has_table("T")
            await session.close()
            await server.stop()

        run(scenario())

    def test_corrupt_frame_drops_the_connection(self):
        async def scenario():
            server = ReproServer()
            host, port = await server.start()

            def sync_part():
                raw = socket_module.create_connection((host, port), timeout=5)
                frame = bytearray(
                    encode_frame({"kind": "hello", "id": 1, "version": 1})
                )
                frame[-1] ^= 0xFF  # corrupt the payload: CRC mismatch
                raw.sendall(bytes(frame))
                raw.settimeout(5)
                assert raw.recv(1024) == b""  # server hung up, no reply
                raw.close()

            try:
                await asyncio.to_thread(sync_part)
            finally:
                await server.stop()

        run(scenario())

    def test_version_mismatch_rejected(self):
        async def scenario():
            server = ReproServer()
            reader, writer = server.open_loopback()
            from repro.server.protocol import read_frame, write_frame

            write_frame(writer, {"kind": "hello", "id": 1, "version": 999})
            await writer.drain()
            reply = await read_frame(reader)
            assert reply["kind"] == "error"
            assert "version" in reply["message"]
            await server.stop()

        run(scenario())


class TestSubscribeDifferential:
    SCRIPT = [
        "INSERT INTO Pol VALUES (1, 25) EXPIRES AT 10",
        "INSERT INTO Pol VALUES (2, 25) EXPIRES AT 15",
        "INSERT INTO Pol VALUES (3, 35) EXPIRES AT 10",
        "INSERT INTO El VALUES (1, 75) EXPIRES AT 5",
        "ADVANCE TO 3",
        "INSERT INTO Pol VALUES (4, 45) EXPIRES AT 20",
        "DELETE FROM Pol WHERE uid = 2",
        "ADVANCE TO 5",
        "INSERT INTO El VALUES (4, 90) EXPIRES AT 18",
        "ADVANCE TO 10",
        "INSERT INTO Pol VALUES (5, 55) EXPIRES AT 30",
        "ADVANCE TO 18",
        "DELETE FROM Pol WHERE uid = 5",
        "ADVANCE TO 30",
    ]

    def test_patched_views_equal_server_reads_at_every_step(self):
        """The headline differential: monotonic and non-monotonic views,
        inserts, explicit deletes, and expiration -- client == server after
        every single statement."""

        async def scenario():
            server = ReproServer()
            session = await AsyncSession.over_loopback(server)
            await session.execute("CREATE TABLE Pol (uid, deg)")
            await session.execute("CREATE TABLE El (uid, deg)")
            await session.execute(
                "CREATE MATERIALIZED VIEW degs AS SELECT deg FROM Pol"
            )
            await session.execute(
                "CREATE MATERIALIZED VIEW diff AS "
                "SELECT uid FROM Pol EXCEPT SELECT uid FROM El"
            )
            subs = {
                "degs": await session.subscribe("degs"),
                "diff": await session.subscribe("diff"),
            }
            for statement in self.SCRIPT:
                await session.execute(statement)
                await _drain(session)
                for name, sub in subs.items():
                    server_rows = sorted(
                        server.db.view(name).read(server.db.clock.now).rows()
                    )
                    assert sub.read() == server_rows, (
                        f"after {statement!r}: {name} client={sub.read()} "
                        f"server={server_rows}"
                    )
                await _drain(session)  # absorb patches from server reads
            assert subs["degs"].patches_applied > 0
            assert server.families["patches"].value > 0
            await session.close()
            await server.stop()

        run(scenario())

    def test_pure_expiration_ships_no_patch(self):
        """The paper's headline saving: a tuple that merely expires needs
        no message at all -- both ends drop it locally."""

        async def scenario():
            server = ReproServer()
            session = await AsyncSession.over_loopback(server)
            await session.execute("CREATE TABLE T (k)")
            await session.execute("INSERT INTO T VALUES (1) EXPIRES AT 5")
            await session.execute(
                "CREATE MATERIALIZED VIEW v AS SELECT k FROM T"
            )
            sub = await session.subscribe("v")
            assert sub.read() == [(1,)]
            patches_before = server.families["patches"].value
            await session.execute("ADVANCE TO 5")
            await _drain(session)
            assert sub.read() == []  # expired client-side, silently
            assert server.families["patches"].value == patches_before
            await session.close()
            await server.stop()

        run(scenario())

    def test_explicit_delete_of_unexpired_tuple_ships_a_remove(self):
        async def scenario():
            server = ReproServer()
            session = await AsyncSession.over_loopback(server)
            await session.execute("CREATE TABLE T (k)")
            await session.execute("INSERT INTO T VALUES (1) EXPIRES AT 50")
            await session.execute(
                "CREATE MATERIALIZED VIEW v AS SELECT k FROM T"
            )
            sub = await session.subscribe("v")
            await session.execute("DELETE FROM T WHERE k = 1")
            await _drain(session)
            assert sub.read() == []
            assert server.families["patch_rows"].labels("remove").value >= 1
            await session.close()
            await server.stop()

        run(scenario())

    def test_unknown_view_subscription_is_a_remote_error(self):
        async def scenario():
            server = ReproServer()
            session = await AsyncSession.over_loopback(server)
            with pytest.raises(RemoteError) as err:
                await session.subscribe("nope")
            assert err.value.remote_type == "CatalogError"
            await session.close()
            await server.stop()

        run(scenario())


class TestReconnectResume:
    def test_resume_replays_the_unexpired_remainder(self):
        async def scenario():
            server = ReproServer(session_ttl=60.0)
            session = await AsyncSession.over_loopback(server)
            await session.execute("CREATE TABLE T (k)")
            await session.execute(
                "CREATE MATERIALIZED VIEW v AS SELECT k FROM T"
            )
            sub = await session.subscribe("v")
            token = session.token
            acks = session._ack_state()
            # Kill the transport without bye: the session must survive.
            session._writer.close()
            await asyncio.sleep(0.05)
            assert token in server.sessions
            assert not server.sessions[token].attached

            # Mutate while detached: patches accumulate as pending.
            driver = await AsyncSession.over_loopback(server)
            await driver.execute("INSERT INTO T VALUES (1) EXPIRES AT 50")
            await driver.execute("INSERT INTO T VALUES (2) EXPIRES AT 60")
            await driver.close()

            resumed = await AsyncSession.over_loopback(
                server, resume=token, acks=acks
            )
            assert resumed.resumed
            assert resumed.token == token
            resumed.subscriptions[sub.sub_id] = sub
            sub._session = resumed
            await _drain(resumed)
            await resumed.query("SELECT k FROM T")  # sync the clock
            assert sub.read() == [(1,), (2,)]
            assert server.families["retransmissions"].value >= 1
            await resumed.close()
            await server.stop()

        run(scenario())

    def test_expired_pending_patches_are_not_retransmitted(self):
        """Expiration-aware retransmission on real transports: a pending
        envelope whose every tuple has expired is dropped at resume and
        counted as avoided traffic."""

        async def scenario():
            server = ReproServer(session_ttl=60.0)
            session = await AsyncSession.over_loopback(server)
            await session.execute("CREATE TABLE T (k)")
            await session.execute(
                "CREATE MATERIALIZED VIEW v AS SELECT k FROM T"
            )
            sub = await session.subscribe("v")
            token = session.token
            acks = session._ack_state()
            session._writer.close()
            await asyncio.sleep(0.05)

            driver = await AsyncSession.over_loopback(server)
            # This patch's only tuple expires at 5 ...
            await driver.execute("INSERT INTO T VALUES (9) EXPIRES AT 5")
            # ... and by resume time the clock is past it.
            await driver.execute("ADVANCE TO 10")
            await driver.close()
            assert len(server.sessions[token].subscriptions[sub.sub_id].pending) == 1

            avoided_before = server.families["avoided"].value
            resumed = await AsyncSession.over_loopback(
                server, resume=token, acks=acks
            )
            resumed.subscriptions[sub.sub_id] = sub
            sub._session = resumed
            await _drain(resumed)
            await resumed.query("SELECT k FROM T")
            assert sub.read() == []  # never told; never needed to be
            assert server.families["avoided"].value == avoided_before + 1
            assert not server.sessions[token].subscriptions[sub.sub_id].pending
            await resumed.close()
            await server.stop()

        run(scenario())

    def test_resume_of_unknown_token_starts_fresh(self):
        async def scenario():
            server = ReproServer()
            session = await AsyncSession.over_loopback(
                server, resume="s999999", acks={}
            )
            assert not session.resumed
            assert session.token != "s999999"
            await session.close()
            await server.stop()

        run(scenario())

    def test_bye_closes_the_session_for_good(self):
        async def scenario():
            server = ReproServer()
            session = await AsyncSession.over_loopback(server)
            token = session.token
            await session.close()
            await asyncio.sleep(0.05)
            assert token not in server.sessions
            await server.stop()

        run(scenario())


class TestRetransmitSweep:
    def test_unacked_patch_is_retransmitted_and_deduplicated(self):
        async def scenario():
            server = ReproServer()
            session = await AsyncSession.over_loopback(server)
            await session.execute("CREATE TABLE T (k)")
            await session.execute(
                "CREATE MATERIALIZED VIEW v AS SELECT k FROM T"
            )
            sub = await session.subscribe("v")
            await session.execute("INSERT INTO T VALUES (1) EXPIRES AT 50")
            await _drain(session)  # patch applied and acked...
            server_sub = server.sessions[session.token].subscriptions[sub.sub_id]
            # ...but pretend the ack never made it: re-arm the envelope.
            payload = dict(
                kind="patch", sub=sub.sub_id, epoch=server_sub.epoch, seq=1,
                upserts=[[[1], 50]], removes=[], now=0, _expires=50,
            )
            from repro.server.session import PendingPatch

            server_sub.pending[1] = PendingPatch(1, payload, ts(50), 0.0)
            resent = server.retransmit_now(time.monotonic() + 1000.0)
            assert resent == 1
            await _drain(session)
            assert sub.duplicates_dropped >= 1  # seq 1 was already applied
            assert sub.read() == [(1,)]  # state unchanged by the duplicate
            assert not server_sub.pending  # the re-ack retired it
            await session.close()
            await server.stop()

        run(scenario())


class TestBackpressure:
    def test_slow_consumer_degrades_to_invalidate_and_refetch(self):
        async def scenario():
            # Tiny ladder: 3 outstanding envelopes is already too many.
            server = ReproServer(max_outbox=3)
            session = await AsyncSession.over_loopback(server)
            await session.execute("CREATE TABLE T (k)")
            await session.execute(
                "CREATE MATERIALIZED VIEW v AS SELECT k FROM T"
            )
            sub = await session.subscribe("v")
            # The subscriber goes completely silent (no reads, so no acks)
            # while a *different* connection keeps mutating: pending
            # envelopes pile up until the ladder trips.
            driver = await AsyncSession.over_loopback(server)
            for i in range(8):
                await driver.execute(
                    f"INSERT INTO T VALUES ({i}) EXPIRES AT 100"
                )
            await driver.close()
            assert server.families["degrades"].value >= 1
            await _drain(session)
            assert sub.degraded
            # An async wire subscription will not refetch implicitly:
            with pytest.raises(SessionError, match="refetch"):
                sub.read()
            await session.refetch(sub)
            assert not sub.degraded
            await session.query("SELECT k FROM T")
            assert sub.read() == sorted(
                server.db.view("v").read(server.db.clock.now).rows()
            )
            await session.close()
            await server.stop()

        run(scenario())

    def test_sync_client_refetches_transparently(self):
        async def scenario():
            server = ReproServer(max_outbox=3)
            host, port = await server.start()

            def sync_part():
                session = NetworkSession(host, port)
                session.execute("CREATE TABLE T (k)")
                session.execute(
                    "CREATE MATERIALIZED VIEW v AS SELECT k FROM T"
                )
                sub = session.subscribe("v")
                driver = NetworkSession(host, port)
                for i in range(8):  # silent subscriber: the ladder trips
                    driver.execute(
                        f"INSERT INTO T VALUES ({i}) EXPIRES AT 100"
                    )
                driver.close()
                session.poll(0.1)
                assert sub.degraded
                rows = sub.read()  # transparent refetch on the sync path
                assert rows == [(i,) for i in range(8)]
                assert not sub.degraded
                session.close()

            try:
                await asyncio.to_thread(sync_part)
            finally:
                await server.stop()

        run(scenario())


class TestServedSnapshotIsolation:
    def test_lazy_retained_tuples_never_served_over_the_wire(self):
        """Session floor semantics over the wire: LAZY removal keeps dead
        tuples physically present server-side; no framed result may carry
        one at or below the session's floor."""

        async def scenario():
            server = ReproServer(
                config=DatabaseConfig(
                    default_removal_policy=RemovalPolicy.LAZY
                )
            )
            session = await AsyncSession.over_loopback(server)
            await session.execute("CREATE TABLE T (k)")
            await session.execute("INSERT INTO T VALUES (1) EXPIRES AT 5")
            await session.execute("INSERT INTO T VALUES (2) EXPIRES AT 50")
            await session.execute("ADVANCE TO 5")
            assert len(server.db.table("T").relation) == 2  # physically kept
            result = await session.query("SELECT k FROM T")
            assert result.rows == [(2,)]
            for row, texp in result.items:
                assert texp > session.floor
            assert session.floor == ts(5)
            await session.close()
            await server.stop()

        run(scenario())

    def test_floor_is_monotone_across_resume(self):
        async def scenario():
            server = ReproServer(session_ttl=60.0)
            session = await AsyncSession.over_loopback(server)
            await session.execute("CREATE TABLE T (k)")
            await session.execute("ADVANCE TO 7")
            token = session.token
            session._writer.close()
            await asyncio.sleep(0.05)
            resumed = await AsyncSession.over_loopback(
                server, resume=token, acks={}
            )
            assert resumed.resumed
            assert server.sessions[token].floor == ts(7)
            await resumed.close()
            await server.stop()

        run(scenario())


class TestServerLifecycle:
    def test_stop_is_idempotent_and_closes_owned_db(self):
        async def scenario():
            server = ReproServer()
            await server.start()
            session = await AsyncSession.over_loopback(server)
            await session.execute("CREATE TABLE T (k)")
            await server.stop()
            await server.stop()
            assert server.db.closed  # owned database closed with it

        run(scenario())

    def test_borrowed_db_survives_stop(self):
        async def scenario():
            from repro.engine.database import Database

            db = Database()
            server = ReproServer(db)
            session = await AsyncSession.over_loopback(server)
            await session.execute("CREATE TABLE T (k)")
            await server.stop()
            assert not db.closed
            assert db.has_table("T")
            db.close()

        run(scenario())

    def test_view_dropped_under_subscription_invalidates(self):
        async def scenario():
            server = ReproServer()
            session = await AsyncSession.over_loopback(server)
            await session.execute("CREATE TABLE T (k)")
            await session.execute(
                "CREATE MATERIALIZED VIEW v AS SELECT k FROM T"
            )
            sub = await session.subscribe("v")
            await session.execute("DROP VIEW v")
            await _drain(session)
            assert sub.degraded
            await session.close()
            await server.stop()

        run(scenario())

"""Wire framing: round-trips, torn frames, and the stream failure contract.

The framing is the WAL's (length + CRC32 + compact JSON), but the failure
contract differs: a WAL reader truncates a torn tail; a stream reader that
loses framing sync must drop the connection, so every corruption here is a
:class:`~repro.errors.WireProtocolError`.
"""

from __future__ import annotations

import asyncio
import struct
import zlib

import pytest

from repro.core.timestamps import INFINITY, ts
from repro.errors import WireProtocolError
from repro.server.protocol import (
    MAX_FRAME,
    FrameDecoder,
    decode_exp,
    decode_items,
    encode_exp,
    encode_frame,
    encode_items,
    read_frame,
    write_frame,
)

_HEADER = struct.Struct(">II")


class TestEncoding:
    def test_frame_round_trip(self):
        payload = {"kind": "sql", "id": 7, "text": "SELECT 1"}
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(payload)) == [payload]

    def test_many_frames_in_one_chunk(self):
        frames = [{"kind": "ping", "id": i} for i in range(10)]
        blob = b"".join(encode_frame(f) for f in frames)
        assert FrameDecoder().feed(blob) == frames

    def test_exp_encoding_none_is_infinity(self):
        assert encode_exp(INFINITY) is None
        assert decode_exp(None) == INFINITY
        assert decode_exp(encode_exp(ts(5))) == ts(5)

    def test_items_round_trip(self):
        items = [((1, "a"), ts(10)), ((2, "b"), INFINITY)]
        assert decode_items(encode_items(items)) == items

    def test_oversized_payload_refused_at_encode(self):
        with pytest.raises(WireProtocolError):
            encode_frame({"kind": "x", "blob": "a" * (MAX_FRAME + 1)})


class TestTornFrames:
    def test_torn_frame_buffers_until_complete(self):
        payload = {"kind": "result", "re": 3, "rows": [[1, 2]]}
        frame = encode_frame(payload)
        decoder = FrameDecoder()
        # Drip-feed byte by byte: nothing decodes until the last byte.
        for byte in frame[:-1]:
            assert decoder.feed(bytes([byte])) == []
        assert decoder.buffered == len(frame) - 1
        assert decoder.feed(frame[-1:]) == [payload]
        assert decoder.buffered == 0

    def test_split_across_frame_boundary(self):
        a = encode_frame({"kind": "ping", "id": 1})
        b = encode_frame({"kind": "ping", "id": 2})
        blob = a + b
        decoder = FrameDecoder()
        first = decoder.feed(blob[: len(a) + 3])
        assert first == [{"kind": "ping", "id": 1}]
        assert decoder.feed(blob[len(a) + 3:]) == [{"kind": "ping", "id": 2}]


class TestCorruption:
    def test_crc_mismatch_is_connection_fatal(self):
        frame = bytearray(encode_frame({"kind": "ping", "id": 1}))
        frame[-1] ^= 0xFF  # flip a payload bit; the CRC no longer matches
        with pytest.raises(WireProtocolError, match="CRC"):
            FrameDecoder().feed(bytes(frame))

    def test_absurd_length_is_connection_fatal(self):
        header = _HEADER.pack(MAX_FRAME + 1, 0)
        with pytest.raises(WireProtocolError, match="MAX_FRAME"):
            FrameDecoder().feed(header)

    def test_non_json_payload_is_connection_fatal(self):
        body = b"\xff\xfenot json"
        frame = _HEADER.pack(len(body), zlib.crc32(body)) + body
        with pytest.raises(WireProtocolError, match="JSON"):
            FrameDecoder().feed(frame)

    def test_non_object_payload_is_connection_fatal(self):
        body = b"[1,2,3]"
        frame = _HEADER.pack(len(body), zlib.crc32(body)) + body
        with pytest.raises(WireProtocolError, match="message object"):
            FrameDecoder().feed(frame)

    def test_object_without_kind_is_connection_fatal(self):
        body = b'{"id":1}'
        frame = _HEADER.pack(len(body), zlib.crc32(body)) + body
        with pytest.raises(WireProtocolError, match="message object"):
            FrameDecoder().feed(frame)


class TestAsyncHelpers:
    def _reader_with(self, data: bytes, eof: bool = True) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if eof:
            reader.feed_eof()
        return reader

    def test_read_frame_round_trip(self):
        async def scenario():
            payload = {"kind": "sql", "id": 1, "text": "SELECT 1"}
            reader = self._reader_with(encode_frame(payload))
            assert await read_frame(reader) == payload
            assert await read_frame(reader) is None  # clean EOF

        asyncio.run(scenario())

    def test_eof_mid_header_raises(self):
        async def scenario():
            reader = self._reader_with(encode_frame({"kind": "ping"})[:3])
            with pytest.raises(WireProtocolError, match="mid-header"):
                await read_frame(reader)

        asyncio.run(scenario())

    def test_eof_mid_body_raises(self):
        async def scenario():
            frame = encode_frame({"kind": "ping", "id": 9})
            reader = self._reader_with(frame[:-2])
            with pytest.raises(WireProtocolError, match="mid-frame"):
                await read_frame(reader)

        asyncio.run(scenario())

    def test_write_frame_reports_size(self):
        async def scenario():
            reader = asyncio.StreamReader()

            class Sink:
                def write(self, data):
                    reader.feed_data(data)

            payload = {"kind": "pong", "re": 4}
            size = write_frame(Sink(), payload)
            assert size == len(encode_frame(payload))
            reader.feed_eof()
            assert await read_frame(reader) == payload

        asyncio.run(scenario())

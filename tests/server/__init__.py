"""Tests for the network server, sessions, and the client surface."""

"""The session surface in-process: connect(), floors, config, deprecation.

Everything here runs without a socket; the point of the API redesign is
that this exact code works unchanged against ``repro://host:port``.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.core.timestamps import ts
from repro.engine.config import DatabaseConfig
from repro.engine.database import Database
from repro.engine.expiration_index import RemovalPolicy
from repro.errors import SessionError, WalError
from repro.server.client import LocalSession, connect


class TestConnect:
    def test_default_owns_a_fresh_database(self):
        with connect() as session:
            session.execute("CREATE TABLE T (k)")
            session.execute("INSERT INTO T VALUES (1) EXPIRES AT 10")
            assert session.query("SELECT k FROM T").rows == [(1,)]
            db = session.db
        assert db.closed  # owned: closed with the session

    def test_memory_target_is_the_default(self):
        with connect(":memory:") as session:
            assert session.db.wal is None

    def test_wrapping_a_database_borrows_it(self):
        db = Database()
        with connect(db) as session:
            session.execute("CREATE TABLE T (k)")
        assert not db.closed  # borrowed: the caller keeps ownership
        assert db.has_table("T")
        db.close()

    def test_database_session_shortcut(self):
        db = Database()
        session = db.session()
        assert isinstance(session, LocalSession)
        session.execute("CREATE TABLE T (k)")
        session.close()
        assert not db.closed

    def test_durable_path_open_and_recover(self, tmp_path):
        root = tmp_path / "data"
        root.mkdir()
        with connect(root) as session:
            session.execute("CREATE TABLE T (k)")
            session.execute("INSERT INTO T VALUES (7) EXPIRES AT 100")
        # Second connect must crash-recover the same state, not collide.
        with connect(root) as session:
            assert session.query("SELECT k FROM T").rows == [(7,)]
        # A fresh Database on the same directory still refuses (recovery
        # stays explicit everywhere except connect()).
        with pytest.raises(WalError):
            Database(wal_dir=root)

    def test_malformed_url_rejected(self):
        with pytest.raises(SessionError, match="repro://"):
            connect("repro://nonsense")

    def test_result_is_iterable_and_sized(self):
        with connect() as session:
            session.execute("CREATE TABLE T (k)")
            session.execute("INSERT INTO T VALUES (1), (2) EXPIRES AT 9")
            result = session.query("SELECT k FROM T")
            assert len(result) == 2
            assert sorted(result) == [(1,), (2,)]

    def test_query_refuses_ddl_before_executing(self):
        with connect() as session:
            with pytest.raises(SessionError, match="row-producing"):
                session.query("CREATE TABLE T (k)")
            # Crucially: the refusal happened before execution.
            assert not session.db.has_table("T")

    def test_closed_session_refuses_work(self):
        session = connect()
        session.close()
        session.close()  # idempotent
        with pytest.raises(SessionError, match="closed"):
            session.execute("SELECT 1")


class TestFloorSemantics:
    def test_floor_ratchets_forward(self):
        with connect() as session:
            assert session.floor == ts(0)
            session.execute("CREATE TABLE T (k)")
            session.execute("ADVANCE TO 5")
            assert session.floor == ts(5)
            session.execute("ADVANCE TO 9")
            assert session.floor == ts(9)

    def test_session_never_travels_back_in_time(self):
        db = Database()
        session = db.session()
        db.advance_to(10)
        session.execute("SELECT 1 FROM DUAL" if False else "SHOW TABLES")
        assert session.floor == ts(10)
        # A second session on a *rewound* engine is impossible (clocks are
        # monotone), so simulate the only reachable case: a session whose
        # floor is ahead of the engine it is pointed at.
        fresh = Database()
        stale = fresh.session()
        stale.floor = ts(99)
        with pytest.raises(SessionError, match="travel"):
            stale.execute("SHOW TABLES")

    def test_lazy_snapshot_isolation(self):
        """A reader at clock floor τ never sees tuples expiring ≤ τ, even
        when LAZY removal retains them physically."""
        config = DatabaseConfig(default_removal_policy=RemovalPolicy.LAZY)
        with connect(config=config) as session:
            session.execute("CREATE TABLE T (k)")
            session.execute("INSERT INTO T VALUES (1) EXPIRES AT 5")
            session.execute("INSERT INTO T VALUES (2) EXPIRES AT 50")
            session.execute("ADVANCE TO 5")
            # Physically the expired tuple is still there (LAZY)...
            table = session.db.table("T")
            assert len(table.relation) == 2
            # ...but no read at the session's floor can surface it.
            assert session.query("SELECT k FROM T").rows == [(2,)]
            for row, texp in session.query("SELECT k FROM T").items:
                assert texp > session.floor


class TestLocalSubscription:
    def test_subscription_tracks_view_reads_exactly(self):
        with connect() as session:
            session.execute("CREATE TABLE Pol (uid, deg)")
            session.execute("INSERT INTO Pol VALUES (1, 25) EXPIRES AT 10")
            session.execute("INSERT INTO Pol VALUES (2, 35) EXPIRES AT 20")
            session.execute(
                "CREATE MATERIALIZED VIEW degs AS SELECT deg FROM Pol"
            )
            sub = session.subscribe("degs")
            view = session.db.view("degs")
            for advance in (None, 5, 10, 15, 20):
                if advance is not None:
                    session.execute(f"ADVANCE TO {advance}")
                assert sub.read() == sorted(view.read().rows())
            sub.close()
            with pytest.raises(SessionError, match="closed"):
                sub.read()

    def test_subscription_sees_inserts(self):
        with connect() as session:
            session.execute("CREATE TABLE T (k)")
            session.execute("CREATE MATERIALIZED VIEW v AS SELECT k FROM T")
            sub = session.subscribe("v")
            assert sub.read() == []
            session.execute("INSERT INTO T VALUES (3) EXPIRES AT 8")
            assert sub.read() == [(3,)]


class TestDatabaseConfig:
    def test_config_object_replaces_kwarg_soup(self):
        config = DatabaseConfig(
            start_time=3,
            engine="interpreted",
            plan_cache_capacity=7,
            check_invariants=True,
        )
        db = Database(config=config)
        assert db.clock.now == ts(3)
        assert db.engine == "interpreted"
        assert db.plan_cache.capacity == 7
        assert db.config is config
        db.close()

    def test_kwargs_override_config(self):
        config = DatabaseConfig(engine="interpreted", start_time=2)
        db = Database(config=config, engine="compiled")
        assert db.engine == "compiled"
        assert db.clock.now == ts(2)  # untouched fields come from config
        assert db.config.engine == "compiled"  # the merged view
        db.close()

    def test_plain_kwargs_still_work(self):
        db = Database(start_time=5, engine="interpreted")
        assert db.clock.now == ts(5)
        assert db.config.start_time == 5
        db.close()

    def test_config_is_immutable(self):
        config = DatabaseConfig()
        with pytest.raises(AttributeError):
            config.engine = "interpreted"

    def test_connect_threads_config_through(self):
        config = DatabaseConfig(start_time=4)
        with connect(config=config) as session:
            assert session.db.clock.now == ts(4)


class TestSqlDeprecation:
    def test_database_sql_warns_once_per_process(self):
        import repro.engine.database as mod

        db = Database()
        db.create_table("T", ["k"])
        old = mod._sql_deprecation_warned
        mod._sql_deprecation_warned = False
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                db.sql("SELECT k FROM T")
                db.sql("SELECT k FROM T")
            relevant = [
                w for w in caught
                if issubclass(w.category, DeprecationWarning)
                and "repro.connect" in str(w.message)
            ]
            assert len(relevant) == 1  # once per process, not per call
        finally:
            mod._sql_deprecation_warned = old
        db.close()

    def test_deprecated_path_still_works(self):
        db = Database()
        db.create_table("T", ["k"])
        db.table("T").insert((1,), expires_at=10)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert db.sql("SELECT k FROM T").rows == [(1,)]
        db.close()


class TestEvaluateSurface:
    def test_evaluate_cached_keyword(self):
        db = Database()
        t = db.create_table("T", ["k"])
        t.insert((1,), expires_at=10)
        expr = db.table_expr("T")
        db.evaluate(expr)
        hits_before = db.plan_cache.stats.hits
        db.evaluate(expr)
        assert db.plan_cache.stats.hits == hits_before + 1
        # cached=False bypasses result reuse but still returns fresh rows.
        result = db.evaluate(expr, cached=False)
        assert sorted(result.relation.rows()) == [(1,)]
        db.close()

    def test_module_evaluate_engine_keyword(self, catalog):
        from repro.core.algebra import evaluate
        from repro.core.algebra.expressions import BaseRef
        from repro.errors import EvaluationError

        expr = BaseRef("Pol")
        interpreted = evaluate(expr, catalog, tau=0, engine="interpreted")
        compiled = evaluate(expr, catalog, tau=0, engine="compiled")
        assert sorted(interpreted.relation.rows()) == sorted(
            compiled.relation.rows()
        )
        with pytest.raises(EvaluationError, match="engine"):
            evaluate(expr, catalog, tau=0, engine="quantum")


class TestCloseIdempotency:
    def test_close_twice_is_safe(self):
        db = Database()
        db.create_table("T", ["k"])
        db.close()
        db.close()
        assert db.closed

    def test_close_with_wal_twice_is_safe(self, tmp_path):
        db = Database(wal_dir=tmp_path / "w")
        db.create_table("T", ["k"])
        db.table("T").insert((1,), expires_at=10)
        db.close()
        db.close()
        assert db.wal is not None and db.wal.closed

    def test_close_is_safe_from_connection_teardown_path(self):
        """The server tears sessions down on connection loss; the owned
        database must tolerate close() arriving from both paths."""
        session = connect()
        db = session.db
        db.close()  # engine closed first (e.g. server shutdown)
        session.close()  # then the session's own teardown
        assert db.closed

"""The exception hierarchy: everything catches as ReproError."""

import inspect

import pytest

import repro.errors as errors_module
from repro.errors import (
    AlgebraError,
    CatalogError,
    ConstraintViolation,
    EngineError,
    ReproError,
    SchemaError,
    SqlError,
    SqlLexError,
    SqlParseError,
    StaleViewError,
    TimeError,
    UnionCompatibilityError,
    UnsupportedSqlError,
    ViewError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for name, obj in inspect.getmembers(errors_module, inspect.isclass):
            if issubclass(obj, BaseException):
                assert issubclass(obj, ReproError), name

    def test_specific_parentage(self):
        assert issubclass(UnionCompatibilityError, SchemaError)
        assert issubclass(CatalogError, EngineError)
        assert issubclass(ConstraintViolation, EngineError)
        assert issubclass(StaleViewError, ViewError)
        assert issubclass(SqlParseError, SqlError)
        assert issubclass(SqlLexError, SqlError)
        assert issubclass(UnsupportedSqlError, SqlError)

    def test_lex_error_carries_position(self):
        error = SqlLexError("bad", 17)
        assert error.position == 17
        assert "17" in str(error)

    def test_one_catch_for_the_whole_library(self):
        from repro.engine.database import Database

        db = Database()
        db.advance_to(5)
        for bad in (
            lambda: db.table("missing"),
            lambda: db.sql("WOBBLE"),
            lambda: db.sql("SELECT nope FROM missing"),
            lambda: db.advance_to(2),  # clock moving backwards
        ):
            with pytest.raises(ReproError):
                bad()

"""Sanity checks on the public API surface and module doctests."""

import doctest
import importlib

import pytest

import repro


PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.timestamps",
    "repro.core.intervals",
    "repro.core.schema",
    "repro.core.tuples",
    "repro.core.relation",
    "repro.core.aggregates",
    "repro.core.approximate",
    "repro.core.monotonicity",
    "repro.core.qos",
    "repro.core.validity",
    "repro.core.patching",
    "repro.core.rewriter",
    "repro.core.algebra",
    "repro.core.algebra.predicates",
    "repro.core.algebra.expressions",
    "repro.core.algebra.evaluator",
    "repro.core.algebra.serde",
    "repro.engine",
    "repro.engine.clock",
    "repro.engine.database",
    "repro.engine.expiration_index",
    "repro.engine.maintenance",
    "repro.engine.persistence",
    "repro.engine.table",
    "repro.engine.views",
    "repro.sql",
    "repro.cli",
    "repro.obs",
    "repro.obs.registry",
    "repro.obs.tracing",
    "repro.distributed",
    "repro.workloads",
    "repro.baselines",
]

DOCTEST_MODULES = [
    "repro.core.timestamps",
    "repro.core.intervals",
    "repro.core.schema",
    "repro.core.tuples",
    "repro.core.relation",
    "repro.core.patching",
    "repro.core.algebra.evaluator",
    "repro.core.algebra.serde",
    "repro.engine.database",
    "repro.sql",
    "repro.workloads.authz",
    "repro.workloads.sessions",
    "repro.workloads.streaming",
    "repro.obs.registry",
    "repro.obs.tracing",
]


class TestImports:
    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_importable(self, name):
        importlib.import_module(name)

    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        for module_name in PUBLIC_MODULES:
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name}"


class TestDoctests:
    @pytest.mark.parametrize("name", DOCTEST_MODULES)
    def test_module_doctests(self, name):
        module = importlib.import_module(name)
        failures, _ = doctest.testmod(module, verbose=False)
        assert failures == 0


class TestQuickstartFlow:
    def test_readme_flow(self):
        """The README quickstart, kept honest by CI."""
        from repro import Database

        db = Database()
        pol = db.create_table("Pol", ["uid", "deg"])
        pol.insert((1, 25), expires_at=10)
        pol.insert((2, 25), expires_at=15)
        pol.insert((3, 35), expires_at=10)

        view = db.materialise("interests", db.table_expr("Pol").project(2))
        assert sorted(view.read().rows()) == [(25,), (35,)]
        db.advance_to(10)
        assert sorted(view.read().rows()) == [(25,)]
        assert view.recomputations == 0

"""Tests for the three physical difference implementations (§3.4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.difference_algorithms import (
    ALGORITHMS,
    difference_with_patches,
    hash_difference,
    nested_loop_difference,
    sort_merge_difference,
)
from repro.core.patching import DifferencePatcher, compute_difference_with_patches
from repro.core.relation import relation_from_rows
from repro.core.timestamps import ts
from repro.errors import AlgebraError

values = st.integers(min_value=0, max_value=4)
texps = st.one_of(st.integers(min_value=1, max_value=15), st.none())


def relations(max_size=8):
    row = st.tuples(values, values)
    return st.lists(st.tuples(row, texps), max_size=max_size).map(
        lambda data: relation_from_rows(["a", "b"], data)
    )


class TestAgreement:
    @settings(max_examples=120, deadline=None)
    @given(left=relations(), right=relations(), tau=st.integers(0, 8))
    def test_all_three_agree(self, left, right, tau):
        results = {
            name: algorithm(left, right, tau)
            for name, algorithm in ALGORITHMS.items()
        }
        baseline_rel, baseline_patches = results["hash"]
        for name, (relation, patches) in results.items():
            assert relation.same_content(baseline_rel), name
            assert patches == baseline_patches, name

    @settings(max_examples=60, deadline=None)
    @given(left=relations(), right=relations())
    def test_matches_the_patching_module(self, left, right):
        relation, patches = hash_difference(left, right, 0)
        reference_rel, patcher = compute_difference_with_patches(left, right, tau=0)
        assert relation.same_content(reference_rel)
        # Same patch multiset as the reference patcher holds.
        drained = []
        while patcher.peek_due() is not None:
            drained.extend(patcher.due_patches(patcher.peek_due()))
        assert sorted(patches, key=repr) == sorted(drained, key=repr)

    @settings(max_examples=60, deadline=None)
    @given(left=relations(), right=relations(),
           times=st.lists(st.integers(0, 20), min_size=1, max_size=5))
    def test_patches_reconstruct_the_difference_over_time(self, left, right, times):
        """Theorem 3 works with any executor's patch list."""
        relation, patches = sort_merge_difference(left, right, 0)
        patcher = DifferencePatcher(list(patches))
        state = relation.copy()
        for when in sorted(times):
            patcher.apply_to(state, when)
            visible_left = left.exp_at(when)
            visible_right = right.exp_at(when)
            truth = {
                row
                for row in visible_left.rows()
                if visible_right.expiration_or_none(row) is None
            }
            assert set(state.exp_at(when).rows()) == truth


class TestBasics:
    def test_figure3(self, pol, el):
        pol1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in pol.items()])
        el1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in el.items()])
        for name in ALGORITHMS:
            relation, patches = difference_with_patches(pol1, el1, 0, algorithm=name)
            assert set(relation.rows()) == {(3,)}, name
            assert [(p.row, int(p.due), int(p.expires_at)) for p in patches] == [
                ((2,), 3, 15),
                ((1,), 5, 10),
            ], name

    def test_patches_in_due_order(self):
        left = relation_from_rows(["a"], [((1,), 30), ((2,), 30), ((3,), 30)])
        right = relation_from_rows(["a"], [((1,), 9), ((2,), 3), ((3,), 6)])
        for name in ALGORITHMS:
            _, patches = difference_with_patches(left, right, 0, algorithm=name)
            dues = [int(p.due) for p in patches]
            assert dues == sorted(dues), name

    def test_unknown_algorithm(self):
        left = relation_from_rows(["a"], [])
        with pytest.raises(AlgebraError):
            difference_with_patches(left, left, 0, algorithm="quantum")

    def test_respects_tau(self):
        left = relation_from_rows(["a"], [((1,), 10)])
        right = relation_from_rows(["a"], [((1,), 5)])
        for name in ALGORITHMS:
            relation, patches = difference_with_patches(left, right, 6, algorithm=name)
            # At τ=6 the match has already expired: tuple present, no patch.
            assert set(relation.rows()) == {(1,)}, name
            assert patches == [], name

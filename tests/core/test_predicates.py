"""Tests for the predicate DSL."""

import pytest

from repro.core.algebra.predicates import (
    And,
    Attribute,
    Comparison,
    Constant,
    Not,
    Or,
    TruePredicate,
    col,
    val,
)
from repro.core.schema import Schema
from repro.errors import PredicateError


class TestOperands:
    def test_col_positional(self):
        assert col(1).evaluate((7, 8)) == 7

    def test_col_out_of_range(self):
        with pytest.raises(PredicateError):
            col(3).evaluate((7, 8))

    def test_col_zero_rejected(self):
        with pytest.raises(PredicateError):
            col(0)

    def test_named_col_needs_resolution(self):
        with pytest.raises(PredicateError):
            col("deg").evaluate((7, 8))
        resolved = col("deg").resolve(Schema(["uid", "deg"]))
        assert resolved.evaluate((7, 8)) == 8

    def test_val(self):
        assert val(42).evaluate((1,)) == 42

    def test_shifted(self):
        assert col(2).shifted(3).ref == 5
        with pytest.raises(PredicateError):
            col("name").shifted(1)

    def test_immutability(self):
        with pytest.raises(AttributeError):
            col(1).ref = 2


class TestComparison:
    def test_equality_form(self):
        p = col(1) == col(2)
        assert isinstance(p, Comparison)
        assert p.matches((5, 5))
        assert not p.matches((5, 6))

    def test_constant_comparison(self):
        p = col(2) > 50
        assert p.matches((0, 60))
        assert not p.matches((0, 50))

    def test_all_operators(self):
        row = (5,)
        assert (col(1) == 5).matches(row)
        assert (col(1) != 4).matches(row)
        assert (col(1) < 6).matches(row)
        assert (col(1) <= 5).matches(row)
        assert (col(1) > 4).matches(row)
        assert (col(1) >= 5).matches(row)

    def test_correlated_flags(self):
        assert (col(1) == col(2)).is_correlated
        assert (col(1) == val(3)).is_uncorrelated
        assert not (col(1) == val(3)).is_correlated

    def test_paper_form(self):
        assert (col(1) == col(2)).is_paper_form()
        assert not (col(1) < col(2)).is_paper_form()

    def test_negate(self):
        assert (col(1) == 5).negate().matches((6,))
        assert not (col(1) <= 5).negate().matches((5,))

    def test_no_truth_value(self):
        with pytest.raises(PredicateError):
            bool(col(1) == col(2))

    def test_bad_operator_rejected(self):
        with pytest.raises(PredicateError):
            Comparison(col(1), "~", col(2))


class TestConnectives:
    def test_and(self):
        p = (col(1) == 1) & (col(2) == 2)
        assert p.matches((1, 2))
        assert not p.matches((1, 3))

    def test_or(self):
        p = (col(1) == 1) | (col(1) == 2)
        assert p.matches((2,))
        assert not p.matches((3,))

    def test_not(self):
        p = ~(col(1) == 1)
        assert p.matches((2,))
        assert not p.is_paper_form()

    def test_and_flattens(self):
        p = And((col(1) == 1) & (col(2) == 2), col(3) == 3)
        assert len(p.children) == 3

    def test_or_flattens(self):
        p = Or((col(1) == 1) | (col(1) == 2), col(1) == 3)
        assert len(p.children) == 3

    def test_connectives_need_two_children(self):
        with pytest.raises(PredicateError):
            And(col(1) == 1)

    def test_de_morgan_negate(self):
        p = (col(1) == 1) & (col(2) == 2)
        negated = p.negate()
        assert isinstance(negated, Or)
        assert negated.matches((1, 3))
        assert not negated.matches((1, 2))

    def test_paper_form_composition(self):
        good = (col(1) == 1) & ((col(2) == 2) | (col(2) == 3))
        assert good.is_paper_form()
        bad = (col(1) == 1) & (col(2) > 3)
        assert not bad.is_paper_form()

    def test_attributes_iteration(self):
        p = (col(1) == col(2)) & (col("x") == 5)
        refs = sorted(str(a.ref) for a in p.attributes())
        assert refs == ["1", "2", "x"]

    def test_resolution_recursive(self):
        schema = Schema(["a", "b"])
        p = ((col("a") == 1) | (col("b") == 2)).resolve(schema)
        assert p.matches((1, 99))
        assert p.matches((0, 2))


class TestTruePredicate:
    def test_always_true(self):
        assert TruePredicate().matches((1, 2, 3))
        assert TruePredicate().is_paper_form()

    def test_negation_unrepresentable(self):
        with pytest.raises(PredicateError):
            TruePredicate().negate()

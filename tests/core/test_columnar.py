"""Tests for the columnar relation layout (core/columnar.py).

:class:`ColumnarRelation` must be a drop-in twin of the row engine's
:class:`Relation` -- same max-merge duplicate policy, same ``exp_at``,
same sweep semantics -- stored as parallel attribute arrays plus a raw
``int64`` expiration column.  These tests pin the raw-tick encoding, the
swap-remove density invariant, the trusted bulk paths recovery uses, and
the :class:`ColumnBatch` bridge the compiled kernels consume, over both
backends where numpy is importable.
"""

import os
from array import array

import pytest

from repro.core.columnar import (
    RAW_INFINITY,
    ColumnarRelation,
    from_raw,
    numpy_available,
    resolve_backend,
    to_raw,
)
from repro.core.relation import Relation
from repro.core.timestamps import INFINITY, Timestamp, ts
from repro.errors import RelationError, TimeError

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestRawEncoding:
    def test_round_trip_finite(self):
        for value in (0, 1, 17, 10**12):
            assert from_raw(to_raw(ts(value))).value == value

    def test_infinity_sentinel(self):
        assert to_raw(INFINITY) == RAW_INFINITY
        assert from_raw(RAW_INFINITY) is INFINITY

    def test_overflow_rejected(self):
        with pytest.raises(TimeError):
            to_raw(Timestamp(RAW_INFINITY))

    def test_finite_decode_is_interned(self):
        assert from_raw(12345) is from_raw(12345)


class TestResolveBackend:
    def test_explicit_python(self):
        assert resolve_backend("python") == "python"

    def test_unknown_rejected(self):
        with pytest.raises(RelationError):
            resolve_backend("arrow")

    def test_auto_follows_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUMPY", raising=False)
        assert resolve_backend(None) == "python"
        if numpy_available():
            monkeypatch.setenv("REPRO_NUMPY", "1")
            assert resolve_backend("auto") == "numpy"

    @pytest.mark.skipif(numpy_available(), reason="numpy importable")
    def test_numpy_absent_is_an_error(self):
        with pytest.raises(RelationError):
            resolve_backend("numpy")


class TestMutation:
    def test_insert_max_merge(self, backend):
        relation = ColumnarRelation(2, backend=backend)
        relation.insert((1, 2), expires_at=5)
        stored = relation.insert((1, 2), expires_at=3)
        # A duplicate keeps the *later* expiration (paper Eq. 3).
        assert stored.expires_at.value == 5
        relation.insert((1, 2), expires_at=9)
        assert relation.expiration_of((1, 2)).value == 9
        assert len(relation) == 1

    def test_override_is_unconditional(self, backend):
        relation = ColumnarRelation(1, backend=backend)
        relation.insert((1,), expires_at=9)
        relation.override((1,), 3)
        assert relation.expiration_of((1,)).value == 3

    def test_delete_keeps_arrays_dense(self, backend):
        relation = ColumnarRelation(2, backend=backend)
        for i in range(6):
            relation.insert((i, i * 10), expires_at=i + 1)
        assert relation.delete((2, 20))
        assert not relation.delete((2, 20))
        # Swap-remove: no holes, every surviving row still addressable.
        assert len(relation._texp) == 5
        assert all(len(col) == 5 for col in relation._cols)
        for i in (0, 1, 3, 4, 5):
            assert relation.expiration_of((i, i * 10)).value == i + 1

    def test_contains_and_expiration_or_none(self, backend):
        relation = ColumnarRelation(1, backend=backend)
        relation.insert((7,))
        assert relation.contains((7,))
        assert relation.expiration_or_none((7,)) is INFINITY
        assert relation.expiration_or_none((8,)) is None
        with pytest.raises(RelationError):
            relation.expiration_of((8,))

    def test_arity_checked(self, backend):
        with pytest.raises(RelationError):
            ColumnarRelation(2, backend=backend).insert((1,))


class TestBulkPaths:
    def test_bulk_load_max_merges(self, backend):
        relation = ColumnarRelation(1, backend=backend)
        relation.bulk_load([((1,), ts(5)), ((2,), ts(8)), ((1,), ts(3))])
        assert relation.expiration_of((1,)).value == 5
        assert relation.expiration_of((2,)).value == 8

    def test_bulk_restore_overrides_and_deletes(self, backend):
        relation = ColumnarRelation(1, backend=backend)
        relation.insert((1,), expires_at=9)
        relation.bulk_restore(
            [((1,), ts(2)), ((2,), INFINITY), ((3,), None), ((2,), None)]
        )
        # Override (no max-merge), insert, absent delete tolerated, delete.
        assert relation.expiration_of((1,)).value == 2
        assert not relation.contains((2,))
        assert len(relation) == 1


class TestModelPrimitives:
    def test_exp_at_filters_by_raw_compare(self, backend):
        relation = ColumnarRelation(1, backend=backend)
        relation.insert((1,), expires_at=5)
        relation.insert((2,), expires_at=10)
        relation.insert((3,))
        visible = relation.exp_at(5)
        assert sorted(visible.rows()) == [(2,), (3,)]
        assert isinstance(visible, ColumnarRelation)
        # All-live fast path returns a copy, never an alias.
        all_live = relation.exp_at(0)
        assert all_live is not relation
        assert all_live.same_content(relation)

    def test_purge_expired(self, backend):
        relation = ColumnarRelation(1, backend=backend)
        relation.insert((1,), expires_at=5)
        relation.insert((2,), expires_at=10)
        assert relation.purge_expired(5) == 1
        assert sorted(relation.rows()) == [(2,)]

    def test_sweep_due_skips_renewed_and_absent(self, backend):
        relation = ColumnarRelation(1, backend=backend)
        relation.insert((1,), expires_at=5)
        relation.insert((2,), expires_at=5)
        relation.override((2,), 20)  # renewed after its entry was scheduled
        due = [((1,), ts(5)), ((2,), ts(5)), ((9,), ts(5))]
        processed, expired = relation._sweep_due(due, ts(5), collect=True)
        assert processed == 1
        assert expired == [((1,), ts(5))]
        assert sorted(relation.rows()) == [(2,)]

    def test_earliest_and_latest(self, backend):
        relation = ColumnarRelation(1, backend=backend)
        assert relation.earliest_expiration() is INFINITY
        assert relation.latest_expiration().value == 0
        relation.insert((1,), expires_at=5)
        relation.insert((2,))
        assert relation.earliest_expiration().value == 5
        assert relation.latest_expiration() is INFINITY


class TestRelationParity:
    def test_same_content_and_equality_with_row_layout(self, backend):
        row = Relation(2)
        col = ColumnarRelation(2, backend=backend)
        for target in (row, col):
            target.insert((1, 2), expires_at=5)
            target.insert((3, 4))
        assert col.same_content(row)
        assert col == row

    def test_from_relation_copies(self, backend):
        row = Relation(["a"])
        row.insert((1,), expires_at=5)
        col = ColumnarRelation.from_relation(row, backend=backend)
        assert col.same_content(row)
        col.insert((2,))
        assert not row.contains((2,))

    def test_copy_is_independent(self, backend):
        relation = ColumnarRelation(1, backend=backend)
        relation.insert((1,), expires_at=5)
        clone = relation.copy()
        clone.delete((1,))
        assert relation.contains((1,))


class TestColumnBatch:
    def test_unfiltered_batch_aliases_live_storage(self):
        relation = ColumnarRelation(2, backend="python")
        relation.insert((1, 2), expires_at=5)
        batch = relation.batch()
        assert batch.columns[0] is relation._cols[0]
        assert batch.texp is relation._texp

    def test_filtered_batch(self, backend):
        relation = ColumnarRelation(1, backend=backend)
        relation.insert((1,), expires_at=5)
        relation.insert((2,), expires_at=10)
        batch = relation.batch(to_raw(ts(5)))
        assert len(batch) == 1
        assert list(batch.iter_rows()) == [(2,)]

    def test_pairs_decode_to_native_types(self, backend):
        relation = ColumnarRelation(1, backend=backend)
        relation.insert((1,), expires_at=5)
        relation.insert((2,))
        pairs = dict(relation.batch().pairs())
        for row, stamp in pairs.items():
            assert type(row[0]) is int
            assert isinstance(stamp, Timestamp)
        assert pairs[(2,)] is INFINITY

    def test_zero_column_batch_yields_empty_rows(self):
        from repro.core.columnar import ColumnBatch

        batch = ColumnBatch([], [5, 7])
        assert len(batch) == 2
        assert list(batch.iter_rows()) == [(), ()]


@pytest.mark.skipif(not numpy_available(), reason="numpy not importable")
class TestNumpyBackend:
    def test_np_arrays_cache_invalidated_by_mutation(self):
        relation = ColumnarRelation(1, backend="numpy")
        relation.insert((1,), expires_at=5)
        _, first = relation.np_arrays()
        _, again = relation.np_arrays()
        assert again is first  # stable generation -> cached
        relation.insert((2,), expires_at=9)
        _, fresh = relation.np_arrays()
        assert len(fresh) == 2

    def test_append_after_np_view_does_not_pin_buffer(self):
        # Regression: a frombuffer view over array('q') would make this
        # append raise BufferError; the cache must hold a copy.
        relation = ColumnarRelation(1, backend="numpy")
        relation.insert((1,), expires_at=5)
        relation.np_arrays()
        relation.insert((2,), expires_at=6)
        relation.delete((1,))
        assert sorted(relation.rows()) == [(2,)]

    def test_batch_is_ndarray_backed(self):
        import numpy as np

        relation = ColumnarRelation(1, backend="numpy")
        relation.insert((1,), expires_at=5)
        relation.insert((2,), expires_at=10)
        batch = relation.batch(to_raw(ts(5)))
        assert batch.is_numpy
        assert isinstance(batch.texp, np.ndarray)
        plain = batch.to_python()
        assert not plain.is_numpy
        assert plain.texp == [10]

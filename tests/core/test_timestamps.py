"""Tests for the time domain: ordering, infinity, arithmetic, min/max."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.timestamps import FOREVER, INFINITY, Timestamp, ts, ts_max, ts_min
from repro.errors import TimeError

finite_values = st.integers(min_value=0, max_value=10**9)
time_values = st.one_of(finite_values, st.none())


class TestConstruction:
    def test_finite(self):
        assert Timestamp(5).value == 5

    def test_zero_is_valid(self):
        assert Timestamp(0).is_finite

    def test_none_is_infinite(self):
        assert Timestamp(None).is_infinite

    def test_copy_constructor(self):
        assert Timestamp(Timestamp(7)) == Timestamp(7)
        assert Timestamp(INFINITY).is_infinite

    def test_negative_rejected(self):
        with pytest.raises(TimeError):
            Timestamp(-1)

    def test_bool_rejected(self):
        with pytest.raises(TimeError):
            Timestamp(True)

    def test_float_rejected(self):
        with pytest.raises(TimeError):
            Timestamp(1.5)

    def test_infinite_has_no_value(self):
        with pytest.raises(TimeError):
            INFINITY.value

    def test_forever_is_infinity(self):
        assert FOREVER is INFINITY

    def test_ts_coercion(self):
        assert ts(3) == Timestamp(3)
        assert ts(None) is INFINITY or ts(None) == INFINITY
        assert ts(Timestamp(9)) == Timestamp(9)


class TestOrdering:
    def test_finite_order(self):
        assert Timestamp(1) < Timestamp(2)
        assert Timestamp(2) > Timestamp(1)
        assert Timestamp(2) >= Timestamp(2)
        assert Timestamp(2) <= Timestamp(2)

    def test_infinity_is_largest(self):
        assert Timestamp(10**12) < INFINITY
        assert not INFINITY < Timestamp(10**12)
        assert INFINITY == INFINITY
        assert not INFINITY < INFINITY

    def test_int_interop(self):
        assert Timestamp(5) < 7
        assert Timestamp(5) == 5
        assert 5 == Timestamp(5)
        assert INFINITY > 10**9

    def test_incomparable(self):
        assert Timestamp(5) != "five"
        assert (Timestamp(5) == object()) is False

    @given(a=finite_values, b=finite_values)
    def test_order_matches_ints(self, a, b):
        assert (Timestamp(a) < Timestamp(b)) == (a < b)
        assert (Timestamp(a) == Timestamp(b)) == (a == b)

    @given(value=finite_values)
    def test_every_finite_below_infinity(self, value):
        assert Timestamp(value) < INFINITY


class TestHashing:
    def test_equal_hash(self):
        assert hash(Timestamp(4)) == hash(Timestamp(4))

    def test_usable_as_dict_key(self):
        d = {Timestamp(1): "a", INFINITY: "b"}
        assert d[Timestamp(1)] == "a"
        assert d[INFINITY] == "b"


class TestArithmetic:
    def test_addition(self):
        assert Timestamp(3) + 4 == Timestamp(7)
        assert 4 + Timestamp(3) == Timestamp(7)

    def test_subtraction(self):
        assert Timestamp(10) - 4 == Timestamp(6)

    def test_saturates_at_infinity(self):
        assert INFINITY + 100 == INFINITY
        assert INFINITY - 100 == INFINITY

    def test_negative_result_rejected(self):
        with pytest.raises(TimeError):
            Timestamp(3) - 5

    def test_int_conversion(self):
        assert int(Timestamp(42)) == 42

    @given(value=st.integers(min_value=0, max_value=10**6), delta=st.integers(min_value=0, max_value=10**6))
    def test_add_then_subtract_roundtrip(self, value, delta):
        assert Timestamp(value) + delta - delta == Timestamp(value)


class TestMinMax:
    def test_min_empty_is_infinity(self):
        assert ts_min([]) == INFINITY

    def test_max_empty_is_zero(self):
        assert ts_max([]) == Timestamp(0)

    def test_min_with_infinity(self):
        assert ts_min([INFINITY, 5, 9]) == Timestamp(5)

    def test_max_with_infinity(self):
        assert ts_max([3, INFINITY]) == INFINITY

    def test_accepts_ints_and_none(self):
        assert ts_min([7, None]) == Timestamp(7)
        assert ts_max([7, None]) == INFINITY

    @given(values=st.lists(finite_values, min_size=1))
    def test_min_max_match_builtin(self, values):
        assert ts_min(values) == Timestamp(min(values))
        assert ts_max(values) == Timestamp(max(values))

    @given(values=st.lists(time_values, min_size=1))
    def test_min_leq_max(self, values):
        assert ts_min(values) <= ts_max(values)


class TestDisplay:
    def test_repr(self):
        assert repr(Timestamp(5)) == "Timestamp(5)"
        assert repr(INFINITY) == "INFINITY"

    def test_str(self):
        assert str(Timestamp(5)) == "5"
        assert str(INFINITY) == "inf"

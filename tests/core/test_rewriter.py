"""Tests for the Section 3.1 rewriter: equivalence + postponed texp(e)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import (
    Aggregate,
    AggregateSpec,
    BaseRef,
    Difference,
    Product,
    Project,
    Select,
    Union,
)
from repro.core.algebra.predicates import TruePredicate, col
from repro.core.relation import relation_from_rows
from repro.core.rewriter import (
    Rewriter,
    compare_plans,
    drop_trivial_select,
    merge_selects,
    optimise,
    push_select_below_project,
    push_select_into_aggregate,
    push_select_into_difference,
    push_select_into_product,
    push_select_into_union,
    recomputation_pressure,
)

values = st.integers(min_value=0, max_value=3)
texps = st.one_of(st.integers(min_value=1, max_value=12), st.none())


def relations(max_size=6):
    row = st.tuples(values, values)
    return st.lists(st.tuples(row, texps), max_size=max_size).map(
        lambda data: relation_from_rows(["a", "b"], data)
    )


def resolver_for(catalog):
    return lambda name: catalog[name].schema


class TestIndividualRules:
    def test_merge_selects(self, catalog):
        expr = Select(Select(BaseRef("Pol"), col(1) == 1), col(2) == 25)
        merged = merge_selects(expr, resolver_for(catalog))
        assert isinstance(merged, Select)
        assert isinstance(merged.child, BaseRef)

    def test_drop_trivial(self, catalog):
        expr = Select(BaseRef("Pol"), TruePredicate())
        assert drop_trivial_select(expr, resolver_for(catalog)) == BaseRef("Pol")

    def test_push_into_difference(self, catalog):
        expr = Select(Difference(BaseRef("Pol"), BaseRef("El")), col(2) == 25)
        pushed = push_select_into_difference(expr, resolver_for(catalog))
        assert isinstance(pushed, Difference)
        assert isinstance(pushed.left, Select)
        assert isinstance(pushed.right, Select)

    def test_push_into_union(self, catalog):
        expr = Select(Union(BaseRef("Pol"), BaseRef("El")), col(2) == 25)
        pushed = push_select_into_union(expr, resolver_for(catalog))
        assert isinstance(pushed, Union)

    def test_push_into_product_routes_conjuncts(self, catalog):
        expr = Select(
            Product(BaseRef("Pol"), BaseRef("El")),
            (col(2) == 25) & (col(4) == 85) & (col(1) == col(3)),
        )
        pushed = push_select_into_product(expr, resolver_for(catalog))
        # The mixed conjunct stays on top; the pure ones moved down.
        assert isinstance(pushed, Select)
        assert isinstance(pushed.child, Product)
        assert isinstance(pushed.child.left, Select)
        assert isinstance(pushed.child.right, Select)

    def test_push_into_product_no_match(self, catalog):
        expr = Select(
            Product(BaseRef("Pol"), BaseRef("El")), col(1) == col(3)
        )
        assert push_select_into_product(expr, resolver_for(catalog)) is None

    def test_push_below_project(self, catalog):
        expr = Select(Project(BaseRef("Pol"), (2,)), col(1) == 25)
        pushed = push_select_below_project(expr, resolver_for(catalog))
        assert isinstance(pushed, Project)
        assert isinstance(pushed.child, Select)
        # The predicate was re-addressed: output position 1 -> child pos 2.
        result = evaluate(pushed, catalog)
        assert set(result.relation.rows()) == {(25,)}

    def test_push_into_aggregate_on_group_attrs(self, catalog):
        agg = Aggregate(BaseRef("Pol"), (2,), AggregateSpec("count"))
        expr = Select(agg, col(2) == 25)
        pushed = push_select_into_aggregate(expr, resolver_for(catalog))
        assert isinstance(pushed, Aggregate)
        assert isinstance(pushed.child, Select)

    def test_push_into_aggregate_rejects_nongroup_predicate(self, catalog):
        agg = Aggregate(BaseRef("Pol"), (2,), AggregateSpec("count"))
        expr = Select(agg, col(1) == 1)  # uid is not a grouping attribute
        assert push_select_into_aggregate(expr, resolver_for(catalog)) is None

    def test_push_into_aggregate_rejects_agg_column(self, catalog):
        agg = Aggregate(BaseRef("Pol"), (2,), AggregateSpec("count"))
        expr = Select(agg, col(3) == 2)  # position 3 is the count column
        assert push_select_into_aggregate(expr, resolver_for(catalog)) is None

    def test_push_into_semijoin_and_antijoin(self, catalog):
        from repro.core.algebra.evaluator import evaluate
        from repro.core.algebra.expressions import AntiSemiJoin, SemiJoin
        from repro.core.rewriter import push_select_into_semijoin

        for cls in (SemiJoin, AntiSemiJoin):
            expr = Select(
                cls(BaseRef("Pol"), BaseRef("El"), on=[(1, 1)]), col(2) == 25
            )
            pushed = push_select_into_semijoin(expr, resolver_for(catalog))
            assert isinstance(pushed, cls)
            assert isinstance(pushed.left, Select)
            original = evaluate(expr, catalog, tau=0)
            optimised = evaluate(pushed, catalog, tau=0)
            assert original.relation.same_content(optimised.relation)
            assert original.expiration <= optimised.expiration


class TestFixpoint:
    def test_applies_transitively(self, catalog):
        # σ_p(σ_q(Pol − El)) -> σ_{p∧q}(Pol) − σ_{p∧q}(El).
        expr = Select(
            Select(Difference(BaseRef("Pol"), BaseRef("El")), col(2) == 25),
            col(1) == 2,
        )
        rewriter = Rewriter()
        rewritten = rewriter.rewrite(expr, resolver_for(catalog))
        assert isinstance(rewritten, Difference)
        assert "merge_selects" in rewriter.applied
        assert "push_select_into_difference" in rewriter.applied

    def test_idempotent(self, catalog):
        expr = Select(Difference(BaseRef("Pol"), BaseRef("El")), col(2) == 25)
        once = optimise(expr, resolver_for(catalog))
        twice = optimise(once, resolver_for(catalog))
        assert once == twice


class TestSemanticPreservation:
    @settings(max_examples=100, deadline=None)
    @given(
        r=relations(),
        s=relations(),
        constant=values,
        tau=st.integers(min_value=0, max_value=10),
    )
    def test_difference_pushdown_preserves_content(self, r, s, constant, tau):
        catalog = {"R": r, "S": s}
        expr = Select(Difference(BaseRef("R"), BaseRef("S")), col(2) == constant)
        rewritten = optimise(expr, resolver_for(catalog))
        original = evaluate(expr, catalog, tau=tau)
        optimised = evaluate(rewritten, catalog, tau=tau)
        assert original.relation.same_content(optimised.relation)

    @settings(max_examples=60, deadline=None)
    @given(r=relations(), s=relations(), constant=values)
    def test_rewrite_never_hurts_expiration(self, r, s, constant):
        """The paper's Section 3.1 claim: rewriting postpones texp(e)."""
        catalog = {"R": r, "S": s}
        expr = Select(Difference(BaseRef("R"), BaseRef("S")), col(2) == constant)
        before, after = compare_plans(expr, catalog, tau=0)
        assert before.expiration <= after.expiration
        # And the validity set only grows.
        assert (before.validity - after.validity).is_empty

    def test_rewrite_strictly_helps_on_example(self):
        # R and S share tuples; only some satisfy the selection.  The
        # unpushed plan is invalidated by a critical tuple the selection
        # would have filtered out.
        r = relation_from_rows(["a", "b"], [((1, 0), 20), ((2, 9), 30)])
        s = relation_from_rows(["a", "b"], [((1, 0), 5), ((2, 9), 6)])
        catalog = {"R": r, "S": s}
        expr = Select(Difference(BaseRef("R"), BaseRef("S")), col(2) == 9)
        before, after = compare_plans(expr, catalog, tau=0)
        # Unpushed: texp(e) = 5 (tuple (1,0) is critical inside the diff).
        # Pushed: only (2,9) remains critical -> texp(e) = 6.
        assert int(before.expiration) == 5
        assert int(after.expiration) == 6


class TestPlanReports:
    def test_report_fields(self, catalog):
        expr = Select(Difference(BaseRef("Pol"), BaseRef("El")), col(2) == 25)
        report = recomputation_pressure(expr, catalog, tau=0)
        assert report.tuples_scanned > 0
        assert report.result_size >= 0

    def test_valid_duration(self, catalog):
        expr = BaseRef("Pol").project(1).difference(BaseRef("El").project(1))
        report = recomputation_pressure(expr, catalog, tau=0)
        # Valid on [0,3) and [15,horizon) within horizon 20 -> 3 + 5.
        assert report.valid_duration_before(20) == 8

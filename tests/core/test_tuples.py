"""Tests for rows and expiring tuples."""

import pytest

from repro.core.timestamps import INFINITY, ts
from repro.core.tuples import ExpiringTuple, make_row
from repro.errors import RelationError


class TestMakeRow:
    def test_builds_tuple(self):
        assert make_row([1, "a"]) == (1, "a")

    def test_rejects_unhashable(self):
        with pytest.raises(RelationError):
            make_row([[1, 2]])

    def test_accepts_generators(self):
        assert make_row(x for x in range(3)) == (0, 1, 2)


class TestExpiringTuple:
    def test_fields(self):
        t = ExpiringTuple((1, 25), 10)
        assert t.row == (1, 25)
        assert t.expires_at == ts(10)
        assert t.arity == 2

    def test_default_infinity(self):
        assert ExpiringTuple((1,), None).expires_at == INFINITY

    def test_expiry_boundary_is_inclusive(self):
        # exp_τ keeps tuples with texp > τ, so at τ == texp the tuple is gone.
        t = ExpiringTuple((1,), 10)
        assert t.alive_at(9)
        assert not t.alive_at(10)
        assert t.expired_at(10)
        assert not t.expired_at(9)

    def test_infinite_never_expires(self):
        t = ExpiringTuple((1,), None)
        assert t.alive_at(10**12)

    def test_positional_access_is_one_based(self):
        t = ExpiringTuple((7, 8, 9), 1)
        assert t.value(1) == 7
        assert t.value(3) == 9
        with pytest.raises(RelationError):
            t.value(0)
        with pytest.raises(RelationError):
            t.value(4)

    def test_immutable(self):
        t = ExpiringTuple((1,), 5)
        with pytest.raises(AttributeError):
            t.row = (2,)

    def test_with_expiration(self):
        t = ExpiringTuple((1,), 5).with_expiration(9)
        assert t.expires_at == ts(9)

    def test_value_semantics(self):
        assert ExpiringTuple((1,), 5) == ExpiringTuple((1,), 5)
        assert ExpiringTuple((1,), 5) != ExpiringTuple((1,), 6)
        assert hash(ExpiringTuple((1,), 5)) == hash(ExpiringTuple((1,), 5))

    def test_str(self):
        assert "@ 5" in str(ExpiringTuple((1,), 5))

"""Tests for the non-monotonic difference operator (Section 2.6.2).

Covers Equation (10) (tuples), Table 2 (the lifetime case analysis),
Equation (11) (``texp(e)``), the Figure 3(b)-(d) examples, and the
Section 3.4.2 validity intervals.
"""

import pytest

from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import BaseRef, Literal
from repro.core.intervals import IntervalSet
from repro.core.relation import relation_from_rows
from repro.core.timestamps import INFINITY, ts
from repro.core.validity import (
    critical_tuples,
    difference_validity_exact,
    difference_validity_paper,
)


def diff_expr():
    return BaseRef("Pol").project(1).difference(BaseRef("El").project(1))


class TestTuples:
    def test_figure_3b_time_0(self, catalog):
        result = evaluate(diff_expr(), catalog, tau=0)
        assert set(result.relation.rows()) == {(3,)}

    def test_figure_3c_time_3_grows(self, catalog):
        # The difference *grows* as tuples expire in El.
        result = evaluate(diff_expr(), catalog, tau=3)
        assert set(result.relation.rows()) == {(2,), (3,)}

    def test_figure_3d_time_5(self, catalog):
        result = evaluate(diff_expr(), catalog, tau=5)
        assert set(result.relation.rows()) == {(1,), (2,), (3,)}

    def test_result_keeps_left_expiration(self, catalog):
        # Equation (10): texp_*(t) = texp_R(t).
        result = evaluate(diff_expr(), catalog, tau=0)
        assert result.relation.expiration_of((3,)) == ts(10)

    def test_tuples_only_in_s_are_disregarded(self):
        left = relation_from_rows(["a"], [((1,), 10)])
        right = relation_from_rows(["a"], [((1,), 20), ((2,), 30)])
        result = evaluate(Literal(left).difference(Literal(right)), {})
        assert len(result.relation) == 0


class TestExpressionExpiration:
    def test_figure_3_expiration_time_3(self, catalog):
        # uid 2 is critical: texp_Pol=15 > texp_El=3, so texp(e)=3.
        result = evaluate(diff_expr(), catalog, tau=0)
        assert result.expiration == ts(3)

    def test_case_3b_no_invalidity(self):
        # t in both, texp_R <= texp_S: never re-appears, texp(e) = ∞.
        left = relation_from_rows(["a"], [((1,), 5)])
        right = relation_from_rows(["a"], [((1,), 9)])
        result = evaluate(Literal(left).difference(Literal(right)), {})
        assert result.expiration == INFINITY

    def test_disjoint_relations_never_invalid(self):
        left = relation_from_rows(["a"], [((1,), 5)])
        right = relation_from_rows(["a"], [((2,), 3)])
        result = evaluate(Literal(left).difference(Literal(right)), {})
        assert result.expiration == INFINITY

    def test_tau_r_is_min_over_critical(self):
        left = relation_from_rows(["a"], [((1,), 30), ((2,), 30), ((3,), 30)])
        right = relation_from_rows(["a"], [((1,), 12), ((2,), 7), ((3,), 40)])
        result = evaluate(Literal(left).difference(Literal(right)), {})
        assert result.expiration == ts(7)

    def test_same_expiration_everywhere_is_immortal(self):
        # "relations all of whose tuples have the same expiration time
        # always result in expressions with infinite expiration time".
        left = relation_from_rows(["a"], [((1,), 8), ((2,), 8)])
        right = relation_from_rows(["a"], [((1,), 8), ((3,), 8)])
        result = evaluate(Literal(left).difference(Literal(right)), {})
        assert result.expiration == INFINITY

    def test_empty_relations_are_immortal(self):
        left = relation_from_rows(["a"], [])
        right = relation_from_rows(["a"], [])
        result = evaluate(Literal(left).difference(Literal(right)), {})
        assert result.expiration == INFINITY


class TestCriticalTuples:
    def test_table2_classification(self, pol, el):
        left = pol.exp_at(0)
        right = el.exp_at(0)
        pol_only = relation_from_rows(["uid"], [(r[:1], t) for r, t in left.items()])
        el_only = relation_from_rows(["uid"], [(r[:1], t) for r, t in right.items()])
        critical = critical_tuples(pol_only, el_only)
        rows = {row for row, _, _ in critical}
        # uid 1 (10>5) and uid 2 (15>3) are critical; uid 3, 4 are not.
        assert rows == {(1,), (2,)}

    def test_orders(self):
        left = relation_from_rows(["a"], [((1,), 5), ((2,), 10)])
        right = relation_from_rows(["a"], [((1,), 5), ((2,), 4)])
        critical = critical_tuples(left, right)
        # Equal expirations (case 3b with =) are not critical.
        assert [(row, int(tr), int(ts_)) for row, tr, ts_ in critical] == [
            ((2,), 10, 4)
        ]


class TestValidityIntervals:
    def test_exact_validity_figure3(self, catalog):
        result = evaluate(diff_expr(), catalog, tau=0)
        # uid1 invalid on [5,10), uid2 invalid on [3,15) -> union [3,15).
        assert result.validity == IntervalSet.from_pairs([(0, 3), (15, None)])

    def test_exact_validity_with_gap(self):
        # One critical tuple: invalid exactly on [texp_S, texp_R).
        left = relation_from_rows(["a"], [((1,), 10), ((2,), 100)])
        right = relation_from_rows(["a"], [((1,), 5)])
        validity = difference_validity_exact(left, right, tau=0)
        assert validity == IntervalSet.from_pairs([(0, 5), (10, None)])

    def test_paper_formula_uses_s_expirations(self):
        # Equation (12) as printed: the removed window is bounded by the
        # min and max of the *S-side* expirations of the critical tuples.
        left = relation_from_rows(["a"], [((1,), 50), ((2,), 60)])
        right = relation_from_rows(["a"], [((1,), 5), ((2,), 20)])
        validity = difference_validity_paper(left, right, tau=0)
        assert validity == IntervalSet.from_pairs([(0, 5), (20, None)])

    def test_paper_formula_with_single_critical_tuple_degenerates(self):
        # With one critical tuple min == max, so nothing is removed -- one
        # of the reasons we treat Equation (12)'s bound as a typo and use
        # the exact per-tuple union everywhere else.
        left = relation_from_rows(["a"], [((1,), 50)])
        right = relation_from_rows(["a"], [((1,), 5)])
        paper = difference_validity_paper(left, right, tau=0)
        exact = difference_validity_exact(left, right, tau=0)
        assert paper == IntervalSet.from_onwards(0)
        assert exact == IntervalSet.from_pairs([(0, 5), (50, None)])

    def test_validity_respects_tau(self):
        left = relation_from_rows(["a"], [((1,), 50)])
        right = relation_from_rows(["a"], [((1,), 5)])
        validity = difference_validity_exact(left, right, tau=2)
        assert validity == IntervalSet.from_pairs([(2, 5), (50, None)])

    def test_validity_contains_expiration_window(self, catalog):
        result = evaluate(diff_expr(), catalog, tau=0)
        # [τ, texp(e)) is always inside the validity set.
        assert result.validity.contains(0)
        assert result.validity.contains(2)
        assert not result.validity.contains(3)

"""Property-based algebraic laws, including expiration-time behaviour.

The textbook SPCU identities must continue to hold in the expiration-time
algebra -- sometimes at full content level (rows *and* expiration times),
sometimes only at row level where the operators' expiration rules
legitimately differ (noted per law).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import (
    AntiSemiJoin,
    BaseRef,
    Difference,
    Intersect,
    Product,
    Select,
    SemiJoin,
    Union,
)
from repro.core.algebra.predicates import Not, col
from repro.core.relation import relation_from_rows

values = st.integers(min_value=0, max_value=3)
texps = st.one_of(st.integers(min_value=1, max_value=12), st.none())


def relations(max_size=6):
    row = st.tuples(values, values)
    return st.lists(st.tuples(row, texps), max_size=max_size).map(
        lambda data: relation_from_rows(["a", "b"], data)
    )


def content(expression, catalog, tau=0):
    return evaluate(expression, catalog, tau=tau).relation


settings_kwargs = dict(max_examples=60, deadline=None)


class TestUnionLaws:
    @settings(**settings_kwargs)
    @given(r=relations(), s=relations())
    def test_commutative_with_texps(self, r, s):
        catalog = {"R": r, "S": s}
        a = content(Union(BaseRef("R"), BaseRef("S")), catalog)
        b = content(Union(BaseRef("S"), BaseRef("R")), catalog)
        assert a.same_content(b)

    @settings(**settings_kwargs)
    @given(r=relations(), s=relations(), t=relations())
    def test_associative_with_texps(self, r, s, t):
        catalog = {"R": r, "S": s, "T": t}
        a = content(Union(Union(BaseRef("R"), BaseRef("S")), BaseRef("T")), catalog)
        b = content(Union(BaseRef("R"), Union(BaseRef("S"), BaseRef("T"))), catalog)
        assert a.same_content(b)

    @settings(**settings_kwargs)
    @given(r=relations())
    def test_idempotent_with_texps(self, r):
        catalog = {"R": r}
        a = content(Union(BaseRef("R"), BaseRef("R")), catalog)
        assert a.same_content(r.exp_at(0))


class TestIntersectLaws:
    @settings(**settings_kwargs)
    @given(r=relations(), s=relations())
    def test_commutative_with_texps(self, r, s):
        # min(texp_R, texp_S) is symmetric, so full content equality holds.
        catalog = {"R": r, "S": s}
        a = content(Intersect(BaseRef("R"), BaseRef("S")), catalog)
        b = content(Intersect(BaseRef("S"), BaseRef("R")), catalog)
        assert a.same_content(b)

    @settings(**settings_kwargs)
    @given(r=relations())
    def test_self_intersection(self, r):
        catalog = {"R": r}
        a = content(Intersect(BaseRef("R"), BaseRef("R")), catalog)
        assert a.same_content(r.exp_at(0))


class TestSelectLaws:
    @settings(**settings_kwargs)
    @given(r=relations(), c1=values, c2=values)
    def test_selects_commute(self, r, c1, c2):
        catalog = {"R": r}
        p, q = col(1) == c1, col(2) == c2
        a = content(Select(Select(BaseRef("R"), p), q), catalog)
        b = content(Select(Select(BaseRef("R"), q), p), catalog)
        c = content(Select(BaseRef("R"), p & q), catalog)
        assert a.same_content(b)
        assert a.same_content(c)

    @settings(**settings_kwargs)
    @given(r=relations(), c1=values)
    def test_excluded_middle(self, r, c1):
        # σ_p(R) ∪ σ_¬p(R) = R, with texps intact (rows are disjoint).
        catalog = {"R": r}
        p = col(1) == c1
        both = content(
            Union(Select(BaseRef("R"), p), Select(BaseRef("R"), Not(p))), catalog
        )
        assert both.same_content(r.exp_at(0))

    @settings(**settings_kwargs)
    @given(r=relations(), s=relations(), c1=values)
    def test_select_distributes_over_difference(self, r, s, c1):
        catalog = {"R": r, "S": s}
        p = col(1) == c1
        a = evaluate(Select(Difference(BaseRef("R"), BaseRef("S")), p), catalog)
        b = evaluate(Difference(Select(BaseRef("R"), p), Select(BaseRef("S"), p)), catalog)
        assert a.relation.same_content(b.relation)
        # Section 3.1: the pushed-down form never expires earlier.
        assert a.expiration <= b.expiration


class TestDifferenceLaws:
    @settings(**settings_kwargs)
    @given(r=relations(), s=relations())
    def test_difference_plus_intersection_covers_r(self, r, s):
        # Rows(R−S) ⊎ Rows(R∩S) = Rows(R); texps differ on the ∩ part
        # (difference keeps texp_R, intersection takes the min), so this
        # is a row-level law.
        catalog = {"R": r, "S": s}
        diff = content(Difference(BaseRef("R"), BaseRef("S")), catalog)
        inter = content(Intersect(BaseRef("R"), BaseRef("S")), catalog)
        visible_r = r.exp_at(0)
        assert set(diff.rows()) | set(inter.rows()) == set(visible_r.rows())
        assert not set(diff.rows()) & set(inter.rows())

    @settings(**settings_kwargs)
    @given(r=relations(), s=relations())
    def test_double_difference(self, r, s):
        # Rows(R − (R − S)) = Rows(R ∩ S) (texps differ by design).
        catalog = {"R": r, "S": s}
        double = content(
            Difference(BaseRef("R"), Difference(BaseRef("R"), BaseRef("S"))), catalog
        )
        inter = content(Intersect(BaseRef("R"), BaseRef("S")), catalog)
        assert double.same_rows(inter)

    @settings(**settings_kwargs)
    @given(r=relations(), s=relations())
    def test_difference_from_empty_s(self, r, s):
        catalog = {"R": r, "S": relation_from_rows(["a", "b"], [])}
        diff = evaluate(Difference(BaseRef("R"), BaseRef("S")), catalog)
        assert diff.relation.same_content(r.exp_at(0))
        from repro.core.timestamps import INFINITY

        assert diff.expiration == INFINITY


class TestSemijoinLaws:
    @settings(**settings_kwargs)
    @given(r=relations(), s=relations())
    def test_antijoin_equals_difference_with_semijoin(self, r, s):
        # R ▷ S == R − (R ⋉ S): full content equality *and* identical
        # expression expiration and validity.
        catalog = {"R": r, "S": s}
        anti = evaluate(AntiSemiJoin(BaseRef("R"), BaseRef("S"), on=[(1, 1)]), catalog)
        via_diff = evaluate(
            Difference(BaseRef("R"), SemiJoin(BaseRef("R"), BaseRef("S"), on=[(1, 1)])),
            catalog,
        )
        assert anti.relation.same_content(via_diff.relation)
        assert anti.expiration == via_diff.expiration
        assert anti.validity == via_diff.validity

    @settings(**settings_kwargs)
    @given(r=relations(), s=relations())
    def test_semijoin_antijoin_partition_r(self, r, s):
        catalog = {"R": r, "S": s}
        semi = content(SemiJoin(BaseRef("R"), BaseRef("S"), on=[(1, 1)]), catalog)
        anti = content(AntiSemiJoin(BaseRef("R"), BaseRef("S"), on=[(1, 1)]), catalog)
        visible_r = r.exp_at(0)
        assert set(semi.rows()) | set(anti.rows()) == set(visible_r.rows())
        assert not set(semi.rows()) & set(anti.rows())


class TestProductLaws:
    @settings(**settings_kwargs)
    @given(r=relations(max_size=4), s=relations(max_size=4))
    def test_product_cardinality(self, r, s):
        catalog = {"R": r, "S": s}
        product = content(Product(BaseRef("R"), BaseRef("S")), catalog)
        assert len(product) == len(r.exp_at(0)) * len(s.exp_at(0))

    @settings(**settings_kwargs)
    @given(r=relations(max_size=4), s=relations(max_size=4))
    def test_product_commutes_up_to_column_order(self, r, s):
        catalog = {"R": r, "S": s}
        ab = content(Product(BaseRef("R"), BaseRef("S")), catalog)
        ba = content(Product(BaseRef("S"), BaseRef("R")), catalog)
        swapped = {(row[2:] + row[:2]) for row in ba.rows()}
        assert set(ab.rows()) == swapped
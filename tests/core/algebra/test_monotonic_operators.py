"""Tests for the monotonic operators σ, π, ×, ∪ and derived ⋈, ∩, ρ.

The expiration-time rules under test (Section 2.3-2.4):

* selection passes expirations through (Equation 1);
* product assigns the min of the parents (Equation 2);
* projection merges duplicates to the max (Equation 3);
* union assigns max to shared tuples (Equation 4);
* join = select over product (Equation 5);
* intersection assigns minima (Equation 6).
"""

import pytest

from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import BaseRef, Literal
from repro.core.algebra.predicates import col
from repro.core.relation import Relation, relation_from_rows
from repro.core.timestamps import INFINITY, ts
from repro.errors import CatalogError, UnionCompatibilityError


class TestSelection:
    def test_filters_rows(self, catalog):
        result = evaluate(BaseRef("Pol").select(col("deg") == 25), catalog)
        assert set(result.relation.rows()) == {(1, 25), (2, 25)}

    def test_preserves_expirations(self, catalog):
        result = evaluate(BaseRef("Pol").select(col("deg") == 25), catalog)
        assert result.relation.expiration_of((1, 25)) == ts(10)
        assert result.relation.expiration_of((2, 25)) == ts(15)

    def test_only_sees_unexpired(self, catalog):
        result = evaluate(BaseRef("Pol").select(col("deg") == 25), catalog, tau=10)
        assert set(result.relation.rows()) == {(2, 25)}

    def test_correlated_predicate(self):
        rel = relation_from_rows(["a", "b"], [((1, 1), 5), ((1, 2), 5)])
        result = evaluate(Literal(rel).select(col(1) == col(2)), {})
        assert set(result.relation.rows()) == {(1, 1)}

    def test_expression_expiration_is_infinite(self, catalog):
        result = evaluate(BaseRef("Pol").select(col("deg") == 25), catalog)
        assert result.expiration == INFINITY


class TestProjection:
    def test_figure_2c(self, catalog):
        # π_2(Pol) at time 0: {25, 35}; 25 inherits the max lifetime 15.
        result = evaluate(BaseRef("Pol").project(2), catalog)
        assert set(result.relation.rows()) == {(25,), (35,)}
        assert result.relation.expiration_of((25,)) == ts(15)
        assert result.relation.expiration_of((35,)) == ts(10)

    def test_figure_2d(self, catalog):
        # At time 10 only <25> remains.
        result = evaluate(BaseRef("Pol").project(2), catalog, tau=10)
        assert set(result.relation.rows()) == {(25,)}

    def test_expired_materialisation_matches_recomputation(self, catalog):
        # Expiring the time-0 materialisation to time 10 gives Figure 2(d).
        at_zero = evaluate(BaseRef("Pol").project(2), catalog, tau=0)
        at_ten = evaluate(BaseRef("Pol").project(2), catalog, tau=10)
        assert at_zero.relation.exp_at(10).same_content(at_ten.relation)

    def test_project_by_name(self, catalog):
        result = evaluate(BaseRef("Pol").project("deg"), catalog)
        assert set(result.relation.rows()) == {(25,), (35,)}

    def test_reordering(self, catalog):
        result = evaluate(BaseRef("Pol").project(2, 1), catalog)
        assert (25, 1) in result.relation


class TestProduct:
    def test_min_expiration(self, catalog):
        result = evaluate(BaseRef("Pol").product(BaseRef("El")), catalog)
        assert len(result.relation) == 9
        # Pol<1,25>@10 x El<2,85>@3 -> @3.
        assert result.relation.expiration_of((1, 25, 2, 85)) == ts(3)

    def test_with_infinite_side(self):
        left = relation_from_rows(["a"], [((1,), None)])
        right = relation_from_rows(["b"], [((2,), 7)])
        result = evaluate(Literal(left).product(Literal(right)), {})
        assert result.relation.expiration_of((1, 2)) == ts(7)

    def test_schema_concat(self, catalog):
        result = evaluate(BaseRef("Pol").product(BaseRef("El")), catalog)
        assert result.relation.schema.names == ("uid", "deg", "uid_r", "deg_r")


class TestUnion:
    def test_shared_tuple_gets_max(self):
        left = relation_from_rows(["a"], [((1,), 5), ((2,), 9)])
        right = relation_from_rows(["a"], [((1,), 8)])
        result = evaluate(Literal(left).union(Literal(right)), {})
        assert result.relation.expiration_of((1,)) == ts(8)
        assert result.relation.expiration_of((2,)) == ts(9)

    def test_requires_compatible_arity(self, catalog):
        bad = relation_from_rows(["x"], [((1,), 5)])
        with pytest.raises(UnionCompatibilityError):
            evaluate(BaseRef("Pol").union(Literal(bad)), catalog)

    def test_union_of_projections(self, catalog):
        expr = BaseRef("Pol").project(1).union(BaseRef("El").project(1))
        result = evaluate(expr, catalog)
        assert set(result.relation.rows()) == {(1,), (2,), (3,), (4,)}
        # uid 1: max(Pol@10, El@5) = 10.
        assert result.relation.expiration_of((1,)) == ts(10)


class TestJoin:
    def test_figure_2e(self, catalog):
        # Pol ⋈_{1=3} El at time 0.
        result = evaluate(BaseRef("Pol").join(BaseRef("El"), on=[(1, 1)]), catalog)
        assert set(result.relation.rows()) == {(1, 25, 1, 75), (2, 25, 2, 85)}
        assert result.relation.expiration_of((1, 25, 1, 75)) == ts(5)
        assert result.relation.expiration_of((2, 25, 2, 85)) == ts(3)

    def test_figure_2f_time_3(self, catalog):
        result = evaluate(
            BaseRef("Pol").join(BaseRef("El"), on=[(1, 1)]), catalog, tau=3
        )
        assert set(result.relation.rows()) == {(1, 25, 1, 75)}

    def test_figure_2g_time_5_empty(self, catalog):
        result = evaluate(
            BaseRef("Pol").join(BaseRef("El"), on=[(1, 1)]), catalog, tau=5
        )
        assert len(result.relation) == 0

    def test_join_equals_select_over_product(self, catalog):
        # Equation (5): R ⋈_p S = σ_p'(R × S), including expiration times.
        join = evaluate(BaseRef("Pol").join(BaseRef("El"), on=[(1, 1)]), catalog)
        rewrite = evaluate(
            BaseRef("Pol").product(BaseRef("El")).select(col(1) == col(3)),
            catalog,
        )
        assert join.relation.same_content(rewrite.relation)

    def test_join_with_residual_predicate(self, catalog):
        result = evaluate(
            BaseRef("Pol").join(BaseRef("El"), on=[(1, 1)], predicate=col(4) > 80),
            catalog,
        )
        assert set(result.relation.rows()) == {(2, 25, 2, 85)}

    def test_pure_predicate_join(self, catalog):
        result = evaluate(
            BaseRef("Pol").join(BaseRef("El"), predicate=col(1) == col(3)), catalog
        )
        assert len(result.relation) == 2


class TestIntersect:
    def test_min_expiration(self):
        left = relation_from_rows(["a"], [((1,), 5), ((2,), 9)])
        right = relation_from_rows(["a"], [((1,), 8), ((3,), 4)])
        result = evaluate(Literal(left).intersect(Literal(right)), {})
        assert set(result.relation.rows()) == {(1,)}
        assert result.relation.expiration_of((1,)) == ts(5)

    def test_matches_derived_form(self, catalog):
        # Equation (6): ∩ = π(σ(×)) with equality on all attribute pairs.
        direct = evaluate(
            BaseRef("Pol").project(1).intersect(BaseRef("El").project(1)), catalog
        )
        derived = evaluate(
            BaseRef("Pol")
            .project(1)
            .product(BaseRef("El").project(1))
            .select(col(1) == col(2))
            .project(1),
            catalog,
        )
        assert direct.relation.same_content(derived.relation)


class TestRename:
    def test_renames_schema_only(self, catalog):
        result = evaluate(BaseRef("Pol").rename({"deg": "interest"}), catalog)
        assert result.relation.schema.names == ("uid", "interest")
        assert set(result.relation.rows()) == {(1, 25), (2, 25), (3, 35)}
        assert result.relation.expiration_of((1, 25)) == ts(10)


class TestErrors:
    def test_unknown_base_relation(self):
        with pytest.raises(CatalogError):
            evaluate(BaseRef("Nope"), {})

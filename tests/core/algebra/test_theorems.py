"""Property-based tests of the paper's three theorems.

* Theorem 1: for monotonic ``e`` and ``τ <= τ'``,
  ``exp_τ'(e) = exp_τ'(exp_τ(e))`` -- materialisations of monotonic
  expressions stay valid forever.
* Theorem 2: for any ``e`` of operators (1)-(10) and ``τ <= τ' < texp(e)``,
  the same equation holds.
* (Theorem 3 is tested in ``tests/core/test_patching.py``.)

Additionally: the evaluator's analytic validity interval set must equal
the brute-force oracle (recompute-and-compare at every relevant time), and
with all expirations at ``∞`` the algebra degrades to its textbook (SPCU)
behaviour.

Expressions and relations are generated randomly with hypothesis; the
generators deliberately create heavy overlap and duplicate expiration
times to hit the interesting cases (critical tuples, neutral slices,
partitions dying together).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import ExpirationStrategy
from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import (
    Aggregate,
    AggregateSpec,
    BaseRef,
    Difference,
    Expression,
    Intersect,
    Join,
    Product,
    Project,
    Select,
    Union,
)
from repro.core.algebra.predicates import col
from repro.core.relation import Relation, relation_from_rows
from repro.core.timestamps import INFINITY, ts
from repro.core.validity import (
    recompute_equals_materialised,
    relevant_times,
    validity_oracle,
)

# -- generators -----------------------------------------------------------

# Small domains force collisions: shared rows between R and S, duplicate
# values within partitions, ties in expiration times.
values = st.integers(min_value=0, max_value=3)
texps = st.one_of(st.integers(min_value=1, max_value=12), st.none())


def relations(arity=2, max_size=6):
    row = st.tuples(*([values] * arity))
    return st.lists(st.tuples(row, texps), max_size=max_size).map(
        lambda data: relation_from_rows([f"c{i}" for i in range(1, arity + 1)], data)
    )


@st.composite
def monotonic_expressions(draw):
    """A random expression over bases R, S using only (1)-(6)."""
    depth = draw(st.integers(min_value=0, max_value=2))
    return _draw_monotonic(draw, depth)


def _draw_monotonic(draw, depth) -> Expression:
    if depth == 0:
        return BaseRef(draw(st.sampled_from(["R", "S"])))
    choice = draw(st.sampled_from(["select", "project", "union", "product", "join", "intersect"]))
    child = _draw_monotonic(draw, depth - 1)
    arity = _arity(child)
    if choice == "select":
        attr = draw(st.integers(min_value=1, max_value=arity))
        constant = draw(values)
        return Select(child, col(attr) == constant)
    if choice == "project":
        candidates = [refs for refs in ((1,), (2,), (1, 2), (2, 1)) if max(refs) <= arity]
        return Project(child, draw(st.sampled_from(candidates)))
    other = BaseRef(draw(st.sampled_from(["R", "S"])))
    if choice == "union":
        return Union(child, other) if arity == 2 else Union(other, other)
    if choice == "intersect":
        return Intersect(child, other) if arity == 2 else Intersect(other, other)
    if choice == "product":
        return Product(child, other)
    # join on first attributes
    return Join(child, other, on=[(1, 1)])


def _arity(expression: Expression) -> int:
    """Arity over the fixed two-column bases (cheap structural version)."""
    return expression.infer_schema(lambda name: relation_from_rows(["a", "b"], []).schema).arity


@st.composite
def nonmonotonic_expressions(draw):
    """Difference or aggregation over shallow monotonic arguments."""
    kind = draw(st.sampled_from(["difference", "aggregate"]))
    if kind == "difference":
        left = draw(st.sampled_from(["base", "project"]))
        if left == "base":
            return Difference(BaseRef("R"), BaseRef("S"))
        return Difference(Project(BaseRef("R"), (1,)), Project(BaseRef("S"), (1,)))
    function = draw(st.sampled_from(["count", "min", "max", "sum", "avg"]))
    strategy = draw(st.sampled_from(list(ExpirationStrategy)))
    attribute = None if function == "count" else 2
    group_by = draw(st.sampled_from([(1,), (2,), ()]))
    return Aggregate(
        BaseRef("R"), group_by, AggregateSpec(function, attribute), strategy=strategy
    )


# -- Theorem 1 ----------------------------------------------------------------


class TestTheorem1:
    @settings(max_examples=120, deadline=None)
    @given(
        r=relations(),
        s=relations(),
        expr=monotonic_expressions(),
        tau=st.integers(min_value=0, max_value=6),
        delta=st.integers(min_value=0, max_value=10),
    )
    def test_monotonic_materialisations_stay_valid(self, r, s, expr, tau, delta):
        catalog = {"R": r, "S": s}
        materialised = evaluate(expr, catalog, tau=tau)
        assert materialised.expiration == INFINITY
        later = tau + delta
        assert recompute_equals_materialised(expr, catalog, materialised, later)

    @settings(max_examples=60, deadline=None)
    @given(r=relations(), s=relations(), expr=monotonic_expressions())
    def test_monotonic_validity_is_all_time(self, r, s, expr):
        result = evaluate(expr, {"R": r, "S": s}, tau=0)
        # I(e) = [τ, ∞) for monotonic expressions (Section 3.4).
        assert result.validity.contains(0)
        for point in relevant_times(expr, {"R": r, "S": s}, 0):
            assert result.validity.contains(point)


# -- Theorem 2 -----------------------------------------------------------------


class TestTheorem2:
    @settings(max_examples=150, deadline=None)
    @given(
        r=relations(),
        s=relations(),
        expr=nonmonotonic_expressions(),
        tau=st.integers(min_value=0, max_value=6),
        delta=st.integers(min_value=0, max_value=12),
    )
    def test_valid_strictly_before_expiration(self, r, s, expr, tau, delta):
        catalog = {"R": r, "S": s}
        materialised = evaluate(expr, catalog, tau=tau)
        later = ts(tau + delta)
        if later < materialised.expiration:
            assert recompute_equals_materialised(expr, catalog, materialised, later)

    @settings(max_examples=100, deadline=None)
    @given(r=relations(), s=relations(), expr=nonmonotonic_expressions())
    def test_expiration_is_tight_for_difference(self, r, s, expr):
        """texp(e) is a *lower bound*: validity holds right up to it."""
        catalog = {"R": r, "S": s}
        materialised = evaluate(expr, catalog, tau=0)
        expiration = materialised.expiration
        if expiration.is_finite and expiration.value > 0:
            assert recompute_equals_materialised(
                expr, catalog, materialised, expiration.value - 1
            )


# -- Analytic validity vs brute-force oracle ----------------------------------------


class TestValidityExactness:
    @settings(max_examples=100, deadline=None)
    @given(r=relations(max_size=5), s=relations(max_size=5), expr=nonmonotonic_expressions())
    def test_analytic_validity_equals_oracle(self, r, s, expr):
        catalog = {"R": r, "S": s}
        analytic = evaluate(expr, catalog, tau=0).validity
        oracle = validity_oracle(expr, catalog, tau=0)
        assert analytic == oracle

    @settings(max_examples=60, deadline=None)
    @given(r=relations(max_size=4), s=relations(max_size=4))
    def test_nested_validity_is_sound(self, r, s):
        """For nested non-monotonic plans the analytic set never claims
        validity the oracle refutes (it may be conservative)."""
        expr = Select(
            Difference(Project(BaseRef("R"), (1,)), Project(BaseRef("S"), (1,))),
            col(1) >= 0,
        )
        catalog = {"R": r, "S": s}
        analytic = evaluate(expr, catalog, tau=0).validity
        oracle = validity_oracle(expr, catalog, tau=0)
        assert (analytic - oracle).is_empty


# -- Textbook degradation -------------------------------------------------------------


class TestTextbookDegradation:
    """With every texp = ∞ the operators must behave like the SPCU algebra."""

    @settings(max_examples=80, deadline=None)
    @given(
        rows_r=st.lists(st.tuples(values, values), max_size=6),
        rows_s=st.lists(st.tuples(values, values), max_size=6),
        expr=monotonic_expressions(),
        tau=st.integers(min_value=0, max_value=100),
    )
    def test_monotonic_time_independent(self, rows_r, rows_s, expr, tau):
        r = relation_from_rows(["a", "b"], [(row, None) for row in rows_r])
        s = relation_from_rows(["a", "b"], [(row, None) for row in rows_s])
        catalog = {"R": r, "S": s}
        now = set(evaluate(expr, catalog, tau=0).relation.rows())
        later = set(evaluate(expr, catalog, tau=tau).relation.rows())
        assert now == later

    def test_set_semantics_match_python_sets(self):
        rows_r = {(1, 1), (1, 2), (2, 2)}
        rows_s = {(1, 2), (3, 3)}
        r = relation_from_rows(["a", "b"], [(row, None) for row in rows_r])
        s = relation_from_rows(["a", "b"], [(row, None) for row in rows_s])
        catalog = {"R": r, "S": s}
        assert set(
            evaluate(Union(BaseRef("R"), BaseRef("S")), catalog).relation.rows()
        ) == rows_r | rows_s
        assert set(
            evaluate(Intersect(BaseRef("R"), BaseRef("S")), catalog).relation.rows()
        ) == rows_r & rows_s
        assert set(
            evaluate(Difference(BaseRef("R"), BaseRef("S")), catalog).relation.rows()
        ) == rows_r - rows_s
        assert set(
            evaluate(Product(BaseRef("R"), BaseRef("S")), catalog).relation.rows()
        ) == {lr + sr for lr in rows_r for sr in rows_s}

    def test_infinite_expirations_never_invalidate(self):
        r = relation_from_rows(["a", "b"], [((1, 2), None)])
        s = relation_from_rows(["a", "b"], [((1, 2), None)])
        catalog = {"R": r, "S": s}
        result = evaluate(Difference(BaseRef("R"), BaseRef("S")), catalog)
        assert result.expiration == INFINITY

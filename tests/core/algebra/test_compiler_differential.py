"""Differential tests: the compiled evaluator against the interpreter.

The compiled fused-pipeline evaluator (:mod:`repro.core.algebra.compiler`)
must be *observationally identical* to the reference tree-walking
interpreter on every expression: same rows, same per-tuple expiration
times, same expression-level ``texp(e)``, and the same exact validity
interval set ``I(e)``.  These tests enforce that over randomly generated
catalogs and expression trees spanning every operator, plus targeted
shapes where the two implementations take the most different code paths
(duplicate-producing projections feeding joins, differences, and
aggregates).
"""

import random

import pytest

from repro.core.aggregates import ExpirationStrategy
from repro.core.algebra.compiler import (
    CompiledEvaluator,
    compile_expression,
    evaluate_compiled,
)
from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import BaseRef, Expression
from repro.core.algebra.predicates import col
from repro.core.columnar import ColumnarRelation, numpy_available
from repro.core.relation import Relation
from repro.core.validity import recompute_equals_materialised, relevant_times
from repro.errors import CatalogError


# ---------------------------------------------------------------------------
# Random catalog / expression generation
# ---------------------------------------------------------------------------

#: Storage backends every differential property must hold over: the row
#: dict, the pure-Python columnar layout (batch kernels), and -- when the
#: module is importable -- the numpy columnar layout (vectorised kernels).
BACKENDS = ["row", "columnar"] + (
    ["columnar-numpy"] if numpy_available() else []
)


def make_relation(arity, backend: str):
    if backend == "row":
        return Relation(arity)
    return ColumnarRelation(
        arity, backend="numpy" if backend == "columnar-numpy" else "python"
    )


def random_catalog(rng: random.Random, backend: str = "row"):
    """Three small base relations with colliding keys and mixed lifetimes."""
    catalog = {}
    for name, arity in (("R", 2), ("S", 2), ("T", 3)):
        relation = make_relation(arity, backend)
        for _ in range(rng.randrange(3, 12)):
            row = tuple(rng.randrange(5) for _ in range(arity))
            # Mix finite lifetimes with a few immortal tuples.
            expires = None if rng.random() < 0.2 else rng.randrange(1, 40)
            relation.insert(row, expires_at=expires)
        catalog[name] = relation
    return catalog


def random_expression(rng: random.Random, depth: int = 3) -> Expression:
    """A random well-formed expression over the ``random_catalog`` schemas."""
    if depth <= 0:
        return BaseRef(rng.choice(["R", "S", "T"]))
    choice = rng.randrange(10)
    if choice == 0:
        return BaseRef(rng.choice(["R", "S", "T"]))
    child = random_expression(rng, depth - 1)
    # Binary set operators need union-compatible sides; easiest to build
    # them over the same random subtree shape with a fresh right side of
    # matching arity: use two-column bases R/S for those.
    if choice == 1:
        return child.select(col(1) >= rng.randrange(5))
    if choice == 2:
        return child.project(1)
    if choice == 3:
        left = BaseRef("R").select(col(2) >= rng.randrange(3))
        right = BaseRef("S").select(col(1) >= rng.randrange(3))
        op = rng.choice(["union", "difference", "intersect"])
        return getattr(left, op)(right)
    if choice == 4:
        return child.product(BaseRef(rng.choice(["R", "S"])))
    if choice == 5:
        return child.join(BaseRef("S"), on=[(1, 1)])
    if choice == 6:
        return child.semijoin(BaseRef("S"), on=[(1, 1)])
    if choice == 7:
        return child.antijoin(BaseRef("S"), on=[(1, 2)])
    if choice == 8:
        strategy = rng.choice(list(ExpirationStrategy))
        return child.aggregate([1], "count", strategy=strategy)
    return child.select((col(1) >= 1) | ~(col(1) == 3))


def assert_equivalent(expression: Expression, catalog, tau) -> None:
    reference = evaluate(expression, catalog, tau=tau)
    compiled = evaluate_compiled(expression, catalog, tau=tau)
    assert compiled.relation.same_content(reference.relation), (
        f"rows/texp diverge at tau={tau}:\n"
        f"interpreted: {sorted(reference.relation.items())}\n"
        f"compiled:    {sorted(compiled.relation.items())}"
    )
    assert compiled.relation.schema.names == reference.relation.schema.names
    assert compiled.expiration == reference.expiration, (
        f"texp(e) diverges at tau={tau}: "
        f"{reference.expiration} vs {compiled.expiration}"
    )
    assert compiled.validity == reference.validity, (
        f"I(e) diverges at tau={tau}: "
        f"{reference.validity!r} vs {compiled.validity!r}"
    )


# ---------------------------------------------------------------------------
# The random sweep
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(60))
def test_random_expressions_agree(seed, backend):
    rng = random.Random(seed)
    catalog = random_catalog(rng, backend)
    expression = random_expression(rng, depth=rng.randrange(1, 5))
    for tau in (0, rng.randrange(1, 20), rng.randrange(20, 45)):
        assert_equivalent(expression, catalog, tau)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(8))
def test_compiled_validity_matches_ground_truth(seed, backend):
    """Both engines' I(e) is the *true* validity, not merely mutual agreement."""
    rng = random.Random(1000 + seed)
    catalog = random_catalog(rng, backend)
    expression = random_expression(rng, depth=2)
    tau = rng.randrange(0, 10)
    result = evaluate_compiled(expression, catalog, tau=tau)
    for point in relevant_times(expression, catalog, result.tau):
        expected = recompute_equals_materialised(
            expression, catalog, result, point
        )
        assert result.validity.contains(point) == expected, (
            f"compiled I(e) wrong at {point} for tau={tau}"
        )


# ---------------------------------------------------------------------------
# Targeted shapes: where fused pipelines differ most from the interpreter
# ---------------------------------------------------------------------------


def figure1_catalog():
    pol = Relation(["uid", "deg"])
    pol.insert((1, 25), expires_at=10)
    pol.insert((3, 35), expires_at=10)
    pol.insert((2, 25), expires_at=15)
    return {"Pol": pol}


def test_projection_duplicates_take_max_expiration():
    """Figure 1's projection: duplicate rows keep the max texp."""
    result = evaluate_compiled(BaseRef("Pol").project(2), figure1_catalog(), tau=0)
    assert result.relation.expiration_of((25,)).value == 15
    assert result.relation.expiration_of((35,)).value == 10


def test_duplicates_through_difference():
    """A duplicate-emitting projection feeding a difference must behave as
    if the projection had been deduplicated first (max-merge rule)."""
    left = Relation(1)
    left.insert((1,), expires_at=5)
    left.insert((2,), expires_at=30)
    catalog = {**figure1_catalog(), "D": left}
    expression = BaseRef("Pol").project(1).difference(BaseRef("D"))
    for tau in (0, 4, 7, 12):
        assert_equivalent(expression, catalog, tau)


def test_duplicates_through_aggregate_count():
    """Aggregates must count *distinct* rows of the (fused) child stream."""
    pol = figure1_catalog()["Pol"]
    pol.insert((4, 25), expires_at=8)  # second tuple projecting to (25,)
    expression = BaseRef("Pol").project(2).aggregate([1], "count")
    for tau in (0, 7, 9, 12):
        assert_equivalent(expression, {"Pol": pol}, tau)
    result = evaluate_compiled(expression, {"Pol": pol}, tau=0)
    # Three tuples project onto two distinct rows: counts are of the set.
    assert sorted(result.relation.rows()) == [(25, 1), (35, 1)]


def test_duplicates_through_semijoin_and_antijoin():
    catalog = figure1_catalog()
    other = Relation(1)
    other.insert((25,), expires_at=12)
    catalog["K"] = other
    projected = BaseRef("Pol").project(2)
    for expression in (
        projected.semijoin(BaseRef("K"), on=[(1, 1)]),
        projected.antijoin(BaseRef("K"), on=[(1, 1)]),
    ):
        for tau in (0, 9, 11, 13):
            assert_equivalent(expression, catalog, tau)


def test_join_residual_predicate_agrees():
    rng = random.Random(7)
    catalog = random_catalog(rng)
    expression = BaseRef("R").join(
        BaseRef("S"), on=[(1, 1)], predicate=col(2) >= col(4)
    )
    for tau in (0, 5, 15):
        assert_equivalent(expression, catalog, tau)


def test_rename_is_pass_through():
    catalog = figure1_catalog()
    expression = BaseRef("Pol").rename({"deg": "temperature"})
    assert_equivalent(expression, catalog, 0)
    result = evaluate_compiled(expression, catalog, tau=0)
    assert result.relation.schema.names == ("uid", "temperature")


def test_all_strategies_aggregate_sum():
    rng = random.Random(11)
    catalog = random_catalog(rng)
    for strategy in ExpirationStrategy:
        expression = BaseRef("T").aggregate([1], "sum", attribute=3, strategy=strategy)
        for tau in (0, 6, 18):
            assert_equivalent(expression, catalog, tau)


def test_compiled_evaluator_memoises_plans():
    catalog = figure1_catalog()
    evaluator = CompiledEvaluator(catalog, tau=0)
    expression = BaseRef("Pol").project(2)
    first = evaluator.plan_for(expression)
    evaluator.evaluate(expression)
    assert evaluator.plan_for(expression) is first


def test_unknown_base_relation_fails_at_compile_time():
    with pytest.raises(CatalogError):
        compile_expression(
            BaseRef("Nope").project(1),
            lambda name: (_ for _ in ()).throw(CatalogError(name)),
        )

"""Tests for aggregation (Section 2.6.1): Equations (7)-(9) and Table 1."""

from fractions import Fraction

import pytest

from repro.core.aggregates import (
    AvgAggregate,
    CountAggregate,
    ExpirationStrategy,
    MaxAggregate,
    MinAggregate,
    SumAggregate,
    change_points,
    conservative_expiration,
    contributing_set,
    exact_expiration,
    get_aggregate,
    known_aggregates,
    neutral_set_expiration,
    partition_invalidation_time,
    register_aggregate,
    time_sliced_sets,
    tuple_validity_intervals,
    value_timeline,
)
from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import BaseRef, Literal
from repro.core.intervals import IntervalSet
from repro.core.relation import relation_from_rows
from repro.core.timestamps import INFINITY, ts
from repro.errors import AggregateError, AlgebraError


def items(*pairs):
    """Build partition items [(value, texp), ...] with int/None texps."""
    return [(value, ts(texp)) for value, texp in pairs]


class TestAggregateFunctions:
    def test_registry(self):
        assert set(known_aggregates()) >= {"min", "max", "sum", "count", "avg"}
        assert get_aggregate("COUNT").name == "count"
        with pytest.raises(AggregateError):
            get_aggregate("median")

    def test_apply(self):
        assert MinAggregate().apply([3, 1, 2]) == 1
        assert MaxAggregate().apply([3, 1, 2]) == 3
        assert SumAggregate().apply([3, 1, 2]) == 6
        assert CountAggregate().apply([3, 1, 2]) == 3
        assert AvgAggregate().apply([1, 2]) == Fraction(3, 2)

    def test_avg_is_exact(self):
        assert AvgAggregate().apply([1, 1, 1]) == 1

    def test_custom_registration(self):
        from repro.core.aggregates import AggregateFunction

        class Product(AggregateFunction):
            name = "product"

            def apply(self, values):
                result = 1
                for value in values:
                    result *= value
                return result

            def is_neutral(self, subset, partition):
                return all(value == 1 for value, _ in subset)

        register_aggregate(Product())
        assert get_aggregate("product").apply([2, 3]) == 6


class TestConservative:
    def test_equation_8(self):
        assert conservative_expiration(items((5, 10), (7, 3))) == ts(3)

    def test_empty_partition_rejected(self):
        with pytest.raises(AggregateError):
            conservative_expiration([])


class TestTimeSlicedSets:
    def test_grouped_by_expiration(self):
        slices = time_sliced_sets(items((1, 5), (2, 5), (3, 9)))
        assert [len(s) for s in slices] == [2, 1]

    def test_ordered_by_time_with_infinite_last(self):
        slices = time_sliced_sets(items((1, 9), (2, None), (3, 5)))
        assert [s[0][1] for s in slices] == [ts(5), ts(9), INFINITY]


class TestNeutralSets:
    def test_min_ignores_larger_values(self):
        # Partition: min is 1@20; the 5@3 tuple is neutral for min.
        partition = items((5, 3), (1, 20))
        assert neutral_set_expiration(partition, MinAggregate()) == ts(20)
        assert conservative_expiration(partition) == ts(3)

    def test_min_duplicate_minimal_values(self):
        # Two minimal tuples: the earlier-expiring one is neutral.
        partition = items((1, 3), (1, 20))
        assert neutral_set_expiration(partition, MinAggregate()) == ts(20)

    def test_min_contributing_blocks_when_value_would_change(self):
        # The earliest slice holds the unique minimum -> not neutral.
        partition = items((1, 3), (5, 20))
        assert neutral_set_expiration(partition, MinAggregate()) == ts(3)

    def test_max_mirror(self):
        partition = items((5, 3), (9, 20))
        assert neutral_set_expiration(partition, MaxAggregate()) == ts(20)
        partition2 = items((9, 3), (5, 20))
        assert neutral_set_expiration(partition2, MaxAggregate()) == ts(3)

    def test_sum_zero_slices_are_neutral(self):
        # The @3 slice sums to zero: neutral for sum.
        partition = items((5, 3), (-5, 3), (7, 20))
        assert neutral_set_expiration(partition, SumAggregate()) == ts(20)
        assert conservative_expiration(partition) == ts(3)

    def test_sum_nonzero_slice_blocks(self):
        partition = items((5, 3), (7, 20))
        assert neutral_set_expiration(partition, SumAggregate()) == ts(3)

    def test_sum_all_zero_holds_until_partition_dies(self):
        # Cf,P = ∅: the value holds until the whole partition expires.
        partition = items((0, 3), (0, 7))
        assert neutral_set_expiration(partition, SumAggregate()) == ts(7)

    def test_count_strictly_follows_equation_8(self):
        partition = items((5, 3), (7, 20))
        assert neutral_set_expiration(partition, CountAggregate()) == ts(3)
        assert conservative_expiration(partition) == ts(3)

    def test_avg_preserving_slice_is_neutral(self):
        # Slice {4@3} has mean 4 == partition mean {4,2,6} -> neutral.
        partition = items((4, 3), (2, 9), (6, 9))
        assert neutral_set_expiration(partition, AvgAggregate()) == ts(9)

    def test_contributing_set_stops_at_first_non_neutral_slice(self):
        # Slice @3 is neutral for sum, slice @5 is not; slice @7 after a
        # non-neutral slice must not be dropped even though it sums to 0.
        partition = items((0, 3), (5, 5), (0, 7), (9, 9))
        contributors = contributing_set(partition, SumAggregate())
        assert sorted(int(t) for _, t in contributors) == [5, 7, 9]


class TestExactChangePoints:
    def test_value_timeline_min(self):
        partition = items((1, 5), (3, 10))
        timeline = value_timeline(partition, MinAggregate(), ts(0))
        assert [(str(iv), v) for iv, v in timeline] == [
            ("[0, 5)", 1),
            ("[5, 10)", 3),
        ]

    def test_value_timeline_merges_no_change(self):
        # The 9@5 expiry does not change the min.
        partition = items((1, 10), (9, 5))
        timeline = value_timeline(partition, MinAggregate(), ts(0))
        assert [(str(iv), v) for iv, v in timeline] == [("[0, 10)", 1)]

    def test_value_timeline_immortal_tail(self):
        partition = items((1, None), (9, 5))
        timeline = value_timeline(partition, MinAggregate(), ts(0))
        assert timeline[-1][0].end == INFINITY

    def test_exact_expiration_is_first_change(self):
        partition = items((1, 5), (3, 10))
        assert exact_expiration(partition, MinAggregate(), ts(0)) == ts(5)

    def test_exact_expiration_partition_death(self):
        partition = items((1, 5), (1, 5))
        assert exact_expiration(partition, MinAggregate(), ts(0)) == ts(5)

    def test_exact_expiration_never_changes(self):
        partition = items((1, None), (9, 5))
        # 9 expiring never changes the min and 1 never expires.
        assert exact_expiration(partition, MinAggregate(), ts(0)) == INFINITY

    def test_sum_value_can_return(self):
        # sum over {5@3, -5@7, 10@∞}: 10 -> 5 -> 10.
        partition = items((5, 3), (-5, 7), (10, None))
        timeline = value_timeline(partition, SumAggregate(), ts(0))
        values = [v for _, v in timeline]
        assert values == [10, 5, 10]

    def test_change_points_bounded_by_partition_size(self):
        partition = items((1, 2), (2, 4), (3, 6), (4, 8))
        points = change_points(partition, SumAggregate(), ts(0))
        assert len(points) <= len(partition)

    def test_tuple_validity_intervals_include_return(self):
        partition = items((5, 3), (-5, 7), (10, None))
        validity = tuple_validity_intervals(partition, SumAggregate(), ts(0))
        assert validity == IntervalSet.from_pairs([(0, 3), (7, None)])

    def test_fully_expired_partition_rejected(self):
        with pytest.raises(AggregateError):
            exact_expiration(items((1, 3)), MinAggregate(), ts(5))


class TestStrategyOrdering:
    def test_conservative_leq_neutral_leq_exact(self):
        partitions = [
            items((5, 3), (1, 20)),
            items((0, 3), (0, 7)),
            items((5, 3), (-5, 3), (7, 20)),
            items((2, 4), (2, 9), (2, 13)),
            items((1, 2), (3, 5), (2, 8)),
        ]
        for function_name in ("min", "max", "sum", "avg", "count"):
            function = get_aggregate(function_name)
            for partition in partitions:
                conservative = conservative_expiration(partition)
                neutral = neutral_set_expiration(partition, function)
                exact = exact_expiration(partition, function, ts(0))
                assert conservative <= neutral <= exact, (
                    function_name,
                    partition,
                )


class TestAggregateOperator:
    def test_figure_3a_shape(self, catalog):
        # π_{2,3}(agg_{2},count(Pol)) at time 0 = {<25,2>, <35,1>}.
        expr = (
            BaseRef("Pol")
            .aggregate(group_by=[2], function="count",
                       strategy=ExpirationStrategy.CONSERVATIVE)
            .project(2, 3)
        )
        result = evaluate(expr, catalog)
        assert set(result.relation.rows()) == {(25, 2), (35, 1)}
        assert result.relation.expiration_of((25, 2)) == ts(10)
        assert result.relation.expiration_of((35, 1)) == ts(10)

    def test_figure_3a_invalid_from_10(self, catalog):
        expr = (
            BaseRef("Pol")
            .aggregate(group_by=[2], function="count",
                       strategy=ExpirationStrategy.CONSERVATIVE)
            .project(2, 3)
        )
        result = evaluate(expr, catalog)
        assert result.expiration == ts(10)
        # From time 10 the correct result would contain <25,1>, which the
        # materialisation cannot produce.
        recomputed = evaluate(expr, catalog, tau=10)
        assert set(recomputed.relation.rows()) == {(25, 1)}
        assert set(result.relation.exp_at(10).rows()) == set()

    def test_keeps_all_attributes_and_appends_value(self, catalog):
        # Equation (8) output shape: <r(1),...,r(α),a>.
        expr = BaseRef("Pol").aggregate(group_by=[2], function="count")
        result = evaluate(expr, catalog)
        assert set(result.relation.rows()) == {
            (1, 25, 2),
            (2, 25, 2),
            (3, 35, 1),
        }
        assert result.relation.schema.names == ("uid", "deg", "count")

    def test_sum_aggregate(self, catalog):
        expr = BaseRef("El").aggregate(group_by=[], function="sum", attribute=2)
        result = evaluate(expr, catalog)
        values = {row[-1] for row in result.relation.rows()}
        assert values == {75 + 85 + 90}

    def test_min_aggregate_per_group(self):
        rel = relation_from_rows(
            ["g", "v"], [((1, 5), 10), ((1, 9), 20), ((2, 3), 30)]
        )
        expr = Literal(rel).aggregate(group_by=[1], function="min", attribute=2)
        result = evaluate(expr, {})
        assert (1, 5, 5) in result.relation
        assert (2, 3, 3) in result.relation

    def test_avg_aggregate(self):
        rel = relation_from_rows(["g", "v"], [((1, 1), 10), ((1, 2), 10)])
        expr = Literal(rel).aggregate(group_by=[1], function="avg", attribute=2)
        result = evaluate(expr, {})
        assert (1, 1, Fraction(3, 2)) in result.relation

    def test_result_tuple_never_outlives_source_row(self):
        # Exact strategy: the value never changes (both rows value 7), but
        # each result row must still die with its source row.
        rel = relation_from_rows(["g", "v"], [((1, 7), 5), ((2, 7), 50)])
        expr = Literal(rel).aggregate(
            group_by=[], function="min", attribute=2,
            strategy=ExpirationStrategy.EXACT,
        )
        result = evaluate(expr, {})
        assert result.relation.expiration_of((1, 7, 7)) == ts(5)
        assert result.relation.expiration_of((2, 7, 7)) == ts(50)

    def test_group_tuple_recovers_strategy_expiration_via_projection(self):
        rel = relation_from_rows(
            ["g", "v"], [((1, 9), 5), ((1, 7), 50)]
        )
        # min = 7@50; the 9@5 tuple is neutral; group tuple should live to 50.
        expr = (
            Literal(rel)
            .aggregate(group_by=[1], function="min", attribute=2,
                       strategy=ExpirationStrategy.NEUTRAL_SETS)
            .project(1, 3)
        )
        result = evaluate(expr, {})
        assert result.relation.expiration_of((1, 7)) == ts(50)

    def test_count_requires_no_attribute(self, catalog):
        expr = BaseRef("Pol").aggregate(group_by=[2], function="count")
        assert evaluate(expr, catalog).relation

    def test_min_requires_attribute(self):
        with pytest.raises(AlgebraError):
            BaseRef("Pol").aggregate(group_by=[2], function="min")

    def test_empty_group_by_single_partition(self, catalog):
        expr = BaseRef("Pol").aggregate(group_by=[], function="count")
        result = evaluate(expr, catalog)
        assert all(row[-1] == 3 for row in result.relation.rows())


class TestPartitionInvalidation:
    def test_value_change_while_alive_invalidates(self):
        partition = items((1, 5), (3, 10))
        t = partition_invalidation_time(
            partition, MinAggregate(), ts(0), ExpirationStrategy.EXACT
        )
        assert t == ts(5)

    def test_partition_death_does_not_invalidate(self):
        partition = items((1, 5), (2, 5))
        t = partition_invalidation_time(
            partition, MinAggregate(), ts(0), ExpirationStrategy.EXACT
        )
        assert t == INFINITY

    def test_conservative_early_row_loss_invalidates(self):
        # Under Equation (8) rows vanish at min(P) although the value holds.
        partition = items((0, 3), (0, 9))
        t = partition_invalidation_time(
            partition, SumAggregate(), ts(0), ExpirationStrategy.CONSERVATIVE
        )
        assert t == ts(3)

    def test_exact_avoids_that_invalidation(self):
        partition = items((0, 3), (0, 9))
        t = partition_invalidation_time(
            partition, SumAggregate(), ts(0), ExpirationStrategy.EXACT
        )
        assert t == INFINITY

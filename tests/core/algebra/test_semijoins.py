"""Tests for the semijoin and anti-semijoin operators.

The paper's §3.4.2 notes that difference "can be implemented ... as a left
outer anti-semijoin"; here the anti-semijoin is a first-class operator that
generalises difference to key-based matching, with the analogous expiration
and validity semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import AntiSemiJoin, BaseRef, Literal, SemiJoin
from repro.core.intervals import IntervalSet
from repro.core.monotonicity import nonmonotonic_count
from repro.core.relation import relation_from_rows
from repro.core.timestamps import INFINITY, ts
from repro.core.validity import recompute_equals_materialised, validity_oracle
from repro.errors import AlgebraError

values = st.integers(min_value=0, max_value=3)
texps = st.one_of(st.integers(min_value=1, max_value=12), st.none())


def relations(max_size=6):
    row = st.tuples(values, values)
    return st.lists(st.tuples(row, texps), max_size=max_size).map(
        lambda data: relation_from_rows(["k", "v"], data)
    )


class TestSemiJoin:
    def test_figure1_matches(self, catalog):
        # Pol users with an election interest: uids 1 and 2.
        result = evaluate(BaseRef("Pol").semijoin(BaseRef("El"), on=[(1, 1)]), catalog)
        assert set(result.relation.rows()) == {(1, 25), (2, 25)}

    def test_expiration_is_min_of_row_and_best_match(self, catalog):
        result = evaluate(BaseRef("Pol").semijoin(BaseRef("El"), on=[(1, 1)]), catalog)
        # uid 1: min(texp_Pol=10, best match texp_El=5) = 5.
        assert result.relation.expiration_of((1, 25)) == ts(5)

    def test_multiple_matches_take_longest(self):
        left = relation_from_rows(["k", "v"], [((1, 0), 20)])
        right = relation_from_rows(["k", "w"], [((1, 7), 3), ((1, 8), 9)])
        result = evaluate(Literal(left).semijoin(Literal(right), on=[(1, 1)]), {})
        assert result.relation.expiration_of((1, 0)) == ts(9)

    def test_matches_derived_form(self, catalog):
        # ⋉ = π_{1..α(R)}(R ⋈ S), including expiration times.
        direct = evaluate(BaseRef("Pol").semijoin(BaseRef("El"), on=[(1, 1)]), catalog)
        derived = evaluate(
            BaseRef("Pol").join(BaseRef("El"), on=[(1, 1)]).project(1, 2), catalog
        )
        assert direct.relation.same_content(derived.relation)

    def test_is_monotonic(self):
        expr = BaseRef("R").semijoin(BaseRef("S"), on=[(1, 1)])
        assert expr.is_monotonic()
        assert nonmonotonic_count(expr) == 0

    def test_needs_on_pairs(self):
        with pytest.raises(AlgebraError):
            SemiJoin(BaseRef("R"), BaseRef("S"), on=[])

    @settings(max_examples=60, deadline=None)
    @given(left=relations(), right=relations(), tau=st.integers(0, 6),
           delta=st.integers(0, 10))
    def test_theorem1_holds(self, left, right, tau, delta):
        catalog = {"R": left, "S": right}
        expr = BaseRef("R").semijoin(BaseRef("S"), on=[(1, 1)])
        materialised = evaluate(expr, catalog, tau=tau)
        assert materialised.expiration == INFINITY
        assert recompute_equals_materialised(expr, catalog, materialised, tau + delta)


class TestAntiSemiJoin:
    def test_figure1_nonmatches(self, catalog):
        result = evaluate(BaseRef("Pol").antijoin(BaseRef("El"), on=[(1, 1)]), catalog)
        assert set(result.relation.rows()) == {(3, 35)}
        assert result.relation.expiration_of((3, 35)) == ts(10)

    def test_generalises_difference(self, pol, el):
        # On single-attribute relations, R ▷ S on the whole tuple == R − S.
        pol1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in pol.items()])
        el1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in el.items()])
        anti = evaluate(Literal(pol1).antijoin(Literal(el1), on=[(1, 1)]), {})
        diff = evaluate(Literal(pol1).difference(Literal(el1)), {})
        assert anti.relation.same_content(diff.relation)
        assert anti.expiration == diff.expiration
        assert anti.validity == diff.validity

    def test_reappearance_when_match_set_dies(self, catalog):
        # uid 1 is hidden by its El match until time 5, then re-appears
        # (recomputation), vanishing at its own texp 10.
        expr = BaseRef("Pol").antijoin(BaseRef("El"), on=[(1, 1)])
        result = evaluate(expr, catalog, tau=0)
        assert result.expiration == ts(3)  # uid 2's match dies first
        at5 = evaluate(expr, catalog, tau=5)
        assert set(at5.relation.rows()) == {(1, 25), (2, 25), (3, 35)}

    def test_multiple_matches_hide_until_all_die(self):
        left = relation_from_rows(["k", "v"], [((1, 0), 30)])
        right = relation_from_rows(["k", "w"], [((1, 7), 3), ((1, 8), 9)])
        expr = Literal(left).antijoin(Literal(right), on=[(1, 1)])
        result = evaluate(expr, {})
        # Hidden until the LAST match dies at 9 (not the first at 3).
        assert result.expiration == ts(9)
        assert result.validity == IntervalSet.from_pairs([(0, 9), (30, None)])

    def test_match_outliving_left_never_invalidates(self):
        left = relation_from_rows(["k", "v"], [((1, 0), 5)])
        right = relation_from_rows(["k", "w"], [((1, 7), 30)])
        expr = Literal(left).antijoin(Literal(right), on=[(1, 1)])
        result = evaluate(expr, {})
        assert result.expiration == INFINITY

    def test_is_nonmonotonic(self):
        expr = BaseRef("R").antijoin(BaseRef("S"), on=[(1, 1)])
        assert not expr.is_monotonic()
        assert nonmonotonic_count(expr) == 1

    @settings(max_examples=80, deadline=None)
    @given(left=relations(), right=relations())
    def test_analytic_validity_equals_oracle(self, left, right):
        catalog = {"R": left, "S": right}
        expr = BaseRef("R").antijoin(BaseRef("S"), on=[(1, 1)])
        analytic = evaluate(expr, catalog, tau=0).validity
        oracle = validity_oracle(expr, catalog, tau=0)
        assert analytic == oracle

    @settings(max_examples=60, deadline=None)
    @given(left=relations(), right=relations(), tau=st.integers(0, 6),
           delta=st.integers(0, 12))
    def test_theorem2_holds(self, left, right, tau, delta):
        catalog = {"R": left, "S": right}
        expr = BaseRef("R").antijoin(BaseRef("S"), on=[(1, 1)])
        materialised = evaluate(expr, catalog, tau=tau)
        later = ts(tau + delta)
        if later < materialised.expiration:
            assert recompute_equals_materialised(expr, catalog, materialised, later)

"""Tests for expression/predicate serialisation."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import ExpirationStrategy
from repro.core.algebra.expressions import (
    Aggregate,
    AggregateSpec,
    AntiSemiJoin,
    BaseRef,
    Difference,
    Intersect,
    Join,
    Literal,
    Product,
    Project,
    Rename,
    Select,
    SemiJoin,
    Union,
)
from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.predicates import And, Not, Or, TruePredicate, col, val
from repro.core.algebra.serde import (
    expression_from_dict,
    expression_to_dict,
    predicate_from_dict,
    predicate_to_dict,
)
from repro.core.relation import relation_from_rows
from repro.errors import AlgebraError


def roundtrip(expression):
    data = json.loads(json.dumps(expression_to_dict(expression)))
    return expression_from_dict(data)


class TestPredicates:
    def test_comparison(self):
        p = col("deg") > 50
        assert repr(predicate_from_dict(predicate_to_dict(p))) == repr(p)

    def test_connectives(self):
        p = ((col(1) == col(2)) & (col(2) == val(3))) | ~(col(1) == 0)
        assert repr(predicate_from_dict(predicate_to_dict(p))) == repr(p)

    def test_true(self):
        assert isinstance(
            predicate_from_dict(predicate_to_dict(TruePredicate())), TruePredicate
        )

    def test_unknown_kind(self):
        with pytest.raises(AlgebraError):
            predicate_from_dict({"kind": "xor"})


class TestExpressions:
    CASES = [
        BaseRef("Pol"),
        BaseRef("Pol").select(col("deg") == 25),
        BaseRef("Pol").project(2, 1),
        BaseRef("Pol").rename({"deg": "interest"}),
        Product(BaseRef("Pol"), BaseRef("El")),
        Union(BaseRef("Pol"), BaseRef("El")),
        Difference(BaseRef("Pol"), BaseRef("El")),
        Intersect(BaseRef("Pol"), BaseRef("El")),
        Join(BaseRef("Pol"), BaseRef("El"), on=[(1, 1)]),
        Join(BaseRef("Pol"), BaseRef("El"), on=[(1, 1)], predicate=col(4) > 80),
        SemiJoin(BaseRef("Pol"), BaseRef("El"), on=[(1, 1)]),
        AntiSemiJoin(BaseRef("Pol"), BaseRef("El"), on=[(1, 1)]),
        Aggregate(
            BaseRef("Pol"), (2,), AggregateSpec("count"),
            strategy=ExpirationStrategy.CONSERVATIVE,
        ),
        Aggregate(BaseRef("Pol"), (2,), AggregateSpec("min", 1, "lowest")),
        BaseRef("Pol").select(col(2) == 25).project(1).difference(
            BaseRef("El").project(1)
        ),
    ]

    @pytest.mark.parametrize("expression", CASES, ids=lambda e: repr(e)[:60])
    def test_roundtrip_structural_equality(self, expression):
        assert roundtrip(expression) == expression

    def test_json_compatible(self):
        for expression in self.CASES:
            json.dumps(expression_to_dict(expression))

    def test_literal_roundtrip_by_content(self, catalog):
        relation = relation_from_rows(["a"], [((1,), 5), ((2,), None)])
        expression = Literal(relation).select(col(1) == 1)
        rebuilt = roundtrip(expression)
        # Literal equality is identity-based; compare evaluation results.
        original = evaluate(expression, {}, tau=0)
        restored = evaluate(rebuilt, {}, tau=0)
        assert original.relation.same_content(restored.relation)

    def test_roundtrip_preserves_semantics(self, catalog):
        expression = (
            BaseRef("Pol")
            .aggregate(group_by=[2], function="count",
                       strategy=ExpirationStrategy.CONSERVATIVE)
            .project(2, 3)
        )
        rebuilt = roundtrip(expression)
        original = evaluate(expression, catalog, tau=0)
        restored = evaluate(rebuilt, catalog, tau=0)
        assert original.relation.same_content(restored.relation)
        assert original.expiration == restored.expiration
        assert original.validity == restored.validity

    def test_unknown_kind(self):
        with pytest.raises(AlgebraError):
            expression_from_dict({"kind": "teleport"})

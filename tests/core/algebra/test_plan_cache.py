"""The validity-aware plan cache: hits only when provably sound.

A cached result may be served at ``τ'`` iff ``τ' ∈ I(e)`` and the catalog
has not been mutated (data version unchanged) and ``τ'`` is not in the
past of the engine clock.  These tests pin down each leg of that guard,
the exp-composition form of served hits, and the interaction with the
engine's version bumping (mutations invalidate; expiration processing
does not).
"""

import pytest

from repro.core.algebra.evaluator import EvalStats, evaluate
from repro.core.algebra.expressions import BaseRef
from repro.core.algebra.plan_cache import PlanCache
from repro.core.algebra.predicates import col
from repro.core.relation import Relation
from repro.engine.database import Database


def difference_catalog():
    """A non-monotonic setup with a gap in I(e): R - S with a critical tuple."""
    left = Relation(1)
    left.insert((1,), expires_at=20)
    left.insert((2,), expires_at=30)
    right = Relation(1)
    right.insert((1,), expires_at=10)  # critical: invalid on [10, 20)
    return {"R": left, "S": right}


DIFFERENCE = BaseRef("R").difference(BaseRef("S"))


class TestPlanCache:
    def test_first_evaluation_misses_then_hits_inside_validity(self):
        cache = PlanCache()
        catalog = difference_catalog()
        first = cache.evaluate(DIFFERENCE, catalog, tau=0)
        assert (cache.stats.hits, cache.stats.misses) == (0, 1)
        again = cache.evaluate(DIFFERENCE, catalog, tau=5)  # 5 ∈ [0, 10)
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert again.relation.same_content(
            evaluate(DIFFERENCE, catalog, tau=5).relation
        )
        assert first.expiration == again.expiration

    def test_miss_outside_validity_gap(self):
        cache = PlanCache()
        catalog = difference_catalog()
        cache.evaluate(DIFFERENCE, catalog, tau=0)
        # τ' = 12 falls in the invalid gap [10, 20): must recompute.
        result = cache.evaluate(DIFFERENCE, catalog, tau=12)
        assert cache.stats.hits == 0 and cache.stats.misses == 2
        assert result.relation.same_content(
            evaluate(DIFFERENCE, catalog, tau=12).relation
        )
        # The recomputation replaces the cached result; 25 ∈ its validity.
        hit = cache.evaluate(DIFFERENCE, catalog, tau=25)
        assert cache.stats.hits == 1
        assert hit.relation.same_content(
            evaluate(DIFFERENCE, catalog, tau=25).relation
        )

    def test_hit_serves_exp_restricted_relation_and_clipped_validity(self):
        cache = PlanCache()
        catalog = difference_catalog()
        cache.evaluate(DIFFERENCE, catalog, tau=0)
        hit = cache.evaluate(DIFFERENCE, catalog, tau=5)
        fresh = evaluate(DIFFERENCE, catalog, tau=5)
        assert hit.tau.value == 5
        assert hit.relation.same_content(fresh.relation)
        assert hit.validity == fresh.validity
        assert not hit.validity.contains(0)  # clipped to [τ', ∞)

    def test_version_change_invalidates_results_not_plans(self):
        cache = PlanCache()
        catalog = difference_catalog()
        cache.evaluate(DIFFERENCE, catalog, tau=0, version=0)
        catalog["R"].insert((3,), expires_at=40)
        result = cache.evaluate(DIFFERENCE, catalog, tau=1, version=1)
        assert cache.stats.hits == 0 and cache.stats.misses == 2
        assert cache.stats.compilations == 1  # the plan itself was reused
        assert result.relation.contains((3,))

    def test_schema_version_change_recompiles(self):
        cache = PlanCache()
        catalog = difference_catalog()
        cache.evaluate(DIFFERENCE, catalog, tau=0, schema_version=0)
        cache.evaluate(DIFFERENCE, catalog, tau=0, schema_version=1)
        assert cache.stats.compilations == 2

    def test_floor_rejects_past_time_hits(self):
        cache = PlanCache()
        catalog = difference_catalog()
        cache.evaluate(DIFFERENCE, catalog, tau=8)
        # τ' = 3 is within the cached validity's past, but behind the floor.
        cache.evaluate(DIFFERENCE, catalog, tau=3, floor=catalog["R"].earliest_expiration())
        assert cache.stats.hits == 0

    def test_earlier_tau_never_hits(self):
        cache = PlanCache()
        catalog = difference_catalog()
        cache.evaluate(DIFFERENCE, catalog, tau=8)
        cache.evaluate(DIFFERENCE, catalog, tau=3)  # before the cached τ
        assert cache.stats.hits == 0

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        catalog = difference_catalog()
        expressions = [
            BaseRef("R").select(col(1) >= bound) for bound in range(3)
        ]
        for expression in expressions:
            cache.evaluate(expression, catalog, tau=0)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The evicted (oldest) plan recompiles; the newest still hits.
        cache.evaluate(expressions[0], catalog, tau=0)
        assert cache.stats.compilations == 4
        cache.evaluate(expressions[2], catalog, tau=1)
        assert cache.stats.hits == 1

    def test_stats_flow_into_eval_stats(self):
        cache = PlanCache()
        catalog = difference_catalog()
        stats = EvalStats()
        cache.evaluate(DIFFERENCE, catalog, tau=0, stats=stats)
        cache.evaluate(DIFFERENCE, catalog, tau=2, stats=stats)
        assert stats.cache_misses == 1 and stats.cache_hits == 1


class TestDatabaseIntegration:
    def build(self):
        db = Database()
        table = db.create_table("Sessions", ["sid", "user"])
        table.insert((1, 7), expires_at=20)
        table.insert((2, 8), expires_at=30)
        banned = db.create_table("Banned", ["user"])
        banned.insert((8,), expires_at=10)
        return db

    def test_repeated_monotonic_query_hits(self):
        db = self.build()
        expr = db.table_expr("Sessions").select(col(2) >= 7)
        db.evaluate(expr)
        db.evaluate(expr)
        assert db.plan_cache.stats.hits == 1
        assert db.last_eval_stats.cache_hits == 1

    def test_expiration_processing_does_not_invalidate(self):
        """The whole point: clock advances (physical expiry) keep hits."""
        db = self.build()
        expr = db.table_expr("Sessions").antijoin(
            db.table_expr("Banned"), on=[(2, 1)]
        )
        first = db.evaluate(expr)
        db.advance_to(22)  # (1, 7) physically removed by the eager policy
        assert db.plan_cache.stats.misses >= 1
        before = db.plan_cache.stats.hits
        result = db.evaluate(expr)
        if first.validity.contains(db.now):
            assert db.plan_cache.stats.hits == before + 1
        # Served content must equal a fresh interpreted evaluation.
        fresh = db.evaluate(expr, engine="interpreted")
        assert result.relation.same_content(fresh.relation)

    def test_insert_invalidates(self):
        db = self.build()
        expr = db.table_expr("Sessions").select(col(2) >= 7)
        db.evaluate(expr)
        db.table("Sessions").insert((3, 9), expires_at=40)
        result = db.evaluate(expr)
        assert db.plan_cache.stats.hits == 0
        assert result.relation.contains((3, 9))

    def test_delete_invalidates(self):
        db = self.build()
        expr = db.table_expr("Sessions").select(col(2) >= 7)
        db.evaluate(expr)
        db.table("Sessions").delete((1, 7))
        result = db.evaluate(expr)
        assert db.plan_cache.stats.hits == 0
        assert not result.relation.contains((1, 7))

    def test_ddl_recompiles(self):
        db = self.build()
        expr = db.table_expr("Sessions").project(1)
        db.evaluate(expr)
        db.create_table("Extra", ["x"])
        db.evaluate(expr)
        assert db.plan_cache.stats.compilations == 2

    def test_interpreted_engine_bypasses_cache(self):
        db = self.build()
        db.engine = "interpreted"
        expr = db.table_expr("Sessions").project(1)
        db.evaluate(expr)
        db.evaluate(expr)
        assert db.plan_cache.stats.hits == 0
        assert db.plan_cache.stats.misses == 0

    def test_engine_validation(self):
        with pytest.raises(ValueError):
            Database(engine="vectorised")
        db = self.build()
        with pytest.raises(ValueError):
            db.evaluate(db.table_expr("Sessions"), engine="nope")

    def test_past_time_queries_recompute(self):
        """A cached result must not leak pre-purge tuples into past reads."""
        db = self.build()
        expr = db.table_expr("Sessions").project(1)
        db.evaluate(expr)
        db.advance_to(25)
        db.evaluate(expr, at=5)  # behind the clock: floor forbids a hit
        assert db.plan_cache.stats.hits == 0

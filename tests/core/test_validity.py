"""Tests for the validity oracles and the Section 3.3 query policies."""

import pytest

from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import BaseRef
from repro.core.intervals import IntervalSet
from repro.core.timestamps import ts
from repro.core.validity import (
    QueryAnswerer,
    QueryPolicy,
    recompute_equals_materialised,
    relevant_times,
    validity_oracle,
)
from repro.errors import StaleViewError


def diff_expr():
    return BaseRef("Pol").project(1).difference(BaseRef("El").project(1))


class TestOracles:
    def test_relevant_times_cover_expirations(self, catalog):
        points = {int(t) for t in relevant_times(diff_expr(), catalog, 0)}
        # Every base expiration and its neighbours are present.
        for texp in (2, 3, 5, 10, 15):
            assert {texp - 1, texp, texp + 1} <= points

    def test_oracle_matches_manual_analysis(self, catalog):
        oracle = validity_oracle(diff_expr(), catalog, tau=0)
        assert oracle == IntervalSet.from_pairs([(0, 3), (15, None)])

    def test_recompute_check(self, catalog):
        materialised = evaluate(diff_expr(), catalog, tau=0)
        assert recompute_equals_materialised(diff_expr(), catalog, materialised, 2)
        assert not recompute_equals_materialised(diff_expr(), catalog, materialised, 5)
        assert recompute_equals_materialised(diff_expr(), catalog, materialised, 15)


class TestQueryAnswerer:
    def _answerer(self, catalog, policy):
        materialised = evaluate(diff_expr(), catalog, tau=0)
        return QueryAnswerer(diff_expr(), catalog, materialised, policy=policy)

    def test_serves_from_view_inside_validity(self, catalog):
        answerer = self._answerer(catalog, QueryPolicy.RECOMPUTE)
        answer = answerer.answer(2)
        assert answer.from_materialisation
        assert not answer.recomputed
        assert answerer.served_from_view == 1

    def test_recomputes_outside(self, catalog):
        answerer = self._answerer(catalog, QueryPolicy.RECOMPUTE)
        answer = answerer.answer(5)
        assert answer.recomputed
        assert set(answer.relation.rows()) == {(1,), (2,), (3,)}
        assert answerer.recomputations == 1

    def test_move_backward(self, catalog):
        answerer = self._answerer(catalog, QueryPolicy.MOVE_BACKWARD)
        answer = answerer.answer(5)
        assert answer.effective_time == ts(2)  # last valid tick before 3
        assert answer.from_materialisation
        assert answerer.moved_backward == 1

    def test_move_forward(self, catalog):
        answerer = self._answerer(catalog, QueryPolicy.MOVE_FORWARD)
        answer = answerer.answer(5)
        assert answer.effective_time == ts(15)
        assert answer.from_materialisation
        # At 15 everything in the view has expired.
        assert len(answer.relation) == 0

    def test_move_backward_falls_back_to_recompute(self, catalog):
        # Query before any valid time exists is impossible here (validity
        # starts at 0), so exercise the fallback with MOVE_FORWARD on an
        # expression whose validity is bounded... the difference is valid
        # from 15 on, so forward always succeeds; backward at 5 succeeds
        # too.  The recompute fallback fires when a move has nowhere to go:
        answerer = self._answerer(catalog, QueryPolicy.MOVE_FORWARD)
        # Validity extends to infinity, so forward never fails; just check
        # the recompute path is reachable via the RECOMPUTE policy instead.
        assert answerer.answer(4).from_materialisation

    def test_reject_policy(self, catalog):
        answerer = self._answerer(catalog, QueryPolicy.REJECT)
        with pytest.raises(StaleViewError):
            answerer.answer(5)
        # Inside validity it still answers.
        assert answerer.answer(16) is not None

    def test_answers_match_truth_whenever_served(self, catalog):
        """Whatever the policy serves from the view matches a recompute at
        the *effective* time -- the Schrödinger correctness contract."""
        answerer = self._answerer(catalog, QueryPolicy.MOVE_BACKWARD)
        for when in range(0, 20):
            answer = answerer.answer(when)
            truth = evaluate(diff_expr(), catalog, tau=answer.effective_time)
            assert set(answer.relation.rows()) == set(truth.relation.rows())

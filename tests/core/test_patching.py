"""Tests for Theorem 3: priority-queue patching of differences."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patching import (
    DifferencePatcher,
    Patch,
    PatchedDifference,
    compute_difference_with_patches,
)
from repro.core.relation import relation_from_rows
from repro.core.timestamps import INFINITY, ts
from repro.errors import RelationError, StaleViewError

values = st.integers(min_value=0, max_value=4)
texps = st.one_of(st.integers(min_value=1, max_value=15), st.none())


def relations(max_size=8):
    row = st.tuples(values, values)
    return st.lists(st.tuples(row, texps), max_size=max_size).map(
        lambda data: relation_from_rows(["a", "b"], data)
    )


class TestPatcher:
    def test_due_in_order(self):
        patcher = DifferencePatcher(
            [Patch((1,), ts(5), ts(10)), Patch((2,), ts(3), ts(9))]
        )
        assert patcher.peek_due() == ts(3)
        due = patcher.due_patches(5)
        assert [p.row for p in due] == [(2,), (1,)]
        assert len(patcher) == 0

    def test_nothing_due(self):
        patcher = DifferencePatcher([Patch((1,), ts(5), ts(10))])
        assert patcher.due_patches(4) == []
        assert len(patcher) == 1

    def test_infinite_due_never_queued(self):
        patcher = DifferencePatcher([Patch((1,), INFINITY, INFINITY)])
        assert len(patcher) == 0

    def test_apply_skips_already_expired(self):
        patcher = DifferencePatcher([Patch((1,), ts(3), ts(5))])
        target = relation_from_rows(["a"], [])
        # At time 6 the patch is due, but the row has also expired in R.
        assert patcher.apply_to(target, 6) == 0
        assert len(target) == 0

    def test_apply_inserts_with_r_expiration(self):
        patcher = DifferencePatcher([Patch((1,), ts(3), ts(9))])
        target = relation_from_rows(["a"], [])
        assert patcher.apply_to(target, 4) == 1
        assert target.expiration_of((1,)) == ts(9)

    def test_queue_limit_sheds_latest(self):
        patcher = DifferencePatcher(limit=2)
        patcher.add(Patch((1,), ts(3), ts(9)))
        patcher.add(Patch((2,), ts(5), ts(9)))
        patcher.add(Patch((3,), ts(4), ts(9)))
        assert len(patcher) == 2
        # The latest-due patch (due=5) was shed; guarantee shrinks to 5.
        assert patcher.guaranteed_until == ts(5)
        kept = sorted(p.row for p in patcher.due_patches(10))
        assert kept == [(1,), (3,)]

    def test_unlimited_guarantee_is_infinite(self):
        patcher = DifferencePatcher([Patch((1,), ts(3), ts(9))])
        assert patcher.guaranteed_until == INFINITY


class TestComputeWithPatches:
    def test_single_pass_matches_figure3(self, pol, el):
        pol1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in pol.items()])
        el1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in el.items()])
        diff, patcher = compute_difference_with_patches(pol1, el1, tau=0)
        assert set(diff.rows()) == {(3,)}
        # Critical tuples 1 and 2 are queued.
        assert len(patcher) == 2

    def test_storage_bound(self, pol, el):
        # |queue| <= |R ∩ S|.
        pol1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in pol.items()])
        el1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in el.items()])
        _, patcher = compute_difference_with_patches(pol1, el1, tau=0)
        intersection = {row for row in pol1.rows() if row in el1}
        assert len(patcher) <= len(intersection)

    def test_respects_tau(self, pol, el):
        pol1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in pol.items()])
        el1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in el.items()])
        diff, patcher = compute_difference_with_patches(pol1, el1, tau=3)
        # At τ=3, El's uid2 has expired: 2 is in the difference already.
        assert set(diff.rows()) == {(2,), (3,)}
        assert len(patcher) == 1  # only uid 1 still pending


class TestPatchedDifference:
    def test_figure3_walkthrough(self, pol, el):
        pol1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in pol.items()])
        el1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in el.items()])
        view = PatchedDifference(pol1, el1, tau=0)
        assert view.expiration == INFINITY
        assert set(view.view_at(0).rows()) == {(3,)}
        assert set(view.view_at(3).rows()) == {(2,), (3,)}
        assert set(view.view_at(5).rows()) == {(1,), (2,), (3,)}
        # uids 1 and 3 expire in Pol at 10; uid 2 lives to 15.
        assert set(view.view_at(10).rows()) == {(2,)}
        assert set(view.view_at(15).rows()) == set()

    def test_no_time_travel(self, pol, el):
        pol1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in pol.items()])
        el1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in el.items()])
        view = PatchedDifference(pol1, el1, tau=0)
        view.view_at(5)
        with pytest.raises(RelationError):
            view.view_at(4)

    def test_truncated_queue_raises_when_stale(self):
        left = relation_from_rows(["a"], [((1,), 20), ((2,), 20)])
        right = relation_from_rows(["a"], [((1,), 5), ((2,), 8)])
        view = PatchedDifference(left, right, tau=0, limit=1)
        assert view.expiration == ts(8)
        view.view_at(7)
        with pytest.raises(StaleViewError):
            view.view_at(8)

    def test_storage_size(self, pol, el):
        pol1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in pol.items()])
        el1 = relation_from_rows(["uid"], [(r[:1], t) for r, t in el.items()])
        view = PatchedDifference(pol1, el1, tau=0)
        assert view.storage_size == 1 + 2  # one result tuple + two patches

    @settings(max_examples=150, deadline=None)
    @given(
        left=relations(),
        right=relations(),
        times=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=8),
    )
    def test_theorem3_patched_view_always_equals_recomputation(
        self, left, right, times
    ):
        """Theorem 3 end to end: the patched view at ANY later time equals
        a fresh difference computed at that time -- zero recomputations."""
        view = PatchedDifference(left, right, tau=0)
        assert view.expiration == INFINITY
        for when in sorted(times):
            visible_left = left.exp_at(when)
            visible_right = right.exp_at(when)
            truth = {
                row: texp
                for row, texp in visible_left.items()
                if visible_right.expiration_or_none(row) is None
            }
            got = view.view_at(when)
            assert set(got.rows()) == set(truth)
            for row, texp in truth.items():
                assert got.expiration_of(row) == texp


class TestBoundedHeap:
    """The O(log n) dual-heap shedding path of a size-limited patcher."""

    def test_interleaved_add_pop_and_shed(self):
        patcher = DifferencePatcher(limit=2)
        patcher.add(Patch((1,), ts(2), ts(50)))
        patcher.add(Patch((2,), ts(9), ts(50)))
        patcher.add(Patch((3,), ts(4), ts(50)))  # sheds the due=9 patch
        assert patcher.guaranteed_until == ts(9)
        assert len(patcher) == 2
        assert [p.row for p in patcher.due_patches(2)] == [(1,)]
        assert len(patcher) == 1
        patcher.add(Patch((4,), ts(6), ts(50)))
        assert len(patcher) == 2
        patcher.add(Patch((5,), ts(3), ts(50)))  # sheds the due=6 patch
        assert patcher.guaranteed_until == ts(6)
        assert patcher.peek_due() == ts(3)
        assert [p.row for p in patcher.due_patches(10)] == [(5,), (3,)]
        assert len(patcher) == 0

    def test_applied_patches_are_never_shed(self):
        # A patch already popped as due must not be selected for shedding:
        # that would silently drop a live patch and wrongly lower the
        # guarantee horizon to a time that has already passed.
        patcher = DifferencePatcher(limit=2)
        patcher.add(Patch((1,), ts(10), ts(50)))
        patcher.add(Patch((2,), ts(11), ts(50)))
        assert [p.row for p in patcher.due_patches(11)] == [(1,), (2,)]
        patcher.add(Patch((3,), ts(3), ts(50)))
        patcher.add(Patch((4,), ts(4), ts(50)))
        # Queue is exactly at its limit with two live patches; the popped
        # due=10/11 entries are ghosts and must not count or be shed.
        assert len(patcher) == 2
        assert patcher.guaranteed_until == INFINITY
        assert [p.row for p in patcher.due_patches(5)] == [(3,), (4,)]

    def test_peek_skips_shed_entries(self):
        patcher = DifferencePatcher(limit=1)
        patcher.add(Patch((1,), ts(5), ts(50)))
        patcher.add(Patch((2,), ts(3), ts(50)))  # sheds due=5
        assert patcher.peek_due() == ts(3)
        assert len(patcher) == 1
        assert [p.row for p in patcher.due_patches(10)] == [(2,)]
        assert patcher.peek_due() is None

    @given(
        dues=st.lists(st.integers(min_value=1, max_value=30), max_size=40),
        limit=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=200, deadline=None)
    def test_keeps_earliest_patches(self, dues, limit):
        patcher = DifferencePatcher(limit=limit)
        for i, due in enumerate(dues):
            patcher.add(Patch((i,), ts(due), ts(100)))
        kept = sorted(p.due.value for p in patcher.due_patches(1000))
        assert kept == sorted(dues)[:limit]
        shed = sorted(dues)[limit:]
        expected_horizon = ts(min(shed)) if shed else INFINITY
        assert patcher.guaranteed_until == expected_horizon
        assert len(patcher) == 0

"""Tests for relations: exp_τ, max-merge duplicates, purging."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.relation import Relation, relation_from_rows
from repro.core.schema import Schema
from repro.core.timestamps import INFINITY, Timestamp, ts
from repro.errors import RelationError

rows_with_texps = st.lists(
    st.tuples(
        st.tuples(st.integers(0, 20), st.integers(0, 20)),
        st.one_of(st.integers(1, 50), st.none()),
    ),
    max_size=20,
)


class TestConstruction:
    def test_from_names(self):
        assert Relation(["a", "b"]).arity == 2

    def test_from_arity(self):
        assert Relation(3).schema.names == ("a1", "a2", "a3")

    def test_from_rows(self):
        rel = relation_from_rows(["a"], [((1,), 5), ((2,), None)])
        assert len(rel) == 2
        assert rel.expiration_of((2,)) == INFINITY


class TestInsertion:
    def test_insert_and_lookup(self, pol):
        assert pol.expiration_of((1, 25)) == ts(10)
        assert pol.expiration_of((2, 25)) == ts(15)

    def test_arity_checked(self):
        with pytest.raises(RelationError):
            Relation(["a", "b"]).insert((1,))

    def test_duplicate_keeps_max(self):
        rel = Relation(["a"])
        rel.insert((1,), expires_at=5)
        rel.insert((1,), expires_at=9)
        assert rel.expiration_of((1,)) == ts(9)
        rel.insert((1,), expires_at=3)  # shorter: no effect
        assert rel.expiration_of((1,)) == ts(9)
        assert len(rel) == 1

    def test_duplicate_with_infinity_wins(self):
        rel = Relation(["a"])
        rel.insert((1,), expires_at=5)
        rel.insert((1,))  # no expiration = ∞
        assert rel.expiration_of((1,)) == INFINITY

    def test_override_shortens(self):
        rel = Relation(["a"])
        rel.insert((1,), expires_at=9)
        rel.override((1,), expires_at=2)
        assert rel.expiration_of((1,)) == ts(2)

    def test_insert_returns_effective_tuple(self):
        rel = Relation(["a"])
        rel.insert((1,), expires_at=9)
        stored = rel.insert((1,), expires_at=4)
        assert stored.expires_at == ts(9)

    def test_missing_row_raises(self):
        with pytest.raises(RelationError):
            Relation(["a"]).expiration_of((1,))

    def test_expiration_or_none(self):
        rel = Relation(["a"])
        assert rel.expiration_or_none((1,)) is None


class TestExpAt:
    def test_paper_semantics_strictly_greater(self, pol):
        # exp_τ(R) = {r | texp(r) > τ}: at τ=10 the two @10 tuples are gone.
        visible = pol.exp_at(10)
        assert set(visible.rows()) == {(2, 25)}

    def test_at_time_zero_all_visible(self, pol):
        assert len(pol.exp_at(0)) == 3

    def test_does_not_mutate(self, pol):
        pol.exp_at(100)
        assert len(pol) == 3

    def test_idempotent_composition(self, pol):
        # exp_τ'(exp_τ(R)) == exp_τ'(R) for τ <= τ'.
        assert pol.exp_at(5).exp_at(12).same_content(pol.exp_at(12))

    @given(data=rows_with_texps, tau=st.integers(0, 60))
    def test_exp_at_membership(self, data, tau):
        rel = relation_from_rows(["a", "b"], data)
        visible = rel.exp_at(tau)
        for row, texp in rel.items():
            assert (row in visible) == (texp > ts(tau))


class TestDeletionAndPurge:
    def test_delete(self, pol):
        assert pol.delete((1, 25))
        assert not pol.delete((1, 25))
        assert len(pol) == 2

    def test_purge_expired(self, pol):
        removed = pol.purge_expired(10)
        assert removed == 2
        assert set(pol.rows()) == {(2, 25)}

    def test_purge_nothing(self, pol):
        assert pol.purge_expired(0) == 0


class TestStatistics:
    def test_earliest_latest(self, pol):
        assert pol.earliest_expiration() == ts(10)
        assert pol.latest_expiration() == ts(15)

    def test_empty_bounds(self):
        rel = Relation(["a"])
        assert rel.earliest_expiration() == INFINITY
        assert rel.latest_expiration() == ts(0)


class TestEqualityAndCopy:
    def test_same_content_ignores_names(self):
        a = relation_from_rows(["x"], [((1,), 5)])
        b = relation_from_rows(["y"], [((1,), 5)])
        assert a.same_content(b)
        assert a != b  # full equality includes schema

    def test_same_rows_ignores_texps(self):
        a = relation_from_rows(["x"], [((1,), 5)])
        b = relation_from_rows(["x"], [((1,), 99)])
        assert a.same_rows(b)
        assert not a.same_content(b)

    def test_copy_is_independent(self, pol):
        clone = pol.copy()
        clone.delete((1, 25))
        assert len(pol) == 3

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Relation(["a"]))


class TestPretty:
    def test_contains_rows_and_header(self, pol):
        text = pol.pretty("Pol")
        assert "Pol" in text
        assert "texp(.)" in text
        assert "25" in text

    def test_empty_marker(self):
        assert "(empty)" in Relation(["a"]).pretty()

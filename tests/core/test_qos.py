"""Tests for QoS-bounded query answering (§5 extension)."""

import pytest

from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import BaseRef
from repro.core.qos import (
    DelayBound,
    QosAnswerer,
    QosContract,
    StalenessBound,
)
from repro.core.timestamps import ts
from repro.errors import ReproError


def diff_expr():
    # Validity over Figure 1 data: [0,3) U [15, inf).
    return BaseRef("Pol").project(1).difference(BaseRef("El").project(1))


def make_answerer(catalog, contract):
    materialised = evaluate(diff_expr(), catalog, tau=0)
    return QosAnswerer(diff_expr(), catalog, materialised, contract)


class TestContracts:
    def test_validation(self):
        with pytest.raises(ReproError):
            StalenessBound(-1)
        with pytest.raises(ReproError):
            DelayBound(-1)
        with pytest.raises(ReproError):
            QosContract(prefer="sideways")


class TestStaleness:
    def test_exact_inside_validity(self, catalog):
        answerer = make_answerer(catalog, QosContract(staleness=StalenessBound(5)))
        answer = answerer.answer(1)
        assert answer.effective_time == ts(1)
        assert answerer.report.exact == 1

    def test_stale_within_bound(self, catalog):
        # Query at 4; last valid tick is 2 -> staleness 2 <= bound 5.
        answerer = make_answerer(catalog, QosContract(staleness=StalenessBound(5)))
        answer = answerer.answer(4)
        assert answer.effective_time == ts(2)
        assert answer.from_materialisation
        assert answerer.report.served_stale == 1
        assert answerer.report.worst_staleness == 2

    def test_recompute_beyond_bound(self, catalog):
        # Query at 10; staleness would be 8 > bound 5 -> recompute.
        answerer = make_answerer(catalog, QosContract(staleness=StalenessBound(5)))
        answer = answerer.answer(10)
        assert answer.recomputed
        assert answerer.report.recomputed == 1
        # Recomputation is fully fresh.
        assert answer.effective_time == ts(10)

    def test_answers_correct_for_effective_time(self, catalog):
        answerer = make_answerer(catalog, QosContract(staleness=StalenessBound(20)))
        for when in range(0, 20):
            answer = answerer.answer(when)
            truth = evaluate(diff_expr(), catalog, tau=answer.effective_time)
            assert set(answer.relation.rows()) == set(truth.relation.rows())
            if not answer.recomputed:
                assert when - answer.effective_time.value <= 20


class TestDelay:
    def test_delay_within_bound(self, catalog):
        # Query at 13; next valid time is 15 -> delay 2.
        answerer = make_answerer(catalog, QosContract(delay=DelayBound(3)))
        answer = answerer.answer(13)
        assert answer.effective_time == ts(15)
        assert answerer.report.served_delayed == 1
        assert answerer.report.worst_delay == 2

    def test_delay_beyond_bound_recomputes(self, catalog):
        # Query at 5; next valid time 15 -> delay 10 > 3.
        answerer = make_answerer(catalog, QosContract(delay=DelayBound(3)))
        answer = answerer.answer(5)
        assert answer.recomputed


class TestCombined:
    def test_prefer_stale(self, catalog):
        contract = QosContract(
            staleness=StalenessBound(20), delay=DelayBound(20), prefer="stale"
        )
        answerer = make_answerer(catalog, contract)
        answer = answerer.answer(10)
        assert answer.effective_time == ts(2)  # moved backward

    def test_prefer_delay(self, catalog):
        contract = QosContract(
            staleness=StalenessBound(20), delay=DelayBound(20), prefer="delay"
        )
        answerer = make_answerer(catalog, contract)
        answer = answerer.answer(10)
        assert answer.effective_time == ts(15)  # moved forward

    def test_falls_through_preferences(self, catalog):
        # Delay preferred but out of bound; staleness in bound -> stale.
        contract = QosContract(
            staleness=StalenessBound(20), delay=DelayBound(1), prefer="delay"
        )
        answerer = make_answerer(catalog, contract)
        answer = answerer.answer(10)
        assert answer.effective_time == ts(2)

    def test_no_bounds_always_recomputes_outside_validity(self, catalog):
        answerer = make_answerer(catalog, QosContract())
        assert answerer.answer(10).recomputed
        assert not answerer.answer(16).recomputed

    def test_report_aggregates(self, catalog):
        contract = QosContract(staleness=StalenessBound(4))
        answerer = make_answerer(catalog, contract)
        for when in (1, 4, 6, 10, 16):
            answerer.answer(when)
        report = answerer.report
        assert report.queries == 5
        assert report.exact == 2        # 1 and 16
        assert report.served_stale == 2  # 4 and 6 (staleness 2 and 4)
        assert report.recomputed == 1   # 10
        assert 0 < report.mean_staleness < 4
        assert report.recompute_rate == pytest.approx(0.2)

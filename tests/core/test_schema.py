"""Tests for schemas: positions, names, derivation, compatibility."""

import pytest

from repro.core.schema import Schema, anonymous_schema
from repro.errors import SchemaError, UnionCompatibilityError


class TestBasics:
    def test_arity_and_names(self):
        schema = Schema(["uid", "deg"])
        assert schema.arity == 2
        assert schema.names == ("uid", "deg")
        assert len(schema) == 2
        assert list(schema) == ["uid", "deg"]

    def test_positions_are_one_based(self):
        schema = Schema(["a", "b", "c"])
        assert schema.position("a") == 1
        assert schema.position("c") == 3
        assert schema.position(2) == 2
        assert schema.index("c") == 2

    def test_name_lookup(self):
        schema = Schema(["a", "b"])
        assert schema.name(1) == "a"
        assert schema.has("b")
        assert not schema.has("z")

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_bad_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([""])
        with pytest.raises(SchemaError):
            Schema([42])

    def test_out_of_range_position(self):
        schema = Schema(["a"])
        with pytest.raises(SchemaError):
            schema.position(2)
        with pytest.raises(SchemaError):
            schema.position(0)

    def test_unknown_name(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).position("b")

    def test_bad_ref_type(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).position(1.5)


class TestDerivation:
    def test_project(self):
        schema = Schema(["a", "b", "c"])
        assert Schema(["c", "a"]).names == schema.project(["c", "a"]).names

    def test_project_by_position(self):
        schema = Schema(["a", "b", "c"])
        assert schema.project([3, 1]).names == ("c", "a")

    def test_project_duplicate_names_disambiguated(self):
        schema = Schema(["a", "b"])
        assert schema.project(["a", "a"]).names == ("a", "a_2")

    def test_project_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).project([])

    def test_concat(self):
        left = Schema(["uid", "deg"])
        right = Schema(["uid", "deg"])
        assert left.concat(right).names == ("uid", "deg", "uid_r", "deg_r")

    def test_concat_no_clash(self):
        assert Schema(["a"]).concat(Schema(["b"])).names == ("a", "b")

    def test_rename(self):
        schema = Schema(["a", "b"]).rename({"a": "x"})
        assert schema.names == ("x", "b")

    def test_rename_unknown_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).rename({"z": "x"})

    def test_extend(self):
        assert Schema(["a"]).extend("count").names == ("a", "count")

    def test_extend_avoids_clash(self):
        assert Schema(["count"]).extend("count").names == ("count", "count_")


class TestCompatibility:
    def test_union_compatible(self):
        Schema(["a", "b"]).check_union_compatible(Schema(["x", "y"]))

    def test_union_incompatible(self):
        with pytest.raises(UnionCompatibilityError):
            Schema(["a"]).check_union_compatible(Schema(["x", "y"]))


class TestValueSemantics:
    def test_equality(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a", "b"]) != Schema(["b", "a"])

    def test_hash(self):
        assert hash(Schema(["a"])) == hash(Schema(["a"]))

    def test_anonymous(self):
        assert anonymous_schema(3).names == ("a1", "a2", "a3")
        with pytest.raises(SchemaError):
            anonymous_schema(0)

"""Tests for approximate aggregates with error bounds (§5 extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import (
    AvgAggregate,
    CountAggregate,
    MinAggregate,
    SumAggregate,
    exact_expiration,
    get_aggregate,
)
from repro.core.approximate import (
    EXACT_TOLERANCE,
    AbsoluteTolerance,
    RelativeTolerance,
    approximate_expiration,
    approximate_validity,
    max_observed_error,
)
from repro.core.intervals import IntervalSet
from repro.core.timestamps import INFINITY, ts
from repro.errors import AggregateError


def items(*pairs):
    return [(value, ts(texp)) for value, texp in pairs]


class TestTolerances:
    def test_absolute(self):
        tolerance = AbsoluteTolerance(2)
        assert tolerance.accepts(10, 12)
        assert tolerance.accepts(10, 8)
        assert not tolerance.accepts(10, 13)

    def test_relative(self):
        tolerance = RelativeTolerance(0.1)
        assert tolerance.accepts(100, 109)
        assert not tolerance.accepts(100, 111)

    def test_none_values(self):
        assert AbsoluteTolerance(5).accepts(None, None)
        assert not AbsoluteTolerance(5).accepts(10, None)
        assert not AbsoluteTolerance(5).accepts(None, 10)

    def test_negative_rejected(self):
        with pytest.raises(AggregateError):
            AbsoluteTolerance(-1)
        with pytest.raises(AggregateError):
            RelativeTolerance(-0.5)


class TestApproximateExpiration:
    def test_zero_tolerance_equals_exact(self):
        partition = items((5, 3), (8, 10), (20, 30))
        for function in (MinAggregate(), SumAggregate(), CountAggregate()):
            assert approximate_expiration(
                partition, function, ts(0), EXACT_TOLERANCE
            ) == exact_expiration(partition, function, ts(0))

    def test_tolerance_extends_expiration(self):
        # sum: 10 -> 7 at t=3 -> 5 at t=6; with epsilon=3 the first change
        # (drift 3) is acceptable, the second (drift 5) is not.
        partition = items((3, 3), (2, 6), (5, 30))
        exact = approximate_expiration(partition, SumAggregate(), ts(0), EXACT_TOLERANCE)
        loose = approximate_expiration(
            partition, SumAggregate(), ts(0), AbsoluteTolerance(3)
        )
        assert exact == ts(3)
        assert loose == ts(6)

    def test_wide_tolerance_survives_to_partition_death(self):
        partition = items((3, 3), (2, 6), (5, 30))
        very_loose = approximate_expiration(
            partition, SumAggregate(), ts(0), AbsoluteTolerance(100)
        )
        assert very_loose == ts(30)

    def test_partition_death_always_expires(self):
        # No tolerance keeps a tuple past the data.
        partition = items((1, 5), (2, 5))
        assert approximate_expiration(
            partition, SumAggregate(), ts(0), AbsoluteTolerance(10**9)
        ) == ts(5)

    def test_immortal_partition_with_stable_value(self):
        partition = items((1, None), (9, 5))
        assert approximate_expiration(
            partition, MinAggregate(), ts(0), EXACT_TOLERANCE
        ) == INFINITY

    def test_count_with_tolerance(self):
        # count 3 -> 2 -> 1; epsilon=1 tolerates losing one member.
        partition = items((1, 3), (1, 6), (1, 9))
        assert approximate_expiration(
            partition, CountAggregate(), ts(0), AbsoluteTolerance(1)
        ) == ts(6)

    def test_empty_partition_rejected(self):
        with pytest.raises(AggregateError):
            approximate_expiration([], SumAggregate(), ts(0), EXACT_TOLERANCE)

    @settings(max_examples=80, deadline=None)
    @given(
        values=st.lists(
            st.tuples(st.integers(-5, 9), st.integers(1, 20)), min_size=1, max_size=8
        ),
        epsilon=st.integers(0, 10),
        function_name=st.sampled_from(["min", "max", "sum", "count", "avg"]),
    )
    def test_monotone_in_tolerance(self, values, epsilon, function_name):
        partition = items(*values)
        function = get_aggregate(function_name)
        tight = approximate_expiration(partition, function, ts(0), AbsoluteTolerance(epsilon))
        loose = approximate_expiration(
            partition, function, ts(0), AbsoluteTolerance(epsilon + 3)
        )
        assert tight <= loose
        exact = approximate_expiration(partition, function, ts(0), EXACT_TOLERANCE)
        assert exact <= tight


class TestApproximateValidity:
    def test_band_widens_validity(self):
        partition = items((3, 3), (2, 6), (5, 30))
        exact = approximate_validity(partition, SumAggregate(), ts(0), EXACT_TOLERANCE)
        loose = approximate_validity(
            partition, SumAggregate(), ts(0), AbsoluteTolerance(3)
        )
        assert exact == IntervalSet.from_pairs([(0, 3)])
        assert loose == IntervalSet.from_pairs([(0, 6)])
        assert (exact - loose).is_empty

    def test_value_returning_to_band(self):
        # sum 10 -> 5 -> 10: the out-of-band middle window is excluded.
        partition = items((5, 3), (-5, 7), (10, None))
        validity = approximate_validity(
            partition, SumAggregate(), ts(0), AbsoluteTolerance(1)
        )
        assert validity == IntervalSet.from_pairs([(0, 3), (7, None)])


class TestObservedError:
    def test_bounded_by_tolerance_within_expiration(self):
        partition = items((3, 3), (2, 6), (5, 30))
        tolerance = AbsoluteTolerance(3)
        expiration = approximate_expiration(partition, SumAggregate(), ts(0), tolerance)
        worst = max_observed_error(partition, SumAggregate(), ts(0), expiration)
        assert worst <= 3

    def test_error_grows_past_expiration(self):
        partition = items((3, 3), (2, 6), (5, 30))
        worst = max_observed_error(partition, SumAggregate(), ts(0), ts(30))
        assert worst == 5

"""Tests for the monotonic / non-monotonic classification (Section 2.5)."""

from repro.core.algebra.expressions import (
    Aggregate,
    AggregateSpec,
    BaseRef,
    Difference,
    Intersect,
    Join,
    Product,
    Project,
    Select,
    Union,
)
from repro.core.algebra.predicates import col
from repro.core.monotonicity import (
    ExpressionClass,
    classify,
    is_monotonic,
    maintenance_free,
    nonmonotonic_count,
    nonmonotonic_nodes,
)


def agg(child):
    return Aggregate(child, (1,), AggregateSpec("count"))


class TestClassification:
    def test_base_is_monotonic(self):
        assert is_monotonic(BaseRef("R"))

    def test_monotonic_operators(self):
        r, s = BaseRef("R"), BaseRef("S")
        for expr in (
            Select(r, col(1) == 1),
            Project(r, (1,)),
            Product(r, s),
            Union(r, s),
            Intersect(r, s),
            Join(r, s, on=[(1, 1)]),
        ):
            assert classify(expr) is ExpressionClass.MONOTONIC

    def test_difference_is_not(self):
        expr = Difference(BaseRef("R"), BaseRef("S"))
        assert classify(expr) is ExpressionClass.NON_MONOTONIC

    def test_aggregate_is_not(self):
        assert not is_monotonic(agg(BaseRef("R")))

    def test_composition_inherits(self):
        inner = Difference(BaseRef("R"), BaseRef("S"))
        assert not is_monotonic(Project(Select(inner, col(1) == 1), (1,)))

    def test_monotonic_composition_stays_monotonic(self):
        expr = Project(
            Select(Join(BaseRef("R"), BaseRef("S"), on=[(1, 1)]), col(2) == 3),
            (1, 2),
        )
        assert maintenance_free(expr)


class TestAnalysis:
    def test_counts_nested_nodes(self):
        expr = Difference(agg(BaseRef("R")), BaseRef("S"))
        assert nonmonotonic_count(expr) == 2
        kinds = {type(node).__name__ for node in nonmonotonic_nodes(expr)}
        assert kinds == {"Difference", "Aggregate"}

    def test_walk_and_depth(self):
        expr = Project(Select(BaseRef("R"), col(1) == 1), (1,))
        assert expr.depth() == 3
        assert len(list(expr.walk())) == 3
        assert expr.base_names() == {"R"}

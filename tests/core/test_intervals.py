"""Tests for half-open intervals and interval sets (Schrödinger machinery)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.intervals import ALL_TIME, EMPTY_SET, Interval, IntervalSet
from repro.core.timestamps import INFINITY, Timestamp, ts
from repro.errors import TimeError


def interval_sets(max_bound: int = 60):
    """Hypothesis strategy for interval sets over a small finite window."""

    def build(pairs):
        cleaned = []
        for a, b in pairs:
            lo, hi = min(a, b), max(a, b)
            if lo == hi:
                hi = lo + 1
            cleaned.append((lo, hi))
        return IntervalSet.from_pairs(cleaned)

    pair = st.tuples(
        st.integers(min_value=0, max_value=max_bound),
        st.integers(min_value=0, max_value=max_bound),
    )
    return st.lists(pair, max_size=6).map(build)


class TestInterval:
    def test_contains(self):
        interval = Interval(2, 5)
        assert 2 in interval
        assert 4 in interval
        assert 5 not in interval
        assert 1 not in interval

    def test_unbounded(self):
        interval = Interval(3, INFINITY)
        assert 10**9 in interval
        assert interval.duration == INFINITY

    def test_duration(self):
        assert Interval(2, 5).duration == ts(3)

    def test_empty_rejected(self):
        with pytest.raises(TimeError):
            Interval(5, 5)
        with pytest.raises(TimeError):
            Interval(6, 5)

    def test_infinite_start_rejected(self):
        with pytest.raises(TimeError):
            Interval(INFINITY, INFINITY)

    def test_overlaps(self):
        assert Interval(0, 5).overlaps(Interval(4, 9))
        assert not Interval(0, 5).overlaps(Interval(5, 9))  # half-open
        assert Interval(0, INFINITY).overlaps(Interval(100, 200))

    def test_adjacent(self):
        assert Interval(0, 5).adjacent(Interval(5, 9))
        assert not Interval(0, 5).adjacent(Interval(6, 9))

    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 3).intersect(Interval(3, 9)) is None

    def test_value_semantics(self):
        assert Interval(1, 2) == Interval(1, 2)
        assert hash(Interval(1, 2)) == hash(Interval(1, 2))
        assert Interval(1, 2) != Interval(1, 3)


class TestNormalisation:
    def test_merges_overlaps(self):
        s = IntervalSet([Interval(0, 5), Interval(3, 8)])
        assert s.intervals == (Interval(0, 8),)

    def test_coalesces_adjacent(self):
        s = IntervalSet([Interval(0, 5), Interval(5, 8)])
        assert s.intervals == (Interval(0, 8),)

    def test_sorts(self):
        s = IntervalSet([Interval(10, 12), Interval(0, 2)])
        assert s.intervals == (Interval(0, 2), Interval(10, 12))

    def test_infinite_tail_absorbs(self):
        s = IntervalSet([Interval(5, INFINITY), Interval(7, 9)])
        assert s.intervals == (Interval(5, INFINITY),)

    def test_canonical_equality(self):
        a = IntervalSet.from_pairs([(0, 3), (3, 7)])
        b = IntervalSet.from_pairs([(0, 7)])
        assert a == b
        assert hash(a) == hash(b)


class TestMembership:
    def test_contains(self):
        s = IntervalSet.from_pairs([(0, 5), (10, None)])
        assert s.contains(3)
        assert not s.contains(7)
        assert s.contains(100)

    def test_empty(self):
        assert EMPTY_SET.is_empty
        assert not EMPTY_SET.contains(0)
        assert not bool(EMPTY_SET)

    def test_all_time(self):
        assert ALL_TIME.contains(0)
        assert ALL_TIME.contains(10**9)

    def test_next_valid_time(self):
        s = IntervalSet.from_pairs([(5, 8), (12, None)])
        assert s.next_valid_time(0) == ts(5)
        assert s.next_valid_time(6) == ts(6)
        assert s.next_valid_time(9) == ts(12)
        assert EMPTY_SET.next_valid_time(0) is None

    def test_previous_valid_time(self):
        s = IntervalSet.from_pairs([(5, 8), (12, 20)])
        assert s.previous_valid_time(25) == ts(19)
        assert s.previous_valid_time(13) == ts(13)
        assert s.previous_valid_time(10) == ts(7)
        assert s.previous_valid_time(3) is None


class TestSetAlgebra:
    def test_union(self):
        a = IntervalSet.from_pairs([(0, 5)])
        b = IntervalSet.from_pairs([(3, 9)])
        assert (a | b) == IntervalSet.from_pairs([(0, 9)])

    def test_intersection(self):
        a = IntervalSet.from_pairs([(0, 5), (10, 20)])
        b = IntervalSet.from_pairs([(3, 12)])
        assert (a & b) == IntervalSet.from_pairs([(3, 5), (10, 12)])

    def test_difference(self):
        a = IntervalSet.from_pairs([(0, 10)])
        b = IntervalSet.from_pairs([(3, 5)])
        assert (a - b) == IntervalSet.from_pairs([(0, 3), (5, 10)])

    def test_complement(self):
        s = IntervalSet.from_pairs([(3, 5), (8, None)])
        assert s.complement() == IntervalSet.from_pairs([(0, 3), (5, 8)])

    def test_complement_of_empty(self):
        assert EMPTY_SET.complement() == ALL_TIME
        assert ALL_TIME.complement() == EMPTY_SET

    def test_paper_difference_shape(self):
        # The Section 3.4.2 shape: [τ,∞) minus one invalid window.
        validity = IntervalSet.from_onwards(0) - IntervalSet.single(3, 15)
        assert validity == IntervalSet.from_pairs([(0, 3), (15, None)])

    @given(a=interval_sets(), b=interval_sets())
    def test_de_morgan(self, a, b):
        assert (a | b).complement() == a.complement() & b.complement()
        assert (a & b).complement() == a.complement() | b.complement()

    @given(a=interval_sets())
    def test_double_complement(self, a):
        assert a.complement().complement() == a

    @given(a=interval_sets(), b=interval_sets())
    def test_difference_via_complement(self, a, b):
        assert a - b == a & b.complement()

    @given(a=interval_sets(), b=interval_sets(), t=st.integers(min_value=0, max_value=70))
    def test_pointwise_semantics(self, a, b, t):
        assert (a | b).contains(t) == (a.contains(t) or b.contains(t))
        assert (a & b).contains(t) == (a.contains(t) and b.contains(t))
        assert (a - b).contains(t) == (a.contains(t) and not b.contains(t))
        assert a.complement().contains(t) == (not a.contains(t))

    @given(a=interval_sets())
    def test_union_idempotent(self, a):
        assert a | a == a
        assert a & a == a

"""Tests for the invariant catalogue and ``Database.verify``.

Each corruption test desyncs exactly one structure *behind the engine's
back* (the way a bug would) and asserts the matching invariant names it.
"""

import pytest

from repro.check.invariants import Violation, invariant_names, run_invariants
from repro.core.timestamps import INFINITY, ts
from repro.engine.database import Database
from repro.engine.expiration_index import RemovalPolicy
from repro.engine.views import MaintenancePolicy
from repro.errors import InvariantViolation


def build_db(policy=RemovalPolicy.EAGER, **kwargs):
    """A database exercising every audited structure."""
    db = Database(default_removal_policy=policy, **kwargs)
    flat = db.create_table("flat", ["k", "v"])
    part = db.create_table("part", ["k", "v"], partitions=3)
    for key in range(6):
        flat.insert((key, 0), expires_at=10 + key)
        part.insert((key, 0), expires_at=20 + key)
    flat.insert((99, 1))  # immortal
    db.materialise("v_mono", db.table_expr("flat").project(1))
    db.materialise(
        "v_diff",
        db.table_expr("flat").difference(db.table_expr("part")),
        policy=MaintenancePolicy.SCHRODINGER,
    )
    db.evaluate(db.table_expr("flat"))  # populate the plan cache
    return db


def names_of(violations):
    return {violation.invariant for violation in violations}


class TestCleanDatabases:
    @pytest.mark.parametrize(
        "policy", [RemovalPolicy.EAGER, RemovalPolicy.LAZY]
    )
    def test_verify_passes(self, policy):
        db = build_db(policy)
        assert db.verify() == []
        db.advance_to(12)  # partial expiry; lazy tables now buffer entries
        assert db.verify() == []
        db.vacuum_all()
        assert db.verify() == []
        db.close()

    def test_structural_only(self):
        db = build_db()
        assert db.verify(deep=False) == []

    def test_catalogue_names(self):
        assert invariant_names(deep=False) == [
            "index-schedules-stored",
            "index-entries-stored",
            "due-buffer-consistent",
            "shard-routing",
            "physical-covers-live",
        ]
        assert invariant_names()[-2:] == [
            "view-freshness",
            "plan-cache-consistent",
        ]


class TestCorruptionsAreCaught:
    def test_missing_index_entry(self):
        db = build_db()
        db.table("flat")._index.remove((0, 0))
        violations = db.verify(strict=False)
        assert "index-schedules-stored" in names_of(violations)

    def test_phantom_index_entry(self):
        db = build_db()
        db.table("flat")._index.schedule((77, 7), 30)
        violations = db.verify(strict=False)
        assert "index-entries-stored" in names_of(violations)

    def test_index_disagrees_on_time(self):
        db = build_db()
        db.table("flat")._index.schedule((0, 0), 55)  # stored says 10
        violations = db.verify(strict=False)
        assert names_of(violations) >= {
            "index-schedules-stored", "index-entries-stored"
        }

    def test_premature_due_buffer_entry(self):
        db = build_db(RemovalPolicy.LAZY)
        db.table("flat")._due_buffer.append(((0, 0), ts(500)))
        violations = db.verify(strict=False)
        assert "due-buffer-consistent" in names_of(violations)

    def test_misrouted_shard_row(self):
        db = build_db()
        table = db.table("part")
        row = (0, 0)
        owner = hash(row[0]) % table.partitions
        wrong = (owner + 1) % table.partitions
        table.relation.shards[wrong]._tuples[row] = ts(25)
        violations = db.verify(strict=False, deep=False)
        assert "shard-routing" in names_of(violations)

    def test_corrupted_view_materialisation(self):
        db = build_db()
        view = db.view("v_mono")
        view._result.relation.override((1234,), INFINITY)
        violations = db.verify(strict=False)
        assert "view-freshness" in names_of(violations)

    def test_unversioned_mutation_breaks_the_cache(self):
        # The bug class this PR fixes: mutate the relation directly,
        # without note_data_change -- the cached result silently drifts.
        db = build_db()
        db.table("flat").relation.override((50, 5), ts(90))
        violations = db.verify(strict=False)
        assert "plan-cache-consistent" in names_of(violations)

    def test_names_filter(self):
        db = build_db()
        db.table("flat")._index.remove((0, 0))
        only = run_invariants(db, names=["index-entries-stored"])
        assert only == []  # the corruption is invisible to that check
        found = run_invariants(db, names=["index-schedules-stored"])
        assert found and all(
            v.invariant == "index-schedules-stored" for v in found
        )


class TestStrictMode:
    def test_strict_raises_with_detail(self):
        db = build_db()
        db.table("flat")._index.remove((0, 0))
        with pytest.raises(InvariantViolation) as excinfo:
            db.verify()
        assert "index-schedules-stored" in str(excinfo.value)

    def test_violation_str(self):
        violation = Violation("some-check", "T(1,)", "broke")
        assert str(violation) == "[some-check] T(1,): broke"


class TestDebugMode:
    def test_check_invariants_audits_every_mutation(self):
        db = build_db(check_invariants=True)
        db.table("flat")._index.remove((3, 0))  # corrupt behind the API
        with pytest.raises(InvariantViolation):
            db.table("flat").insert((8, 0), expires_at=40)

    def test_check_invariants_audits_sweeps(self):
        db = build_db(check_invariants=True)
        table = db.table("flat")
        # Desync that only bites during a sweep-adjacent audit.
        table.relation.override((0, 0), ts(400))
        with pytest.raises(InvariantViolation):
            db.advance_to(11)

    def test_clean_database_is_unbothered(self):
        db = build_db(check_invariants=True)
        db.table("flat").insert((8, 0), expires_at=40)
        db.advance_to(15)
        db.vacuum_all()
        db.view("v_diff").read()
        assert db.verify() == []
        db.close()

"""Tests for the model-based fuzzer: clean runs, detection, shrinking.

The detection tests re-introduce real bug shapes (including the exact old
``Transaction._undo`` this PR fixed) via monkeypatching and assert the
fuzzer finds them and shrinks the failure -- the acceptance criterion that
the harness actually detects the bug class it was built for.
"""

import pytest

from repro.check.stateful import (
    _replay,
    generate_ops,
    run_fuzz,
)
from repro.engine.table import Table
from repro.engine.transactions import Transaction
from repro.obs.registry import MetricsRegistry

import random


class TestCleanRuns:
    @pytest.mark.parametrize("policy", ["eager", "lazy"])
    def test_fuzz_passes(self, policy):
        report = run_fuzz(101, ops=300, policy=policy)
        assert report.ok
        assert report.ops_run == 300
        assert report.summary().startswith("PASS")

    def test_generation_is_deterministic(self):
        a = generate_ops(random.Random(7), 200)
        b = generate_ops(random.Random(7), 200)
        assert a == b

    def test_metrics_published(self):
        registry = MetricsRegistry()
        run_fuzz(11, ops=120, policy="eager", registry=registry)
        text = registry.to_prom_text()
        assert 'repro_check_ops_total{op="insert"}' in text
        assert "repro_check_shrink_replays_total" in text

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            run_fuzz(1, ops=10, policy="sometimes")


def old_broken_undo(self, undo):
    """The pre-fix Transaction._undo: mutates relations directly."""
    for kind, table_name, row, previous in reversed(undo):
        table = self.database.table(table_name)
        if kind == "insert":
            if previous is None:
                table.relation.delete(row)
            else:
                table.relation.override(row, previous)
        else:
            table.relation.override(row, previous)


def forgetful_delete(self, values):
    """A delete that skips the index/listener/version bookkeeping."""
    from repro.core.tuples import make_row

    return self.relation.delete(make_row(values))


_real_override = Table.override


def maxmerge_override(self, values, expires_at=None, ttl=None):
    """The pre-fix revocation path: silently routed through max-merge.

    A shortening override is dropped on the floor -- exactly the renewal
    bug this op class exists to catch (revocations that never revoke).
    """
    from repro.core.timestamps import ts
    from repro.core.tuples import ExpiringTuple, make_row

    stamp = self.clock.now + ttl if ttl is not None else ts(expires_at)
    row = make_row(values)
    current = self.relation.expiration_or_none(row)
    if current is not None and stamp < current:
        return ExpiringTuple(row, current)  # max-merge: keep the longer
    return _real_override(self, values, expires_at=stamp)


class TestDetection:
    @pytest.mark.parametrize("policy", ["eager", "lazy"])
    def test_reverted_undo_fix_is_caught_and_shrunk(self, monkeypatch, policy):
        monkeypatch.setattr(Transaction, "_undo", old_broken_undo)
        report = run_fuzz(2, ops=400, policy=policy)
        assert not report.ok
        assert report.shrunk  # a minimal repro was produced
        assert len(report.shrunk) <= report.failure.step + 1
        # The shrunk sequence must still reproduce on a fresh database.
        assert _replay(report.shrunk, policy)[1] is not None
        # Minimality at this granularity: dropping any single op heals it.
        if len(report.shrunk) > 1:
            for index in range(len(report.shrunk)):
                candidate = (
                    report.shrunk[:index] + report.shrunk[index + 1:]
                )
                assert _replay(candidate, policy)[1] is None

    def test_bypassed_delete_is_caught(self, monkeypatch):
        monkeypatch.setattr(Table, "delete", forgetful_delete)
        report = run_fuzz(3, ops=400, policy="eager", shrink=False)
        assert not report.ok
        assert report.shrunk is None  # shrink=False reports the raw failure

    def test_failure_metrics(self, monkeypatch):
        monkeypatch.setattr(Transaction, "_undo", old_broken_undo)
        registry = MetricsRegistry()
        report = run_fuzz(2, ops=400, policy="eager", registry=registry)
        assert not report.ok
        text = registry.to_prom_text()
        assert 'repro_check_failures_total{policy="eager"} 1' in text
        assert "repro_check_shrunk_ops" in text
        assert "FAIL" in report.summary()
        assert "shrunk to" in report.summary()


class TestOverrideOp:
    """The last-write op: its oracle is ``model[t][row] = now + ttl``."""

    def test_override_ops_are_generated(self):
        ops = generate_ops(random.Random(9), 600)
        assert any(op[0] == "override" for op in ops)
        # ttl=0 (immediate revocation) must be reachable.
        assert any(op[0] == "override" and op[3] == 0
                   for op in generate_ops(random.Random(9), 5_000))

    @pytest.mark.parametrize("policy", ["eager", "lazy"])
    def test_maxmerged_override_is_caught(self, monkeypatch, policy):
        # Re-introduce the original bug: the revocation path silently
        # routed through max-merge, so shortenings never stick.  The
        # dict oracle (last-write) must diverge.
        monkeypatch.setattr(Table, "override", maxmerge_override)
        report = run_fuzz(5, ops=600, policy=policy)
        assert not report.ok
        assert any(op[0] == "override" for op in report.shrunk)

    def test_override_survives_crash_replay(self):
        # A revocation followed by a crash: recovery must not resurrect
        # the longer pre-override expiration from earlier WAL records.
        ops = [
            ("insert", "flat", (1, 1), 900),
            ("override", "flat", (1, 1), 1),
            ("crash", "clean"),
            ("advance", 2),
        ]
        assert _replay(ops, "eager", crash_points=True)[1] is None


class TestCrashPoints:
    @pytest.mark.parametrize("policy", ["eager", "lazy"])
    def test_crash_fuzz_passes(self, policy):
        report = run_fuzz(202, ops=250, policy=policy, crash_points=True)
        assert report.ok, report.summary()

    def test_crash_ops_are_generated(self):
        ops = generate_ops(random.Random(9), 600, crash_points=True)
        kinds = {op[0] for op in ops}
        assert {"crash", "checkpoint", "compact"} <= kinds
        modes = {op[1] for op in ops if op[0] == "crash"}
        assert modes == {"clean", "torn"}

    def test_generation_without_crash_points_unchanged(self):
        assert generate_ops(random.Random(7), 200) == generate_ops(
            random.Random(7), 200, crash_points=False
        )

    def test_crash_ops_without_wal_rejected(self):
        failure = _replay([("crash", "clean")], "eager")[1]
        assert failure is not None
        assert "crash_points=True" in str(failure)

    def test_recovery_divergence_is_caught(self, monkeypatch):
        # Break recovery itself: physical records stop applying, so a
        # crash silently loses committed rows.  The database still passes
        # its own invariant audit (it is merely emptier), so only the
        # dict-oracle differential can catch this bug class.
        from repro.engine import recovery

        monkeypatch.setattr(
            recovery,
            "_replay_physical",
            lambda db, record, final, batch: False,
        )
        crash_heavy = [
            ("immortal", "flat", (1, 1)),
            ("crash", "clean"),
        ]
        failure = _replay(crash_heavy, "eager", crash_points=True)[1]
        assert failure is not None
        assert failure.op == ("crash", "clean")

    def test_wal_metrics_published(self):
        registry = MetricsRegistry()
        report = run_fuzz(
            202, ops=250, policy="eager", registry=registry,
            crash_points=True,
        )
        assert report.ok, report.summary()
        text = registry.to_prom_text()
        assert "repro_wal_bytes_appended_total" in text
        assert "repro_wal_recovery_seconds" in text


class TestCli:
    def test_main_passes(self, capsys):
        from repro.check.__main__ import main

        assert main(["--ops", "60", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "PASS seed=5 policy=eager" in out
        assert "PASS seed=5 policy=lazy" in out
        assert "repro_check_ops_total" in out

    def test_main_reports_failures(self, capsys, monkeypatch):
        from repro.check.__main__ import main

        monkeypatch.setattr(Transaction, "_undo", old_broken_undo)
        assert main(["--ops", "400", "--seed", "2", "--policy", "eager"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "shrunk to" in out

"""EXPLAIN ANALYZE: span trees with per-operator rows, in both engines."""

import re

import pytest

from repro.engine.database import Database


@pytest.fixture(params=["compiled", "interpreted"])
def db(request):
    database = Database(engine=request.param)
    database.sql("CREATE TABLE Pol (uid, deg)")
    database.sql("CREATE TABLE El (uid)")
    for uid, deg, texp in [(1, 25, 10), (2, 25, 15), (3, 35, 10), (4, 25, 20)]:
        database.sql(f"INSERT INTO Pol VALUES ({uid}, {deg}) EXPIRES AT {texp}")
    database.sql("INSERT INTO El VALUES (1) EXPIRES AT 8")
    return database


QUERY = "SELECT uid FROM Pol WHERE deg = 25 EXCEPT SELECT uid FROM El"


class TestExplainAnalyze:
    def test_message_contains_span_tree(self, db):
        message = db.sql(f"EXPLAIN ANALYZE {QUERY}").message
        assert "analyze:" in message
        for operator in ("evaluate", "Difference", "Select", "BaseRef(Pol)"):
            assert operator in message, operator
        # Every span line carries a wall time.
        assert re.search(r"evaluate .*\(\d+\.\d{3} ms\)", message)

    def test_golden_tree_shape(self, db):
        """The structural rendering (timings masked) is stable per engine."""
        db.sql(f"EXPLAIN ANALYZE {QUERY}")
        tree = db.trace_last_query()
        lines = tree.render(timings=False).splitlines()
        # Drop per-run attributes, keep names + nesting.
        shape = [re.sub(r" \[.*\]$", "", line) for line in lines]
        expected = {
            "compiled": [
                "evaluate",
                "  compile",
                "  Difference",
                "    Project",
                "      Select",
                "        BaseRef(Pol)",
                "    Project",
                "      BaseRef(El)",
            ],
            "interpreted": [
                "evaluate",
                "  Difference",
                "    Project",
                "      Select",
                "        BaseRef(Pol)",
                "    Project",
                "      BaseRef(El)",
            ],
        }
        assert shape == expected[db.engine]

    def test_per_operator_rows_and_tuple_counts(self, db):
        db.sql(f"EXPLAIN ANALYZE {QUERY}")
        tree = db.trace_last_query()
        base = tree.find("BaseRef(Pol)")
        assert base.attrs["rows"] == 4
        select = tree.find("Select")
        assert select.attrs["rows"] == 3
        assert tree.find("Difference").attrs["rows"] == 2
        assert tree.attrs["rows"] == 2
        assert tree.attrs["tuples_scanned"] > 0

    def test_plain_explain_has_no_tree(self, db):
        message = db.sql(f"EXPLAIN {QUERY}").message
        assert "analyze:" not in message
        assert "plan:" in message

    def test_analyze_does_not_pollute_cache_counters(self, db):
        if db.engine != "compiled":
            pytest.skip("cache counters are a compiled-engine concern")
        before = db.plan_cache.stats
        db.sql(f"EXPLAIN ANALYZE {QUERY}")
        after = db.plan_cache.stats
        assert after.hits == before.hits
        assert after.misses == before.misses

    def test_analyze_repeats_execute_for_real(self, db):
        """A second ANALYZE still shows real per-operator execution."""
        db.sql(f"EXPLAIN ANALYZE {QUERY}")
        first = db.trace_last_query()
        db.sql(f"EXPLAIN ANALYZE {QUERY}")
        second = db.trace_last_query()
        assert second is not first
        assert second.find("BaseRef(Pol)").attrs["rows"] == 4


class TestTraceApi:
    def test_evaluate_trace_flag(self, db):
        expr = db.table_expr("Pol").project(2)
        result = db.evaluate(expr, trace=True)
        tree = db.trace_last_query()
        assert tree.name == "evaluate"
        assert tree.attrs["engine"] == db.engine
        assert tree.attrs["rows"] == len(result.relation)
        assert tree.find("BaseRef(Pol)") is not None

    def test_untraced_evaluate_keeps_last(self, db):
        expr = db.table_expr("Pol").project(2)
        db.evaluate(expr, trace=True)
        tree = db.trace_last_query()
        db.evaluate(expr)
        assert db.trace_last_query() is tree

    def test_global_tracer_enable(self, db):
        db.tracer.enable()
        db.evaluate(db.table_expr("Pol").project(1))
        assert db.trace_last_query() is not None
        db.tracer.disable()

    def test_error_during_traced_evaluation_closes_span(self, db):
        from repro.core.algebra.expressions import BaseRef
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            db.evaluate(BaseRef("Missing"), trace=True)
        # The root span was finished despite the error.
        tree = db.trace_last_query()
        assert tree is not None
        assert tree._started is None

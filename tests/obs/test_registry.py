"""Registry semantics: instruments, labels, cardinality, snapshots, exporters."""

import json

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    OVERFLOW_LABEL,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_t_hits_total", "hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("repro_t_hits_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_goes_both_ways(self):
        gauge = MetricsRegistry().gauge("repro_t_entries")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 8

    def test_histogram_bucketing(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_t_seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.01, 0.05, 0.5, 5.0):
            hist.observe(value)
        snap = hist.value
        # Cumulative counts at each upper bound: <=0.01, <=0.1, <=1.0.
        assert snap["buckets"] == [(0.01, 2), (0.1, 3), (1.0, 4)]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(5.565)

    def test_histogram_bounds_sorted_and_nonempty(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_t_s", buckets=(1.0, 0.1))
        assert hist._single().buckets == (0.1, 1.0)
        from repro.obs.registry import Histogram

        with pytest.raises(ValueError):
            Histogram(())


class TestFamilies:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_t_total", "help")
        again = registry.counter("repro_t_total")
        assert first is again

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_t_total")

    def test_label_set_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total", labels=("engine",))
        with pytest.raises(ValueError):
            registry.counter("repro_t_total", labels=("kind",))

    def test_labels_positional_and_keyword_agree(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_t_total", labels=("a", "b"))
        family.labels("x", "y").inc()
        family.labels(b="y", a="x").inc()
        assert family.labels("x", "y").value == 2

    def test_label_arity_checked(self):
        family = MetricsRegistry().counter("repro_t_total", labels=("a", "b"))
        with pytest.raises(ValueError):
            family.labels("only-one")
        with pytest.raises(ValueError):
            family.labels(a="x", c="nope")

    def test_unlabelled_family_proxies_instrument(self):
        family = MetricsRegistry().counter("repro_t_total")
        family.inc(2)
        assert family.value == 2

    def test_labelled_family_rejects_direct_use(self):
        family = MetricsRegistry().counter("repro_t_total", labels=("k",))
        with pytest.raises(ValueError):
            family.inc()

    def test_cardinality_collapses_to_overflow(self):
        registry = MetricsRegistry(max_series=3)
        family = registry.counter("repro_t_total", labels=("key",))
        for i in range(10):
            family.labels(f"k{i}").inc()
        series = dict(family.series())
        assert len(series) == 4  # 3 real + 1 overflow
        assert series[(OVERFLOW_LABEL,)].value == 7
        # The overflow series is stable: more new labels keep landing on it.
        family.labels("k999").inc()
        assert series[(OVERFLOW_LABEL,)].value == 8


class TestSnapshots:
    def test_snapshot_keys_and_diff(self):
        registry = MetricsRegistry()
        hits = registry.counter("repro_t_hits_total", labels=("engine",))
        hits.labels("compiled").inc(3)
        before = registry.snapshot()
        assert before['repro_t_hits_total{engine="compiled"}'] == 3
        hits.labels("compiled").inc(2)
        hits.labels("interpreted").inc()
        delta = registry.diff(before)
        assert delta == {
            'repro_t_hits_total{engine="compiled"}': 2,
            'repro_t_hits_total{engine="interpreted"}': 1,
        }

    def test_snapshot_is_detached(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_t_total")
        counter.inc()
        snap = registry.snapshot()
        counter.inc(10)
        assert snap["repro_t_total"] == 1

    def test_diff_compares_histograms_by_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_t_seconds")
        hist.observe(0.01)
        before = registry.snapshot()
        hist.observe(0.02)
        hist.observe(0.03)
        assert registry.diff(before) == {"repro_t_seconds": 2}


class TestExporters:
    def test_prom_text_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_hits_total", "The hits.", labels=("engine",)) \
            .labels("compiled").inc(7)
        registry.gauge("repro_t_entries", "Entries.").set(3)
        text = registry.to_prom_text()
        assert "# HELP repro_t_hits_total The hits." in text
        assert "# TYPE repro_t_hits_total counter" in text
        assert 'repro_t_hits_total{engine="compiled"} 7' in text
        assert "# TYPE repro_t_entries gauge" in text
        assert "repro_t_entries 3" in text

    def test_prom_text_histogram_shape(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_t_seconds", "Latency.",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = registry.to_prom_text()
        assert 'repro_t_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_t_seconds_bucket{le="1"} 2' in text
        assert 'repro_t_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_t_seconds_sum 0.55" in text
        assert "repro_t_seconds_count 2" in text

    def test_prom_text_declared_but_empty_family_keeps_headers(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total", "Declared, never incremented.",
                         labels=("strategy",))
        text = registry.to_prom_text()
        assert "# TYPE repro_t_total counter" in text

    def test_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total", "Help.", labels=("k",)) \
            .labels("v").inc(2)
        doc = json.loads(registry.to_json())
        [family] = doc
        assert family["name"] == "repro_t_total"
        assert family["kind"] == "counter"
        assert family["series"] == [{"labels": ["v"], "value": 2}]


class TestDisabledRegistry:
    def test_noop_instruments_absorb_everything(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("repro_t_total", labels=("k",))
        counter.labels("x").inc(5)
        registry.histogram("repro_t_seconds").observe(1.0)
        registry.gauge("repro_t_g").set(9)
        assert counter.labels("x").value == 0
        assert registry.snapshot() == {}
        assert registry.to_prom_text() == ""

    def test_default_buckets_are_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS

"""Tracer semantics: nesting, timing accumulation, exception safety."""

import pytest

from repro.obs.tracing import NOOP_SPAN, Span, Tracer


class TestSpan:
    def test_bracketed_timing_accumulates(self):
        span = Span("work")
        span.start()
        span.finish()
        first = span.duration_ms
        span.start()
        span.finish()
        assert span.duration_ms >= first

    def test_add_time_is_incremental(self):
        span = Span("pipeline")
        span.add_time(0.001)
        span.add_time(0.002)
        assert span.duration_ms == pytest.approx(3.0)

    def test_children_and_walk(self):
        root = Span("root")
        a = root.child("a")
        a.child("a1")
        root.child("b")
        assert [s.name for s in root.walk()] == ["root", "a", "a1", "b"]
        assert root.find("a1") is not None
        assert root.find("nope") is None

    def test_note_updates_attrs(self):
        span = Span("op", rows=1)
        span.note(rows=2, engine="compiled")
        assert span.attrs == {"rows": 2, "engine": "compiled"}

    def test_render_without_timings_is_deterministic(self):
        root = Span("evaluate", engine="compiled")
        root.child("Select", rows=3).child("BaseRef(Pol)", rows=10)
        assert root.render(timings=False) == (
            "evaluate [engine=compiled]\n"
            "  Select [rows=3]\n"
            "    BaseRef(Pol) [rows=10]"
        )

    def test_render_with_timings_has_ms(self):
        span = Span("op")
        span.add_time(0.5)
        assert "(500.000 ms)" in span.render()


class TestTracer:
    def test_disabled_tracer_hands_out_noop(self):
        tracer = Tracer()
        with tracer.span("evaluate") as span:
            assert span is NOOP_SPAN
            assert span.child("anything") is NOOP_SPAN
        assert tracer.last is None

    def test_nesting_follows_the_stack(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("innermost"):
                    pass
            with tracer.span("sibling"):
                pass
        root = tracer.last
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner", "sibling"]
        assert root.children[0].children[0].name == "innermost"

    def test_last_is_set_only_when_root_closes(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
            assert tracer.last is None  # root still open
        assert tracer.last.name == "root"

    def test_exception_closes_span_and_stamps_error(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("root"):
                with tracer.span("failing"):
                    raise ValueError("boom")
        root = tracer.last
        assert root is not None  # the stack fully unwound
        assert root.attrs["error"] == "ValueError"
        assert root.children[0].attrs["error"] == "ValueError"
        # The tracer is reusable after the exception.
        with tracer.span("next"):
            pass
        assert tracer.last.name == "next"

    def test_explicit_root_is_caller_managed(self):
        tracer = Tracer()
        span = tracer.root("evaluate", engine="interpreted").start()
        span.child("op")
        span.finish()
        assert tracer.last is span
        assert tracer.last.attrs["engine"] == "interpreted"

    def test_enable_disable(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("on") as span:
            assert span is not NOOP_SPAN
        tracer.disable()
        with tracer.span("off") as span:
            assert span is NOOP_SPAN

"""The redesigned stats API stays backward compatible (one-release shims)."""

import warnings

import pytest

from repro.core.algebra.evaluator import EvalStats
from repro.core.algebra.plan_cache import PlanCache, PlanCacheStats
from repro.engine.database import Database
from repro.engine.statistics import (
    ENGINE_COUNTERS,
    EngineStatistics,
    StatisticsSnapshot,
)
from repro.engine.table import Table
from repro.engine.views import MaintenancePolicy
from repro.obs.registry import MetricsRegistry


class TestEngineStatisticsView:
    def test_attribute_writes_land_in_registry(self):
        registry = MetricsRegistry()
        stats = EngineStatistics(registry=registry)
        stats.inserts += 1
        stats.inserts += 1
        stats.view_recomputations += 1
        snap = registry.snapshot()
        assert snap["repro_engine_inserts_total"] == 2
        assert snap["repro_views_recomputations_total"] == 1

    def test_registry_writes_visible_through_attributes(self):
        registry = MetricsRegistry()
        stats = EngineStatistics(registry=registry)
        registry.counter("repro_engine_inserts_total").inc(5)
        assert stats.inserts == 5

    def test_old_keyword_constructor_still_works(self):
        stats = EngineStatistics(inserts=3, explicit_deletes=1)
        assert stats.inserts == 3
        assert stats.explicit_deletes == 1
        with pytest.raises(TypeError):
            EngineStatistics(not_a_counter=1)

    def test_snapshot_is_frozen(self):
        stats = EngineStatistics()
        stats.inserts += 1
        snap = stats.snapshot()
        assert isinstance(snap, StatisticsSnapshot)
        assert snap.inserts == 1
        stats.inserts += 1
        assert snap.inserts == 1  # detached from the live counters
        with pytest.raises(AttributeError):
            snap.inserts = 99

    def test_diff_reports_deltas(self):
        stats = EngineStatistics()
        before = stats.snapshot()
        stats.inserts += 2
        stats.triggers_fired += 1
        assert stats.diff(before) == {"inserts": 2, "triggers_fired": 1}

    def test_as_dict_order_matches_declaration(self):
        stats = EngineStatistics()
        assert list(stats.as_dict()) == list(ENGINE_COUNTERS)

    def test_reset_warns_but_works(self):
        stats = EngineStatistics()
        stats.inserts += 3
        with pytest.warns(DeprecationWarning):
            stats.reset()
        assert stats.inserts == 0

    def test_standalone_table_gets_private_registry(self):
        from repro.core.schema import Schema
        from repro.engine.clock import LogicalClock

        table = Table("T", Schema(["a"]), clock=LogicalClock())
        table.insert((1,), expires_at=10)
        assert table.statistics.inserts == 1


class TestEvalStatsShim:
    def test_merge_warns_but_accumulates(self):
        a = EvalStats(tuples_scanned=3, cache_hits=1)
        b = EvalStats(tuples_scanned=2, operators_evaluated=4)
        with pytest.warns(DeprecationWarning):
            a.merge(b)
        assert a.tuples_scanned == 5
        assert a.operators_evaluated == 4
        assert a.cache_hits == 1

    def test_as_dict(self):
        stats = EvalStats(tuples_scanned=2)
        assert stats.as_dict()["tuples_scanned"] == 2


class TestPlanCacheStatsView:
    def test_stats_property_is_frozen_snapshot(self):
        cache = PlanCache()
        snap = cache.stats
        assert isinstance(snap, PlanCacheStats)
        with pytest.raises(Exception):  # frozen dataclass
            snap.hits = 5

    def test_counters_live_in_shared_registry(self):
        registry = MetricsRegistry()
        db = Database(metrics=registry)
        db.create_table("T", ["a"]).insert((1,), expires_at=10)
        expr = db.table_expr("T").project(1)
        db.evaluate(expr)
        db.evaluate(expr)
        snap = registry.snapshot()
        assert snap["repro_plan_cache_misses_total"] == db.plan_cache.stats.misses
        assert snap["repro_plan_cache_hits_total"] == db.plan_cache.stats.hits
        assert db.plan_cache.stats.hits >= 1


class TestDatabaseAccessors:
    def test_database_owns_one_registry(self):
        db = Database()
        assert db.statistics.registry is db.metrics
        assert db.plan_cache.registry is db.metrics

    def test_eval_counters_flushed_per_engine(self):
        db = Database()
        db.create_table("T", ["a", "b"]).insert((1, 2), expires_at=10)
        expr = db.table_expr("T").project(1)
        db.evaluate(expr, engine="compiled")
        db.evaluate(expr, engine="interpreted")
        snap = db.metrics.snapshot()
        assert snap['repro_eval_queries_total{engine="compiled"}'] == 1
        assert snap['repro_eval_queries_total{engine="interpreted"}'] == 1
        assert snap['repro_eval_seconds{engine="compiled"}']["count"] == 1

    def test_prom_text_covers_required_families(self):
        db = Database()
        text = db.metrics.to_prom_text()
        for family in (
            "repro_plan_cache_hits_total",
            "repro_expiration_tuples_expired_total",
            "repro_views_recomputations_total",
            "repro_replication_retransmissions_avoided_total",
        ):
            assert family in text, family

    def test_expiration_metrics_by_policy(self):
        from repro.engine.expiration_index import RemovalPolicy

        db = Database()
        eager = db.create_table("E", ["a"], removal_policy=RemovalPolicy.EAGER)
        lazy = db.create_table("L", ["a"], removal_policy=RemovalPolicy.LAZY,
                               lazy_batch_size=1000)
        eager.insert((1,), expires_at=5)
        lazy.insert((2,), expires_at=5)
        db.advance_to(10)
        lazy.vacuum()
        snap = db.metrics.snapshot()
        assert snap['repro_expiration_tuples_expired_total{policy="eager"}'] == 1
        assert snap['repro_expiration_tuples_expired_total{policy="lazy"}'] == 1
        assert snap['repro_expiration_sweep_seconds{policy="eager"}']["count"] >= 1


class TestSyncReportRows:
    def test_rows_derive_from_one_snapshot(self):
        from repro.distributed.metrics import SyncReport

        report = SyncReport(strategy="expiration", queries=4, correct_answers=3,
                            incorrect_answers=1, messages=10, cells=40,
                            retransmissions=2, retransmissions_avoided=5,
                            cells_avoided=20)
        summary = report.summary_row()
        fault = report.fault_tolerance_row()
        assert summary["messages"] == fault["messages"] == 10
        assert summary["cells"] == fault["cells"] == 40
        assert summary["consistency"] == fault["consistency"] == 0.75
        assert fault["retrans_avoided"] == 5

    def test_publish_into_database_registry(self):
        from repro.distributed.metrics import SyncReport

        db = Database()
        report = SyncReport(strategy="expiration", queries=2, correct_answers=2,
                            messages=7, retransmissions_avoided=3)
        report.publish(db.metrics)
        text = db.metrics.to_prom_text()
        assert 'repro_replication_messages_total{strategy="expiration"} 7' in text
        assert ('repro_replication_retransmissions_avoided_total'
                '{strategy="expiration"} 3') in text
        assert 'repro_replication_consistency_ratio{strategy="expiration"} 1' in text


class TestCounterMonotonicity:
    """No registry counter may ever decrease during a workload.

    Historically the view layer decremented the recomputation counter after
    the initial materialisation; this drives a representative workload --
    DDL, inserts, view creation under every policy, reads, refreshes,
    expiration sweeps on flat and partitioned tables -- and checks every
    integer-valued snapshot entry after each step.
    """

    def test_counters_never_decrease(self):
        db = Database()
        previous = {}

        def check(step):
            snap = db.metrics.snapshot()
            for key, value in snap.items():
                if not isinstance(value, (int, float)):
                    continue  # histogram summaries are dicts
                if key in previous:
                    assert value >= previous[key], (
                        f"counter {key} decreased after {step}: "
                        f"{previous[key]} -> {value}"
                    )
                previous[key] = value

        db.create_table("L", ["a"])
        db.create_table("R", ["a"])
        db.create_table("P", ["a"], partitions=4)
        check("create tables")
        for i in range(20):
            db.table("L").insert((i,), expires_at=10 + (i % 5))
            db.table("P").insert((i,), expires_at=6)
        for i in range(0, 20, 3):
            db.table("R").insert((i,), expires_at=8)
        check("inserts")
        expr = db.table_expr("L").difference(db.table_expr("R"))
        db.materialise("mono", db.table_expr("L"))
        db.materialise("schro", expr)
        db.materialise("patched", expr, policy=MaintenancePolicy.PATCH)
        check("materialise views")
        for when in (2, 6, 8, 9, 12):
            db.advance_to(when)
            for name in ("mono", "schro", "patched"):
                db.view(name).read()
            check(f"advance to {when}")
        db.view("schro").refresh()
        db.table("L").insert((99,), expires_at=20)
        db.view("mono").read()
        check("refresh and stale read")
        db.drop_view("patched")
        db.drop_view("schro")
        db.drop_view("mono")
        db.drop_table("P")
        check("teardown")
        db.close()

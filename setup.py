"""Legacy setup shim.

The environment has no network access and no ``wheel`` package, so PEP-517
editable installs fail; this shim enables ``pip install -e . --no-use-pep517``.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

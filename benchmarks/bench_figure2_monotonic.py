"""Experiment F2: regenerate Figure 2 -- monotonic expressions over time.

Paper artefact: Figure 2 (a)-(g): ``π_2(Pol)`` at times 0 and 10, and
``Pol ⋈_{1=3} El`` at times 0, 3, and 5; materialisations maintained by
expiry alone coincide with recomputation at every time (Theorem 1).

Timed operation: evaluating the join at scale with per-tuple expirations.
"""

from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import BaseRef
from repro.workloads.generators import UniformLifetime, random_relation
from repro.workloads.news import figure1_el, figure1_pol

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit


def catalog():
    return {"Pol": figure1_pol(), "El": figure1_el()}


def regenerate():
    cat = catalog()
    rows = []
    projection = BaseRef("Pol").project(2)
    join = BaseRef("Pol").join(BaseRef("El"), on=[(1, 1)])
    for label, expr, tau in (
        ("(c) pi_2(Pol) @ 0", projection, 0),
        ("(d) pi_2(Pol) @ 10", projection, 10),
        ("(e) Pol JOIN El @ 0", join, 0),
        ("(f) Pol JOIN El @ 3", join, 3),
        ("(g) Pol JOIN El @ 5", join, 5),
    ):
        result = evaluate(expr, cat, tau=tau)
        content = sorted(result.relation.rows())
        rows.append((label, content if content else "(empty)"))
    return rows


def print_figure2():
    emit("Figure 2: monotonic expressions", ["expression @ time", "tuples"], regenerate())


def test_figure2_exact_contents():
    contents = dict(regenerate())
    assert contents["(c) pi_2(Pol) @ 0"] == [(25,), (35,)]
    assert contents["(d) pi_2(Pol) @ 10"] == [(25,)]
    assert contents["(e) Pol JOIN El @ 0"] == [(1, 25, 1, 75), (2, 25, 2, 85)]
    assert contents["(f) Pol JOIN El @ 3"] == [(1, 25, 1, 75)]
    assert contents["(g) Pol JOIN El @ 5"] == "(empty)"


def test_figure2_expiry_equals_recomputation():
    cat = catalog()
    join = BaseRef("Pol").join(BaseRef("El"), on=[(1, 1)])
    materialised = evaluate(join, cat, tau=0)
    for tau in (0, 2, 3, 5, 10, 15):
        fresh = evaluate(join, cat, tau=tau)
        assert materialised.relation.exp_at(tau).same_content(fresh.relation)


def test_figure2_join_benchmark(benchmark):
    left = random_relation(["uid", "deg"], 2000, UniformLifetime(1, 300), seed=2,
                           key_range=1000)
    right = random_relation(["uid", "deg"], 2000, UniformLifetime(1, 300), seed=3,
                            key_range=1000)
    cat = {"Pol": left, "El": right}
    join = BaseRef("Pol").join(BaseRef("El"), on=[(1, 1)])

    result = benchmark(lambda: evaluate(join, cat, tau=0))
    assert len(result.relation) > 0
    print_figure2()


if __name__ == "__main__":
    print_figure2()

"""Experiment X3 (ablation, paper §3.4.2): the patch-queue size policy.

The paper: deciding "how many r to keep in the queue ... is a classic
trade-off decision between saving future communication and time/space as
well as up-front communication cost".  The bench sweeps the queue limit of
a patched difference and reports the guaranteed-independence horizon, the
up-front storage/shipping cost, and how many recomputations a client would
still need over the full data lifetime.

Expected shape: guarantee horizon and up-front cost grow with the limit;
with an unbounded queue the guarantee is ∞ and recomputations are zero
(Theorem 3); with limit 0 the behaviour degrades to recompute-at-texp(e).
"""

from repro.core.patching import compute_difference_with_patches
from repro.core.timestamps import INFINITY, ts
from repro.workloads.generators import UniformLifetime, overlapping_relations

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit

HORIZON = 120


def run_limit(limit, size=200, overlap=0.6, seed=163):
    left, right = overlapping_relations(
        ["k", "v"], size, overlap, UniformLifetime(5, HORIZON - 20),
        seed=seed, critical_bias=1.0,
    )
    materialised, patcher = compute_difference_with_patches(
        left, right, tau=0, limit=limit
    )
    upfront = len(materialised) + len(patcher)
    guarantee = patcher.guaranteed_until

    # A client reading every tick: before the guarantee, patches keep it
    # exact; at/after the guarantee it must recompute, and we charge one
    # recomputation per tick in the unguaranteed region where the truth
    # still changes (i.e. until all data expires).
    last_change = 0
    for relation in (left, right):
        for _, texp in relation.items():
            if texp.is_finite:
                last_change = max(last_change, texp.value)
    if guarantee.is_infinite:
        recomputations = 0
        horizon_ticks = "inf"
    else:
        recomputations = max(0, min(last_change, HORIZON) - guarantee.value)
        horizon_ticks = guarantee.value
    return (
        "unbounded" if limit is None else limit,
        len(patcher),
        upfront,
        horizon_ticks,
        recomputations,
    )


def run_sweep(size=200, seed=163):
    return [
        run_limit(limit, size=size, seed=seed)
        for limit in (0, 10, 40, 80, None)
    ]


def print_queue_limit(rows=None):
    emit(
        "Section 3.4.2 ablation: patch-queue size limit",
        ["queue limit", "patches kept", "up-front storage",
         "guaranteed until", "recomputations still needed"],
        rows if rows is not None else run_sweep(),
    )


def test_unbounded_gives_theorem3():
    rows = {row[0]: row for row in run_sweep(size=100, seed=5)}
    unbounded = rows["unbounded"]
    assert unbounded[3] == "inf"
    assert unbounded[4] == 0


def test_guarantee_monotone_in_limit():
    rows = run_sweep(size=100, seed=5)
    finite = [row for row in rows if row[3] != "inf"]
    horizons = [row[3] for row in finite]
    assert horizons == sorted(horizons)
    recomputes = [row[4] for row in finite]
    assert recomputes == sorted(recomputes, reverse=True)


def test_storage_monotone_in_limit():
    rows = run_sweep(size=100, seed=5)
    storage = [row[2] for row in rows]
    assert storage == sorted(storage)


def test_queue_limit_benchmark(benchmark):
    rows = benchmark(run_sweep, size=120, seed=17)
    assert len(rows) == 5
    print_queue_limit()


if __name__ == "__main__":
    print_queue_limit()

"""Experiment X2 (extension, paper §5): view maintenance under updates.

Paper future work: "it would be interesting to lift this restriction
[no updates] and integrate view update techniques".  The bench streams
inserts into the base relations of three view shapes and compares the
incremental maintainer against recompute-on-read, counting evaluator work
(tuples scanned) and wall time.

Expected shape: the incremental view touches O(delta) per insert and
answers identically; recompute-on-read rescans the bases for every read.
"""

import random
import time

from repro.core.algebra.evaluator import Evaluator
from repro.core.algebra.predicates import col
from repro.engine.database import Database
from repro.engine.maintenance import IncrementalView

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit


def make_db():
    db = Database()
    db.create_table("R", ["k", "v"])
    db.create_table("S", ["k", "v"])
    return db


def view_expressions(db):
    return {
        "select-project": db.table_expr("R").select(col(2) > 20).project(1),
        "difference": db.table_expr("R").difference(db.table_expr("S")),
        "group-count": db.table_expr("R").aggregate(group_by=[2], function="count"),
    }


def workload(operations, seed):
    rng = random.Random(seed)
    ops = []
    for step in range(operations):
        table = "R" if rng.random() < 0.7 else "S"
        row = (rng.randrange(60), rng.randrange(8) * 10)
        ops.append((step // 4, table, row, step // 4 + rng.randint(5, 60)))
    return ops


def run_shape(shape, operations=400, reads_every=8, seed=151):
    # Incremental maintainer.
    db = make_db()
    expr = view_expressions(db)[shape]
    view = IncrementalView(db, "v", expr)
    started = time.perf_counter()
    answers_inc = []
    for index, (when, table, row, texp) in enumerate(workload(operations, seed)):
        if when > db.now.value:
            db.advance_to(when)
        db.table(table).insert(row, expires_at=texp)
        if index % reads_every == 0:
            answers_inc.append(frozenset(view.read().rows()))
    incremental_ms = (time.perf_counter() - started) * 1000

    # Recompute-on-read baseline (same stream, fresh evaluation per read).
    db2 = make_db()
    expr2 = view_expressions(db2)[shape]
    started = time.perf_counter()
    scanned = 0
    answers_base = []
    for index, (when, table, row, texp) in enumerate(workload(operations, seed)):
        if when > db2.now.value:
            db2.advance_to(when)
        db2.table(table).insert(row, expires_at=texp)
        if index % reads_every == 0:
            evaluator = Evaluator(db2.catalog, db2.now)
            answers_base.append(
                frozenset(evaluator.evaluate(expr2).relation.rows())
            )
            scanned += evaluator.stats.tuples_scanned
    baseline_ms = (time.perf_counter() - started) * 1000

    assert answers_inc == answers_base, shape
    return {
        "shape": shape,
        "inserts": operations,
        "reads": len(answers_inc),
        "incremental_ms": round(incremental_ms, 1),
        "recompute_ms": round(baseline_ms, 1),
        "baseline_tuples_scanned": scanned,
        "deltas": view.delta_applications,
        "refreshes": view.refreshes,
    }


def run_all(operations=400, seed=151):
    return [
        run_shape(shape, operations=operations, seed=seed)
        for shape in ("select-project", "difference", "group-count")
    ]


def print_incremental(rows=None):
    rows = rows if rows is not None else run_all()
    emit(
        "Extension: incremental maintenance under base inserts",
        ["view shape", "inserts", "reads", "incremental ms", "recompute ms",
         "baseline tuples scanned", "deltas", "refreshes"],
        [
            (r["shape"], r["inserts"], r["reads"], r["incremental_ms"],
             r["recompute_ms"], r["baseline_tuples_scanned"], r["deltas"],
             r["refreshes"])
            for r in rows
        ],
    )


def test_incremental_answers_match_everywhere():
    # run_shape asserts answer equality internally for every read.
    for report in run_all(operations=200, seed=7):
        # One delta per insert into a *referenced* base, never a rebuild.
        assert 0 < report["deltas"] <= report["inserts"]
        assert report["refreshes"] == 1


def test_incremental_benchmark(benchmark):
    report = benchmark(run_shape, "difference", operations=200, seed=13)
    assert report["refreshes"] == 1
    print_incremental()


if __name__ == "__main__":
    print_incremental()

"""Shared table-formatting helpers for the benchmark harnesses.

Every bench prints the rows/series the paper reports (or, for the formal
artefacts, the exact figure contents) through :func:`emit`, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the paper's tables on stdout while pytest-benchmark reports the
timings.  Each bench module is also runnable directly
(``python benchmarks/bench_xxx.py``) to get just the tables.
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Sequence

__all__ = ["format_table", "emit"]


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width table rendering."""
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["", f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def emit(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print a table to real stdout (visible even under pytest capture)."""
    text = format_table(title, headers, rows)
    print(text, file=sys.__stdout__)

"""Experiment X1 (extension, paper §5): approximate aggregates.

Paper future work: "maintaining, e.g., aggregate values with certain error
bounds, we might be able to improve performance".  The bench sweeps an
absolute tolerance over sum/avg/count partitions and reports the mean
tuple lifetime gained and the worst error actually served.

Expected shape: lifetime grows monotonically with the tolerance; observed
error never exceeds it; zero tolerance reproduces Equation (9) exactly.
"""

import random

from repro.core.aggregates import exact_expiration, get_aggregate
from repro.core.approximate import (
    EXACT_TOLERANCE,
    AbsoluteTolerance,
    approximate_expiration,
    max_observed_error,
)
from repro.core.timestamps import ts

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit

HORIZON = 100


def random_partitions(count, size, seed):
    rng = random.Random(seed)
    partitions = []
    for _ in range(count):
        partitions.append(
            [
                (rng.randint(-4, 12), ts(rng.randint(2, HORIZON - 10)))
                for _ in range(size)
            ]
        )
    return partitions


def run_sweep(count=150, size=8, seed=131):
    partitions = random_partitions(count, size, seed)
    rows = []
    for function_name in ("sum", "avg", "count"):
        function = get_aggregate(function_name)
        for epsilon in (0, 1, 3, 8):
            tolerance = AbsoluteTolerance(epsilon) if epsilon else EXACT_TOLERANCE
            lifetime = 0
            worst_error = 0
            for partition in partitions:
                expiration = approximate_expiration(
                    partition, function, ts(0), tolerance
                )
                capped = expiration.value if expiration.is_finite else HORIZON
                lifetime += capped
                error = max_observed_error(partition, function, ts(0), expiration)
                worst_error = max(worst_error, float(error))
            rows.append(
                (
                    function_name,
                    epsilon,
                    round(lifetime / count, 1),
                    round(worst_error, 2),
                    "OK" if worst_error <= max(epsilon, 0) or epsilon == 0 else "VIOLATED",
                )
            )
    return rows


def print_approximate(rows=None):
    emit(
        "Extension: approximate aggregates (absolute tolerance sweep)",
        ["aggregate", "epsilon", "mean tuple lifetime", "worst served error", "bound"],
        rows if rows is not None else run_sweep(),
    )


def test_lifetime_monotone_in_tolerance():
    rows = run_sweep(count=60, size=6, seed=3)
    by_function = {}
    for function_name, epsilon, lifetime, _, _ in rows:
        by_function.setdefault(function_name, []).append((epsilon, lifetime))
    for function_name, series in by_function.items():
        lifetimes = [lifetime for _, lifetime in sorted(series)]
        assert lifetimes == sorted(lifetimes), function_name


def test_error_bounded_by_tolerance():
    for function_name, epsilon, _, worst, verdict in run_sweep(count=60, size=6, seed=3):
        if epsilon > 0:
            assert worst <= epsilon, (function_name, epsilon, worst)
        assert verdict == "OK"


def test_zero_tolerance_is_equation_9():
    partitions = random_partitions(40, 6, seed=9)
    function = get_aggregate("sum")
    for partition in partitions:
        assert approximate_expiration(
            partition, function, ts(0), EXACT_TOLERANCE
        ) == exact_expiration(partition, function, ts(0))


def test_approximate_benchmark(benchmark):
    rows = benchmark(run_sweep, count=60, size=8, seed=21)
    assert rows
    print_approximate()


if __name__ == "__main__":
    print_approximate()

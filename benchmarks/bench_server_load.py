"""Experiment X12: served-engine load -- 10k concurrent clients, one process.

An in-process asyncio load generator drives the :class:`ReproServer` over
its loopback transport (no sockets, no file descriptors, no ``ulimit``):
each simulated client is a real :class:`AsyncSession` doing the full
handshake, framed requests, and closed-loop waits, so the measured path is
the production one -- parse, execute, frame, CRC, deliver.

The workload mixes:

* **readers** (most clients) issuing point queries;
* **writers** inserting short-lived tuples (the expiring workload);
* **subscribers** holding a patch stream over a materialised view while
  the writers churn underneath them;
* a **clock driver** advancing logical time so expiration does its silent
  share of the maintenance.

Latency percentiles (p50/p95/p99) are computed bench-side and published
through ``obs`` as ``repro_server_load_*`` gauges next to the server's own
``repro_server_*`` families, so one scrape shows offered load and server
behaviour together.

``--smoke`` runs the CI gate: 1k concurrent clients, every request must
succeed, p99 below the budget, at least one patch delivered, and a
subscriber's patched view must equal the server-side read at the end.
The full run scales to 10k+ clients and just reports.
"""

import asyncio
import sys
import time

from repro.server.client import AsyncSession
from repro.server.server import ReproServer

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit

#: Smoke-mode p99 budget (seconds) at SMOKE_CLIENTS concurrent clients.
#: Closed-loop saturation means per-request latency is roughly
#: clients x service time; the budget holds that product honest.
SMOKE_P99_BUDGET = 0.75
SMOKE_CLIENTS = 1_000
FULL_CLIENTS = 10_000
REQUESTS_PER_CLIENT = 4
WRITER_SHARE = 0.1     # fraction of clients inserting expiring tuples
SUBSCRIBERS = 20       # clients holding a patch stream during the run
CONNECT_BATCH = 250    # handshake batch size (avoids a thundering herd)


def declare_load_families(registry):
    """The bench-side ``repro_server_load_*`` metric families."""
    return {
        "clients": registry.gauge(
            "repro_server_load_clients",
            "Concurrent simulated clients in the last load run",
        ),
        "requests": registry.counter(
            "repro_server_load_requests_total",
            "Requests completed by the load generator",
        ),
        "failures": registry.counter(
            "repro_server_load_failures_total",
            "Load-generator requests that raised",
        ),
        "latency": registry.gauge(
            "repro_server_load_latency_seconds",
            "Client-observed request latency percentiles",
            labels=("quantile",),
        ),
        "throughput": registry.gauge(
            "repro_server_load_throughput_rps",
            "Completed requests per wall-clock second",
        ),
    }


def percentile(sorted_values, q):
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values)) - 1))
    return sorted_values[rank]


async def run_load(clients, requests_per_client=REQUESTS_PER_CLIENT,
                   subscribers=SUBSCRIBERS):
    """Drive ``clients`` concurrent sessions; returns the report dict."""
    server = ReproServer(max_outbox=512)
    families = declare_load_families(server.db.metrics)

    seed = await AsyncSession.over_loopback(server)
    await seed.execute("CREATE TABLE Readings (sensor, value)")
    for sensor in range(50):
        await seed.execute(
            f"INSERT INTO Readings VALUES ({sensor}, {sensor % 9}) "
            f"EXPIRES AT 1000000"
        )
    await seed.execute(
        "CREATE MATERIALIZED VIEW live AS SELECT sensor FROM Readings"
    )

    # -- connect the fleet (batched handshakes) -----------------------------
    fleet = []
    for start in range(0, clients, CONNECT_BATCH):
        batch = await asyncio.gather(*(
            AsyncSession.over_loopback(server)
            for _ in range(min(CONNECT_BATCH, clients - start))
        ))
        fleet.extend(batch)
    subs = []
    for session in fleet[:subscribers]:
        subs.append((session, await session.subscribe("live")))

    latencies = []
    failures = [0]
    writer_cutoff = max(1, int(clients * WRITER_SHARE))

    async def client_loop(index, session):
        is_writer = index < writer_cutoff
        for round_number in range(requests_per_client):
            if is_writer:
                sensor = 50 + index
                text = (
                    f"INSERT INTO Readings VALUES ({sensor}, {round_number}) "
                    f"EXPIRES AT {100 + round_number * 50}"
                )
            else:
                text = f"SELECT value FROM Readings WHERE sensor = {index % 50}"
            started = time.perf_counter()
            try:
                if is_writer:
                    await session.execute(text)
                else:
                    await session.query(text)
            except Exception:
                failures[0] += 1
            else:
                latencies.append(time.perf_counter() - started)

    async def clock_driver():
        # Advance logical time mid-run: short-lived writer tuples expire
        # and the subscribers' maintenance happens silently.
        for target in (40, 90):
            await asyncio.sleep(0.05)
            await seed.execute(f"ADVANCE TO {target}")

    wall_started = time.perf_counter()
    await asyncio.gather(
        clock_driver(), *(client_loop(i, s) for i, s in enumerate(fleet))
    )
    wall = time.perf_counter() - wall_started

    # Let subscribers absorb the tail of the patch stream, then check one
    # against the server: the differential in the loaded system.
    for session, sub in subs:
        await session.poll(0.02)
        if sub.degraded:
            await session.refetch(sub)
    differential_ok = True
    for session, sub in subs:
        await session.query("SELECT sensor FROM Readings WHERE sensor = 0")
        server_rows = sorted(
            server.db.view("live").read(server.db.clock.now).rows()
        )
        if sub.read() != server_rows:
            differential_ok = False

    latencies.sort()
    done = len(latencies)
    report = {
        "clients": clients,
        "requests": done,
        "failures": failures[0],
        "wall_seconds": wall,
        "throughput_rps": done / wall if wall else 0.0,
        "p50": percentile(latencies, 0.50),
        "p95": percentile(latencies, 0.95),
        "p99": percentile(latencies, 0.99),
        "max": latencies[-1] if latencies else 0.0,
        "patches_sent": server.families["patches"].value,
        "invalidates": server.families["invalidates"].value,
        "frames_out": server.families["frames_out"].value,
        "differential_ok": differential_ok,
    }

    families["clients"].set(clients)
    families["requests"].inc(done)
    if failures[0]:
        families["failures"].inc(failures[0])
    for quantile in ("p50", "p95", "p99", "max"):
        families["latency"].labels(quantile).set(report[quantile])
    families["throughput"].set(report["throughput_rps"])
    report["prom"] = server.db.metrics.to_prom_text()

    for session, _ in subs:
        await session.close()
    await seed.close()
    await server.stop()
    return report


def gate(clients=SMOKE_CLIENTS, budget=SMOKE_P99_BUDGET):
    """The CI smoke gate; returns (report, passed)."""
    report = asyncio.run(run_load(clients))
    passed = (
        report["failures"] == 0
        and report["requests"] == _expected_requests(clients)
        and report["p99"] < budget
        and report["patches_sent"] > 0
        and report["differential_ok"]
    )
    return report, passed


def _expected_requests(clients):
    return clients * REQUESTS_PER_CLIENT


def show(report):
    """Print the X12 table."""
    emit(
        "X12: served-engine load (in-process loopback transport)",
        ["metric", "value"],
        [
            ("concurrent clients", f"{report['clients']:,}"),
            ("requests completed", f"{report['requests']:,}"),
            ("failures", report["failures"]),
            ("wall time", f"{report['wall_seconds']:.2f} s"),
            ("throughput", f"{report['throughput_rps']:,.0f} req/s"),
            ("latency p50", f"{report['p50'] * 1e3:.1f} ms"),
            ("latency p95", f"{report['p95'] * 1e3:.1f} ms"),
            ("latency p99", f"{report['p99'] * 1e3:.1f} ms"),
            ("latency max", f"{report['max'] * 1e3:.1f} ms"),
            ("patch envelopes sent", f"{report['patches_sent']:,}"),
            ("invalidate notices", f"{report['invalidates']:,}"),
            ("frames sent", f"{report['frames_out']:,}"),
            ("subscriber differential", "ok" if report["differential_ok"] else "MISMATCH"),
        ],
    )


def test_smoke_load_gate():
    """Pytest entry: a reduced fleet must clear every smoke criterion."""
    report, passed = gate(clients=200, budget=SMOKE_P99_BUDGET)
    assert report["failures"] == 0
    assert report["requests"] == _expected_requests(200)
    assert report["patches_sent"] > 0
    assert report["differential_ok"]
    assert passed


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    clients = SMOKE_CLIENTS if smoke else FULL_CLIENTS
    for arg in sys.argv[1:]:
        if arg.startswith("--clients="):
            clients = int(arg.split("=", 1)[1])
    if smoke:
        report, passed = gate(clients=clients)
        show(report)
        print(
            f"smoke gate at {clients:,} clients: p99 "
            f"{report['p99'] * 1e3:.1f} ms (budget "
            f"{SMOKE_P99_BUDGET * 1e3:.0f} ms), failures "
            f"{report['failures']}, differential "
            f"{'ok' if report['differential_ok'] else 'MISMATCH'}"
        )
        if not passed:
            print("FAIL: served-engine smoke gate")
            raise SystemExit(1)
        print("OK: served-engine smoke gate")
    else:
        report = asyncio.run(run_load(clients))
        show(report)

"""Experiment X6: a macro query through the whole evaluator.

Not a paper artefact -- a performance-regression guard for the evaluator
as a system: a realistic plan (join + selection + grouped aggregation +
difference) over 10k-row relations, with the full expiration machinery
(per-tuple texps, exact change points, validity interval sets) engaged.

Reported: wall time and the size of the validity interval set, across
input sizes; asserted: the analytic texp(e)/validity stay consistent with
spot recomputation checks even at scale.

``--smoke`` runs the observability overhead gate instead: the macro query
through a fully-instrumented :class:`Database` versus one whose registry
is disabled (no-op instruments), failing when the instrumented median is
more than 5% slower.  ``--dump FILE`` writes the instrumented run's
Prometheus text dump (the CI artifact).
"""

import statistics
import time

from repro.core.aggregates import ExpirationStrategy
from repro.core.algebra.evaluator import Evaluator
from repro.core.algebra.expressions import BaseRef
from repro.core.algebra.predicates import col
from repro.core.validity import recompute_equals_materialised
from repro.workloads.generators import UniformLifetime, random_relation

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit


def build_catalog(size, seed=223):
    return {
        "Users": random_relation(["uid", "segment"], size, UniformLifetime(10, 400),
                                 seed=seed, key_range=size, value_domain=20),
        "Events": random_relation(["uid", "kind"], size, UniformLifetime(5, 300),
                                  seed=seed + 1, key_range=size, value_domain=8),
        "Banned": random_relation(["uid"], size // 10, UniformLifetime(50, 500),
                                  seed=seed + 2, key_range=size),
    }


def macro_plan():
    """Active segments histogram, excluding banned users."""
    engaged = (
        BaseRef("Users")
        .join(BaseRef("Events"), on=[(1, 1)])
        .select(col(4) >= 2)
        .project(1, 2)
        .antijoin(BaseRef("Banned"), on=[(1, 1)])
    )
    return engaged.aggregate(
        group_by=[2], function="count", strategy=ExpirationStrategy.EXACT
    ).project(2, 3)


def run_once(size, seed=223):
    catalog = build_catalog(size, seed)
    evaluator = Evaluator(catalog, 0)
    started = time.perf_counter()
    result = evaluator.evaluate(macro_plan())
    elapsed_ms = (time.perf_counter() - started) * 1000
    return {
        "size": size,
        "ms": round(elapsed_ms, 1),
        "rows": len(result.relation),
        "validity_intervals": len(result.validity),
        "tuples_scanned": evaluator.stats.tuples_scanned,
        "result": result,
        "catalog": catalog,
    }


def run_sweep(sizes=(1_000, 4_000, 10_000), seed=223):
    return [
        {k: v for k, v in run_once(size, seed).items() if k not in ("result", "catalog")}
        for size in sizes
    ]


def print_macro(rows=None):
    rows = rows if rows is not None else run_sweep()
    emit(
        "Macro query: join + select + antijoin + exact-strategy GROUP BY",
        ["|base|", "ms", "result rows", "validity intervals", "tuples scanned"],
        [(r["size"], r["ms"], r["rows"], r["validity_intervals"],
          r["tuples_scanned"]) for r in rows],
    )


def build_database(size, seed=223, metrics_enabled=True):
    """The X6 catalog loaded into an instrumented (or no-op) Database."""
    from repro.engine.database import Database
    from repro.obs.registry import MetricsRegistry

    db = Database(metrics=MetricsRegistry(enabled=metrics_enabled))
    for name, relation in build_catalog(size, seed).items():
        table = db.create_table(name, relation.schema)
        for row, texp in relation.items():
            table.insert(row, expires_at=texp if texp.is_finite else None)
    return db


def overhead_gate(size=1_500, iterations=3, reps=5, threshold=0.05):
    """Instrumented vs no-op registry on the macro query; returns a report.

    Each rep times ``iterations`` full re-executions (the result cache is
    defeated with ``note_data_change`` so every run exercises the whole
    pipeline) in both modes, interleaved to decorrelate machine drift;
    the gate compares medians.
    """
    plan = macro_plan()
    databases = {
        mode: build_database(size, metrics_enabled=mode) for mode in (True, False)
    }
    samples = {True: [], False: []}
    for _ in range(reps):
        for mode in (True, False):
            db = databases[mode]
            started = time.perf_counter()
            for _ in range(iterations):
                db.note_data_change()  # defeat the result cache, keep the plan
                db.evaluate(plan)
            samples[mode].append(time.perf_counter() - started)
    instrumented = statistics.median(samples[True])
    baseline = statistics.median(samples[False])
    overhead = (instrumented - baseline) / baseline if baseline else 0.0
    return {
        "instrumented_s": instrumented,
        "baseline_s": baseline,
        "overhead": overhead,
        "passed": overhead <= threshold,
        "threshold": threshold,
        "metrics": databases[True].metrics,
    }


def test_macro_validity_spot_checks():
    report = run_once(800, seed=7)
    result, catalog = report["result"], report["catalog"]
    plan = macro_plan()
    # Spot-check the analytic validity at a handful of time points.
    for when in (0, 5, 25, 60, 120, 300):
        expected = result.validity.contains(when)
        actual = recompute_equals_materialised(plan, catalog, result, when)
        assert expected == actual, when


def test_macro_scales_subquadratically():
    rows = run_sweep(sizes=(1_000, 4_000), seed=7)
    small, large = rows
    # 4x input must cost well under 16x (i.e. nothing quadratic sneaked in).
    assert large["ms"] < max(small["ms"], 0.5) * 12


def test_macro_query_benchmark(benchmark):
    report = benchmark(run_once, 4_000, 17)
    assert report["rows"] >= 0
    print_macro()


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        report = overhead_gate()
        print(
            f"instrumented {report['instrumented_s'] * 1000:.1f} ms vs "
            f"no-op {report['baseline_s'] * 1000:.1f} ms -- overhead "
            f"{report['overhead']:+.1%} (gate: {report['threshold']:.0%})"
        )
        if "--dump" in sys.argv:
            path = sys.argv[sys.argv.index("--dump") + 1]
            with open(path, "w") as handle:
                handle.write(report["metrics"].to_prom_text())
            print(f"prom dump written to {path}")
        if not report["passed"]:
            print("FAIL: instrumentation overhead above the gate")
            raise SystemExit(1)
        print("OK: instrumentation overhead within the gate")
    else:
        print_macro()

"""Experiment S34a: aggregate expiration strategies and their validity.

Paper artefacts: Equation (8) vs Table 1 vs Equation (9), and the Section
3.4.1 memory bound (#future aggregate states <= |partition|).

The bench materialises GROUP BY aggregations over a sensor-style workload
under all three strategies and reports (a) the mean result-tuple lifetime,
(b) the expression-level texp(e), (c) how many recomputations a RECOMPUTE
view needs over a horizon, and (d) the change-point memory bound check.
Expected shape: lifetimes conservative <= neutral <= exact; recomputations
decrease in the same order; the memory bound always holds.
"""

from repro.core.aggregates import (
    ExpirationStrategy,
    change_points,
    get_aggregate,
)
from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import BaseRef
from repro.core.timestamps import ts
from repro.engine.database import Database
from repro.engine.views import MaintenancePolicy
from repro.workloads.generators import UniformLifetime, random_relation

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit

HORIZON = 120


def build_database(size, seed):
    relation = random_relation(
        ["sensor", "value"], size, UniformLifetime(5, HORIZON - 10),
        seed=seed, value_domain=60, key_range=10,
    )
    db = Database()
    table = db.create_table("Readings", ["sensor", "value"])
    for row, texp in relation.items():
        table.insert(row, expires_at=texp)
    return db


def run_strategy(function, strategy, size=200, seed=83):
    db = build_database(size, seed)
    attribute = None if function == "count" else 2
    expr = (
        db.table_expr("Readings")
        .aggregate(group_by=[1], function=function, attribute=attribute,
                   strategy=strategy)
        .project(1, 3)
    )
    materialised = db.evaluate(expr)
    lifetimes = [
        texp.value if texp.is_finite else HORIZON
        for _, texp in materialised.relation.items()
    ]
    view = db.materialise(f"v_{function}_{strategy.value}", expr,
                          policy=MaintenancePolicy.RECOMPUTE)
    for when in range(0, HORIZON):
        db.advance_to(when)
        view.read()
    return {
        "function": function,
        "strategy": strategy.value,
        "mean_tuple_lifetime": round(sum(lifetimes) / len(lifetimes), 1),
        "texp_e": str(materialised.expiration),
        "recomputations": view.recomputations,
    }


def run_all(size=200, seed=83, functions=("count", "min", "sum")):
    rows = []
    for function in functions:
        for strategy in (
            ExpirationStrategy.CONSERVATIVE,
            ExpirationStrategy.NEUTRAL_SETS,
            ExpirationStrategy.EXACT,
        ):
            rows.append(run_strategy(function, strategy, size=size, seed=seed))
    return rows


def memory_bound_check(size=300, seed=19):
    """Section 3.4.1: #change points <= |partition| for every partition."""
    relation = random_relation(["sensor", "value"], size, UniformLifetime(2, 80),
                               seed=seed, value_domain=60, key_range=8)
    partitions = {}
    for row, texp in relation.items():
        partitions.setdefault(row[0], []).append((row[1], texp))
    rows = []
    for name in ("min", "max", "sum", "avg", "count"):
        function = get_aggregate(name)
        worst = 0.0
        total_points = 0
        for members in partitions.values():
            points = change_points(members, function, ts(0))
            assert len(points) <= len(members)
            worst = max(worst, len(points) / len(members))
            total_points += len(points)
        rows.append((name, total_points, f"{worst:.2f}", "<= 1.00 OK"))
    return rows


def print_strategies(rows=None):
    rows = rows if rows is not None else run_all()
    emit(
        "Section 2.6.1 / 3.4.1: aggregate expiration strategies",
        ["aggregate", "strategy", "mean tuple lifetime", "texp(e)", "recomputations"],
        [
            (r["function"], r["strategy"], r["mean_tuple_lifetime"],
             r["texp_e"], r["recomputations"])
            for r in rows
        ],
    )
    emit(
        "Section 3.4.1: change-point memory bound (<= |partition|)",
        ["aggregate", "total change points", "worst points/|P|", "bound"],
        memory_bound_check(),
    )


def test_lifetimes_ordered_by_strategy():
    rows = run_all(size=120, seed=3, functions=("min", "sum"))
    by_function = {}
    for r in rows:
        by_function.setdefault(r["function"], {})[r["strategy"]] = r
    for function, strategies in by_function.items():
        conservative = strategies["conservative"]["mean_tuple_lifetime"]
        neutral = strategies["neutral_sets"]["mean_tuple_lifetime"]
        exact = strategies["exact"]["mean_tuple_lifetime"]
        assert conservative <= neutral <= exact, function


def test_recomputations_never_increase_with_better_strategy():
    rows = run_all(size=120, seed=3, functions=("min", "sum"))
    by_function = {}
    for r in rows:
        by_function.setdefault(r["function"], {})[r["strategy"]] = r
    for function, strategies in by_function.items():
        assert (
            strategies["exact"]["recomputations"]
            <= strategies["conservative"]["recomputations"]
        ), function


def test_memory_bound_holds():
    rows = memory_bound_check(size=150, seed=5)
    assert all(float(worst) <= 1.0 for _, _, worst, _ in rows)


def test_aggregate_strategies_benchmark(benchmark):
    report = benchmark(run_strategy, "min", ExpirationStrategy.EXACT,
                       size=100, seed=13)
    assert report["recomputations"] >= 0
    print_strategies()


if __name__ == "__main__":
    print_strategies()

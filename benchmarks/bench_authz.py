"""Experiment X13: the expiring-authorization workload at scale.

Millions of grants, refresh tokens, and lockouts whose lifecycle is
nothing but expiration times (ROADMAP item 2, DESIGN §5i).  The store
under test is :class:`repro.workloads.authz.AuthzStore`: direct grants on
a hash-partitioned columnar table answered by O(1) stored-expiration
probes, the role/group hierarchy resolved through incrementally
maintained join views, and every revocation an ``override`` -- the
last-write path that, unlike max-merge ``renew``, can *shorten* a
lifetime.

Three measured phases over a >=1M-grant store (full mode):

1. **mix** -- a 95/5 check/write interleave (the serving steady state);
2. **churn** -- renewal-heavy token refresh plus revocations and
   lockouts, with the *revocation differential* asserted inline: the
   moment an ``override`` commits, ``check()`` must deny -- zero
   violations is a hard gate, not a statistic;
3. **served** (``--served``) -- the same semantics driven through
   ``repro.connect()`` sessions as SQL (``UPDATE ... EXPIRES IN 0``),
   differentially asserted over the session boundary.

Check latency is recorded twice on purpose: exact percentiles from a
local sample list, and the ``repro_authz_check_seconds`` histogram in the
obs registry (what production would scrape) -- the report prints both so
the bucketed estimate can be sanity-checked against ground truth.  The
gate: zero differential violations and sample p99 within budget.
"""

import random
import time

from repro import connect
from repro.workloads.authz import AuthzStore

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit

RELATIONS = ("read", "write", "own", "share")
GRANT_TTL = (500, 5_000)  # uniform range, ticks
ROLES = 64
GROUPS = 32
ROLE_GRANTS_PER_ROLE = 50
MEMBERS = 2_000


def percentile(sample, q):
    """Exact q-quantile (nearest-rank) of an unsorted sample."""
    ordered = sorted(sample)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


def histogram_percentile(family, q):
    """Upper-bound q-quantile from a registry histogram's buckets."""
    snap = family.value
    target = q * snap["count"]
    for bound, cumulative in snap["buckets"]:
        if cumulative >= target:
            return bound
    return float("inf")


def build_store(n_grants, seed=20060408):
    """A store with ``n_grants`` direct grants plus hierarchy and tokens.

    Direct-grant subjects (``u<i>``) are disjoint from hierarchy members
    (``m<i>``), so the churn phase's differential assert on a revoked
    direct grant cannot be masked by a role or group path.
    """
    rng = random.Random(seed)
    store = AuthzStore(partitions=8)
    subjects = max(1, n_grants // 10)

    def grant_stream():
        for i in range(n_grants):
            subject = f"u{i % subjects}"
            relation = RELATIONS[i % len(RELATIONS)]
            obj = f"doc{i // len(RELATIONS)}"
            yield (subject, relation, obj), rng.randint(*GRANT_TTL)

    loaded = store.load_grants(grant_stream())
    # Hierarchy: every role can do ROLE_GRANTS_PER_ROLE things; members
    # reach roles directly and through groups.
    for r in range(ROLES):
        for g in range(ROLE_GRANTS_PER_ROLE):
            store.grant_role(f"role{r}", "read", f"shared{r}_{g}", ttl=GRANT_TTL[1])
    for g in range(GROUPS):
        store.map_group_role(f"grp{g}", f"role{g % ROLES}", ttl=GRANT_TTL[1])
    for m in range(MEMBERS):
        if m % 2:
            store.assign_role(f"m{m}", f"role{m % ROLES}", ttl=GRANT_TTL[1])
        else:
            store.join_group(f"m{m}", f"grp{m % GROUPS}", ttl=GRANT_TTL[1])
    for s in range(min(subjects, 10_000)):
        store.issue_token(f"tok{s}", f"u{s}")
    store.warm_views()  # one full build now, O(delta) per insert after
    return store, loaded, subjects


def run_mix(store, ops, subjects, seed=20060409, check_share=0.95):
    """The steady state: ``ops`` operations, 95% checks / 5% writes."""
    rng = random.Random(seed)
    latencies = []
    checks = writes = allowed = 0
    db = store.database
    for i in range(ops):
        if rng.random() < check_share:
            # Half the probes target the dense grant region (hits), the
            # rest roam: hierarchy members and cold misses.
            roll = rng.random()
            if roll < 0.5:
                subject = f"u{rng.randrange(subjects)}"
                relation = RELATIONS[rng.randrange(len(RELATIONS))]
                obj = f"doc{rng.randrange(max(1, subjects // 2))}"
            elif roll < 0.75:
                subject = f"m{rng.randrange(MEMBERS)}"
                relation = "read"
                obj = f"shared{rng.randrange(ROLES)}_{rng.randrange(ROLE_GRANTS_PER_ROLE)}"
            else:
                subject = f"ghost{rng.randrange(1_000_000)}"
                relation = "read"
                obj = "doc0"
            started = time.perf_counter()
            decision = store.check(subject, relation, obj)
            latencies.append(time.perf_counter() - started)
            checks += 1
            allowed += decision
        else:
            roll = rng.random()
            subject = f"u{rng.randrange(subjects)}"
            if roll < 0.4:
                store.grant(subject, "read", f"fresh{i}", ttl=rng.randint(*GRANT_TTL))
            elif roll < 0.7:
                store.refresh_token(f"tok{rng.randrange(min(subjects, 10_000))}",
                                    f"u{rng.randrange(subjects)}")
            else:
                store.audit(subject, "access")
            writes += 1
        if i % 2_000 == 1_999:
            db.tick(1)  # keep expiration live during the run
    return {"checks": checks, "writes": writes, "allowed": allowed,
            "latencies": latencies}


def run_churn(store, rounds, subjects, seed=20060410):
    """Renewal/revocation churn with the inline revocation differential.

    Every revocation (grant override, token override, lockout insert) is
    followed *immediately* by the probe it must flip; any probe that still
    answers the old way is a differential violation.  Returns the count
    (the gate requires zero).
    """
    rng = random.Random(seed)
    violations = revocations = renewals = 0
    db = store.database
    for i in range(rounds):
        # Renewal-heavy refresh-token churn: max-merge, only lengthens.
        for _ in range(8):
            tok = rng.randrange(min(subjects, 10_000))
            store.refresh_token(f"tok{tok}", f"u{tok}")
            renewals += 1
        # A revocation: pick a subject from the dense grant region.  The
        # grant may or may not still be live; after the override it must
        # read as denied either way.
        subject = f"u{rng.randrange(subjects)}"
        relation = RELATIONS[rng.randrange(len(RELATIONS))]
        obj = f"doc{rng.randrange(max(1, subjects // 2))}"
        if store.check(subject, relation, obj):
            store.revoke(subject, relation, obj)
            revocations += 1
            if store.check(subject, relation, obj):
                violations += 1
        # Token logout differential.
        tok = rng.randrange(min(subjects, 10_000))
        if store.token_valid(f"tok{tok}", f"u{tok}"):
            store.revoke_token(f"tok{tok}", f"u{tok}")
            revocations += 1
            if store.token_valid(f"tok{tok}", f"u{tok}"):
                violations += 1
        # Lockout: denies even a live grant, then clears by TTL alone.
        locked = f"u{rng.randrange(subjects)}"
        store.lock_out(locked, ttl=2)
        if store.check(locked, "read", f"doc{rng.randrange(max(1, subjects // 2))}"):
            violations += 1  # a locked-out subject was served
        if i % 16 == 15:
            db.tick(3)  # lapse the lockouts; sweeps reclaim revoked rows
    return {"violations": violations, "revocations": revocations,
            "renewals": renewals}


def run_served(store, rounds=50, seed=20060411):
    """The same differential through ``connect()`` sessions as SQL."""
    violations = 0
    rng = random.Random(seed)
    with connect(store.database) as session:
        for i in range(rounds):
            subject, obj = f"wire{i}", f"wiredoc{i}"
            session.execute(
                f"INSERT INTO Grants VALUES ('{subject}', 'read', '{obj}') "
                f"EXPIRES IN {rng.randint(*GRANT_TTL)};"
            )
            served = session.query(
                f"SELECT * FROM Grants WHERE subject = '{subject}' "
                f"AND relation = 'read' AND object = '{obj}';"
            )
            if len(served.rows or []) != 1:
                violations += 1  # the grant we just wrote wasn't served
            session.execute(
                f"UPDATE Grants EXPIRES IN 0 WHERE subject = '{subject}';"
            )
            after = session.query(
                f"SELECT * FROM Grants WHERE subject = '{subject}';"
            )
            if after.rows:
                violations += 1  # revoked over the wire, still served
    return {"violations": violations, "rounds": rounds}


def gate(n_grants, mix_ops, churn_rounds, p99_budget_s, served=False):
    started = time.perf_counter()
    store, loaded, subjects = build_store(n_grants)
    build_s = time.perf_counter() - started

    started = time.perf_counter()
    mix = run_mix(store, mix_ops, subjects)
    mix_s = time.perf_counter() - started

    churn = run_churn(store, churn_rounds, subjects)
    wire = run_served(store) if served else None

    lat = mix["latencies"]
    p50 = percentile(lat, 0.50)
    p99 = percentile(lat, 0.99)
    family = store.database.metrics.get("repro_authz_check_seconds")
    hist_p99 = histogram_percentile(family, 0.99)

    store.database.verify(strict=True, deep=True)

    emit(
        f"Expiring authorization: {loaded:,} grants, "
        f"{mix['checks']:,} checks / {mix['writes']:,} writes",
        ["metric", "value"],
        [
            ("build (bulk load)", f"{build_s:.2f} s"),
            ("mix throughput", f"{int((mix['checks'] + mix['writes']) / mix_s):,} ops/s"),
            ("check p50 (sample)", f"{p50 * 1e6:.1f} us"),
            ("check p99 (sample)", f"{p99 * 1e6:.1f} us"),
            ("check p99 (registry bucket)", f"<= {hist_p99 * 1e6:.1f} us"),
            ("registry check count", f"{family.count:,}"),
            ("churn renewals / revocations",
             f"{churn['renewals']:,} / {churn['revocations']:,}"),
            ("differential violations",
             str(churn["violations"] + (wire["violations"] if wire else 0))),
        ]
        + ([("served rounds (SQL over session)", str(wire["rounds"]))] if wire else []),
    )
    violations = churn["violations"] + (wire["violations"] if wire else 0)
    return {
        "grants": loaded,
        "p50_s": p50,
        "p99_s": p99,
        "hist_p99_s": hist_p99,
        "violations": violations,
        "p99_budget_s": p99_budget_s,
        "passed": violations == 0 and p99 <= p99_budget_s,
    }


def test_authz_revocation_differential():
    # Correctness at pytest scale (latency gates run in script mode): the
    # full mix + churn with every revocation differentially asserted.
    store, loaded, subjects = build_store(5_000)
    assert loaded == 5_000
    mix = run_mix(store, 2_000, subjects)
    assert mix["checks"] > 0 and mix["allowed"] > 0
    churn = run_churn(store, 200, subjects)
    assert churn["revocations"] > 0
    assert churn["violations"] == 0
    wire = run_served(store, rounds=10)
    assert wire["violations"] == 0
    assert store.database.verify(strict=True, deep=True) == []


if __name__ == "__main__":
    import sys

    served = "--served" in sys.argv
    if "--smoke" in sys.argv:
        report = gate(n_grants=60_000, mix_ops=20_000, churn_rounds=400,
                      p99_budget_s=0.005, served=served)
    else:
        report = gate(n_grants=1_000_000, mix_ops=200_000, churn_rounds=2_000,
                      p99_budget_s=0.002, served=served)
    print(
        f"{report['grants']:,} grants: check p99 {report['p99_s'] * 1e6:.1f} us "
        f"(budget {report['p99_budget_s'] * 1e6:.0f} us), "
        f"{report['violations']} differential violation(s)"
    )
    if not report["passed"]:
        print("FAIL: authz serving gate (latency budget or a revocation was served)")
        raise SystemExit(1)
    print("OK: revocations never served after commit; p99 within budget")

"""Experiment X11: columnar batch kernels vs the row fused pipeline.

Not a paper artefact -- the acceptance harness for the columnar storage
layout (``core/columnar.py``) and its batch kernels in the compiled
evaluator: the same compiled plans run against row-layout and columnar
catalogs, results are checked equivalent (rows *and* expirations), and
the wall-time ratio is reported per workload.  The workloads are shaped
after the paper's figures and the macro query: a Figure-1-style
``exp_τ`` scan of a profile table, selection, duplicate-eliminating
projection, and fact-to-dimension equijoin/semijoin as in the authz
macro plan, each at τ=0 (everything live, as in the figures) and at a
mid-life τ where a large share of tuples has expired.

The pure-Python backend carries the headline claim (>=3x on at least
two of the gate workloads); numpy numbers are reported separately when
numpy is importable.  Full runs also report the per-row memory
footprint of row vs columnar storage at 1M rows.

``--smoke`` runs a reduced-size equivalence-and-speedup gate: every
workload must produce identical results across layouts, and at least
``GATE_MIN_WORKLOADS`` of the gate workloads must clear
``GATE_SPEEDUP``x.
"""

import random
import statistics
import time
import tracemalloc

from repro.core.algebra.compiler import compile_expression
from repro.core.algebra.expressions import BaseRef
from repro.core.algebra.predicates import col
from repro.core.columnar import ColumnarRelation, numpy_available
from repro.core.relation import Relation
from repro.core.timestamps import ts
from repro.workloads.generators import UniformLifetime, random_relation

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit

GATE_WORKLOADS = ("fig1 scan", "authz dim join", "project dedup")
GATE_SPEEDUP = 3.0
GATE_MIN_WORKLOADS = 2


def build_catalog(size, seed=71):
    """Row-layout base relations shaped after the figure/macro tables.

    ``Pol`` is the Figure-1-style profile fact table (uniform lifetimes,
    duplicate-heavy value attributes); ``Grp`` is an authz dimension
    keyed by a *unique* uid, the shape the macro plan joins against.
    """
    life = UniformLifetime(10, 400)
    fact = random_relation(
        ["uid", "deg", "seg"], size, life,
        seed=seed, key_range=size, value_domain=50,
    )
    rng = random.Random(seed + 3)
    dim = Relation(["uid", "grp"])
    for i in range(size):
        dim.insert((i, rng.randrange(50)), expires_at=rng.randrange(10, 400))
    return {"Pol": fact, "Grp": dim}


def columnar_catalog(catalog, backend="python"):
    return {
        name: ColumnarRelation.from_relation(relation, backend=backend)
        for name, relation in catalog.items()
    }


def workloads():
    """``name -> (expression, tau)``; figure workloads run at τ=0."""
    return {
        "fig1 scan": (BaseRef("Pol"), 0),
        "selective select": (
            BaseRef("Pol").select((col(2) >= 10) & (col(3) < 40)), 0,
        ),
        "project dedup": (BaseRef("Pol").project(2, 3), 0),
        "authz dim join": (
            BaseRef("Pol").join(BaseRef("Grp"), on=[(1, 1)]), 0,
        ),
        "dim semijoin": (
            BaseRef("Pol").semijoin(BaseRef("Grp"), on=[(1, 1)]), 0,
        ),
        "mid-life scan": (BaseRef("Pol"), 200),
        "mid-life join": (
            BaseRef("Pol").join(BaseRef("Grp"), on=[(1, 1)]), 200,
        ),
    }


def _time_plan(expression, catalog, tau, reps):
    schemas = {name: relation.schema for name, relation in catalog.items()}
    plan = compile_expression(expression, lambda name: schemas[name])
    stamp = ts(tau)
    result = plan.execute(catalog, stamp)
    samples = []
    for _ in range(reps):
        started = time.perf_counter()
        plan.execute(catalog, stamp)
        samples.append(time.perf_counter() - started)
    return min(samples) * 1000, result


def run_workloads(size, seed=71, reps=5, numpy_backend=None):
    """Per-workload timings and equivalence checks across layouts.

    Returns ``name -> report`` dicts with row/columnar milliseconds and
    the speedup ratio (plus numpy numbers when requested).
    """
    if numpy_backend is None:
        numpy_backend = numpy_available()
    row_catalog = build_catalog(size, seed)
    col_catalog = columnar_catalog(row_catalog)
    np_catalog = (
        columnar_catalog(row_catalog, backend="numpy")
        if numpy_backend
        else None
    )
    reports = {}
    for name, (expression, tau) in workloads().items():
        row_ms, row_result = _time_plan(expression, row_catalog, tau, reps)
        col_ms, col_result = _time_plan(expression, col_catalog, tau, reps)
        if not col_result.relation.same_content(row_result.relation):
            raise AssertionError(f"columnar result diverged on {name!r}")
        if col_result.expiration != row_result.expiration:
            raise AssertionError(f"columnar texp(e) diverged on {name!r}")
        report = {
            "tau": tau,
            "row_ms": row_ms,
            "col_ms": col_ms,
            "speedup": row_ms / col_ms if col_ms else float("inf"),
            "rows": len(row_result.relation),
        }
        if np_catalog is not None:
            np_ms, np_result = _time_plan(expression, np_catalog, tau, reps)
            if not np_result.relation.same_content(row_result.relation):
                raise AssertionError(f"numpy result diverged on {name!r}")
            report["np_ms"] = np_ms
            report["np_speedup"] = row_ms / np_ms if np_ms else float("inf")
        reports[name] = report
    return reports


def print_report(reports, size):
    headers = ["workload", "τ", "result rows", "row ms", "columnar ms", "speedup"]
    has_numpy = any("np_ms" in r for r in reports.values())
    if has_numpy:
        headers += ["numpy ms", "np speedup"]
    rows = []
    for name, r in reports.items():
        line = [
            name, r["tau"], r["rows"],
            f"{r['row_ms']:.1f}", f"{r['col_ms']:.1f}",
            f"{r['speedup']:.2f}x",
        ]
        if has_numpy:
            line += [
                f"{r.get('np_ms', float('nan')):.1f}",
                f"{r.get('np_speedup', float('nan')):.2f}x",
            ]
        rows.append(line)
    emit(
        f"Columnar batch kernels vs row fused pipeline (|base| = {size})",
        headers,
        rows,
    )


def memory_report(size=1_000_000, seed=9):
    """Per-row resident bytes of row-dict vs columnar storage.

    The attribute values are generated up front and shared by both
    builds, so the tracemalloc deltas isolate the *layout* cost: dict
    table + row tuples + texp objects versus three column lists + one
    raw int64 array.
    """
    rng = random.Random(seed)
    uid = list(range(size))
    deg = [rng.randrange(50) for _ in range(size)]
    seg = [rng.randrange(50) for _ in range(size)]
    texp = [rng.randrange(10, 400) for _ in range(size)]
    stamps = [ts(t) for t in texp]  # interned; shared by both layouts
    schema = Relation(["uid", "deg", "seg"]).schema

    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    row_relation = Relation._from_trusted(
        schema,
        {
            (uid[i], deg[i], seg[i]): stamps[i]
            for i in range(size)
        },
    )
    after, _ = tracemalloc.get_traced_memory()
    row_bytes = after - before

    before, _ = tracemalloc.get_traced_memory()
    col_relation = ColumnarRelation._from_columns(
        schema,
        [list(uid), list(deg), list(seg)],
        texp,
        backend="python",
    )
    after, _ = tracemalloc.get_traced_memory()
    col_bytes = after - before
    tracemalloc.stop()

    assert len(col_relation) == len(row_relation) == size
    return {
        "rows": size,
        "row_bytes_per_row": row_bytes / size,
        "col_bytes_per_row": col_bytes / size,
        "ratio": row_bytes / col_bytes if col_bytes else float("inf"),
    }


def print_memory(report):
    emit(
        f"Storage footprint at {report['rows']:,} rows (structure only)",
        ["layout", "bytes/row"],
        [
            ("row (dict of tuples)", f"{report['row_bytes_per_row']:.1f}"),
            ("columnar (lists + int64 texp)", f"{report['col_bytes_per_row']:.1f}"),
            ("row / columnar", f"{report['ratio']:.2f}x"),
        ],
    )


def smoke_gate(size=60_000, reps=5):
    """Equivalence on every workload + speedup on the gate workloads."""
    reports = run_workloads(size, reps=reps)
    print_report(reports, size)
    cleared = [
        name for name in GATE_WORKLOADS
        if reports[name]["speedup"] >= GATE_SPEEDUP
    ]
    passed = len(cleared) >= GATE_MIN_WORKLOADS
    return {
        "passed": passed,
        "cleared": cleared,
        "speedups": {
            name: round(reports[name]["speedup"], 2)
            for name in GATE_WORKLOADS
        },
    }


# -- pytest entry points (collected only when targeting benchmarks/) --------


def test_workload_equivalence_small():
    reports = run_workloads(3_000, reps=1)
    assert set(GATE_WORKLOADS) <= set(reports)
    for report in reports.values():
        assert report["rows"] >= 0


def test_memory_report_small():
    report = memory_report(size=20_000)
    assert report["col_bytes_per_row"] < report["row_bytes_per_row"]


def test_columnar_kernels_benchmark(benchmark):
    reports = benchmark(run_workloads, 10_000, 71, 1)
    assert set(workloads()) == set(reports)


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        gate = smoke_gate()
        print(
            "gate workloads: "
            + ", ".join(
                f"{name} {speed:.2f}x"
                for name, speed in gate["speedups"].items()
            )
        )
        if not gate["passed"]:
            print(
                f"FAIL: fewer than {GATE_MIN_WORKLOADS} gate workloads "
                f"reached {GATE_SPEEDUP:.1f}x"
            )
            raise SystemExit(1)
        print(
            f"OK: {len(gate['cleared'])} gate workloads at >= "
            f"{GATE_SPEEDUP:.1f}x ({', '.join(gate['cleared'])})"
        )
    else:
        size = 100_000
        print_report(run_workloads(size), size)
        print_memory(memory_report())

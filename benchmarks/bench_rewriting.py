"""Experiment S31: Section 3.1 -- rewriting postpones recomputation.

Paper claim: algebraic equivalences that shrink the recomputation-
triggering set ``{t | t ∈ R ∧ t ∈ S ∧ texp_R(t) > texp_S(t)}`` and pull
non-monotonic operators up the plan postpone ``texp(e)``.

The bench evaluates ``σ_p(R − S)`` versus its rewritten form
``σ_p(R) − σ_p(S)`` across selectivities, reporting ``texp(e)`` and the
total valid time within a horizon.  Expected shape: identical results, the
rewritten plan's ``texp(e)`` never earlier, and strictly later once the
selection filters out some critical tuples.
"""

import random

from repro.core.algebra.expressions import BaseRef, Difference, Select
from repro.core.algebra.predicates import col
from repro.core.relation import Relation
from repro.core.rewriter import compare_plans
from repro.core.timestamps import ts

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit

HORIZON = 200


def build_catalog(size, selectivity_buckets, seed):
    """R, S share every key; every shared tuple is critical.

    The S-side expiration is correlated with the bucket attribute
    (bucket ``b`` expires around ``10·(b+1)``), so pushing a selection on a
    high bucket into the difference discards exactly the early-expiring
    critical tuples -- the cleanest demonstration of the Section 3.1 gain.
    """
    rng = random.Random(seed)
    left = Relation(["k", "v"])
    right = Relation(["k", "v"])
    for key in range(size):
        bucket = rng.randrange(selectivity_buckets)
        right_texp = 10 * (bucket + 1) + rng.randint(0, 5)
        left_texp = right_texp + rng.randint(30, 80)  # always critical
        row = (key, bucket)
        left.insert(row, expires_at=left_texp)
        right.insert(row, expires_at=right_texp)
    return {"R": left, "S": right}


def run_sweep(size=300, buckets=8, seed=59):
    rows = []
    for selected_bucket in range(0, buckets, 2):
        catalog = build_catalog(size, buckets, seed)
        expr = Select(
            Difference(BaseRef("R"), BaseRef("S")), col(2) == selected_bucket
        )
        before, after = compare_plans(expr, catalog, tau=0)
        rows.append(
            (
                f"v = {selected_bucket} (~1/{buckets})",
                str(before.expiration),
                str(after.expiration),
                before.valid_duration_before(HORIZON),
                after.valid_duration_before(HORIZON),
            )
        )
    return rows


def print_rewriting(rows=None):
    emit(
        "Section 3.1: rewriting sigma_p(R - S) -> sigma_p(R) - sigma_p(S)",
        ["selection", "texp(e) original", "texp(e) rewritten",
         "valid ticks original", "valid ticks rewritten"],
        rows if rows is not None else run_sweep(),
    )


def test_rewriting_never_hurts_and_usually_helps():
    rows = run_sweep(size=200, buckets=8)
    improved = 0
    for _, before_texp, after_texp, before_valid, after_valid in rows:
        assert after_valid >= before_valid
        if after_valid > before_valid:
            improved += 1
    # With 1/8 selectivity the rewrite should help in nearly every sweep.
    assert improved >= len(rows) - 1


def test_rewriting_preserves_results():
    from repro.core.algebra.evaluator import evaluate
    from repro.core.rewriter import optimise

    catalog = build_catalog(100, 4, seed=3)
    expr = Select(Difference(BaseRef("R"), BaseRef("S")), col(2) == 1)
    resolver = lambda name: catalog[name].schema  # noqa: E731
    rewritten = optimise(expr, resolver)
    for tau in (0, 10, 30, 60, 120):
        original = evaluate(expr, catalog, tau=tau)
        optimised = evaluate(rewritten, catalog, tau=tau)
        assert original.relation.same_content(optimised.relation)


def test_rewriting_benchmark(benchmark):
    rows = benchmark(run_sweep, size=150, buckets=8, seed=11)
    assert rows
    print_rewriting()


if __name__ == "__main__":
    print_rewriting()

"""Experiment S32: Section 3.2 -- eager versus lazy removal.

Paper claim: eager removal fires triggers "as soon as a tuple expires";
lazy removal "provides more optimisation opportunities" (batched
reclamation, higher ingest throughput) at the price of trigger latency and
physical storage residue.

The bench drives an insert/expire stream through tables under both
policies (several lazy batch sizes) and reports ingest wall time, purge
passes, mean trigger latency, and peak physical size.  Expected shape:
lazy does (far) fewer purge passes and is at least as fast on ingest;
eager has zero trigger latency and no residue.
"""

import time

from repro.engine.clock import LogicalClock
from repro.engine.expiration_index import RemovalPolicy
from repro.engine.statistics import EngineStatistics
from repro.engine.table import Table
from repro.core.schema import Schema
from repro.workloads.generators import UniformLifetime, random_stream

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit


def run_policy(policy, batch, workload, horizon):
    clock = LogicalClock()
    table = Table(
        "T", Schema(["k", "v"]), clock,
        statistics=EngineStatistics(),
        removal_policy=policy, lazy_batch_size=batch,
    )
    clock.on_advance(table.on_clock_advance)
    latencies = []
    table.triggers.register(
        "latency",
        lambda event: latencies.append(
            event.fired_at.value - event.tuple.expires_at.value
        ),
    )
    peak_physical = 0
    started = time.perf_counter()
    position = 0
    # Drive the clock tick by tick so the eager policy's promptness is
    # measurable (a clock that jumps straight to the next arrival would
    # charge the gap to the policy).
    for now in range(horizon + 1):
        if now:
            clock.advance_to(now)
        while position < len(workload) and workload[position][0] == now:
            _, row, expires_at = workload[position]
            table.insert(row, expires_at=expires_at)
            position += 1
        peak_physical = max(peak_physical, table.physical_size)
    table.vacuum()  # final reclamation so latencies are complete
    elapsed = time.perf_counter() - started
    mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
    return {
        "policy": f"{policy.value}" + (f" (batch={batch})" if policy is RemovalPolicy.LAZY else ""),
        "ingest_ms": round(elapsed * 1000, 2),
        "purge_passes": table.statistics.purge_passes,
        "mean_trigger_latency": round(mean_latency, 2),
        "peak_physical": peak_physical,
        "expired": table.statistics.expirations_processed,
    }


def run_all(count=4000, span=400, seed=71):
    workload = random_stream(["k", "v"], count, UniformLifetime(1, 60),
                             arrival_span=span, seed=seed)
    horizon = span + 70
    rows = [run_policy(RemovalPolicy.EAGER, 0, workload, horizon)]
    for batch in (16, 128, 1024):
        rows.append(run_policy(RemovalPolicy.LAZY, batch, workload, horizon))
    return rows


def print_eager_vs_lazy(rows=None):
    rows = rows if rows is not None else run_all()
    emit(
        "Section 3.2: eager vs lazy removal",
        ["policy", "ingest ms", "purge passes", "mean trigger latency",
         "peak physical size", "expired"],
        [
            (r["policy"], r["ingest_ms"], r["purge_passes"],
             r["mean_trigger_latency"], r["peak_physical"], r["expired"])
            for r in rows
        ],
    )


def test_eager_zero_latency():
    rows = run_all(count=800, span=100, seed=5)
    eager = rows[0]
    assert eager["mean_trigger_latency"] == 0.0


def test_lazy_fewer_purge_passes():
    rows = run_all(count=800, span=100, seed=5)
    eager = rows[0]
    big_batch = rows[-1]
    assert big_batch["purge_passes"] < eager["purge_passes"]


def test_lazy_latency_grows_with_batch():
    rows = run_all(count=800, span=100, seed=5)
    lazy = [r for r in rows if r["policy"].startswith("lazy")]
    latencies = [r["mean_trigger_latency"] for r in lazy]
    assert latencies == sorted(latencies)


def test_all_policies_expire_everything():
    rows = run_all(count=800, span=100, seed=5)
    assert len({r["expired"] for r in rows}) == 1


def test_eager_vs_lazy_benchmark(benchmark):
    workload = random_stream(["k", "v"], 1500, UniformLifetime(1, 60),
                             arrival_span=200, seed=9)
    report = benchmark(run_policy, RemovalPolicy.LAZY, 128, workload, 270)
    assert report["expired"] > 0
    print_eager_vs_lazy()


if __name__ == "__main__":
    print_eager_vs_lazy()

"""Experiment X9: partition-parallel expiration sweeps.

The companion report's bulk-removal argument, measured: a flat table
processes a mass expiration one tuple at a time (per-tuple lookup, delete,
and statistics round-trips), while a :class:`PartitionedTable` drains one
bulk kernel per hash shard, fanned out on the database's worker pool.

Reported: sweep wall time and throughput for a flat table versus 1/2/4/8
hash shards over the same mass-expiring workload; asserted (the gate):
the 4-shard sweep is at least ``threshold`` times faster than flat --
2.0x in full mode (>=100k due tuples), a conservative 1.2x under
``--smoke`` so shared CI runners don't flake.
"""

import time

from repro.engine.database import Database

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit

DUE_AT = 100


def build_database(n, shards=None):
    """A database whose table 'S' holds ``n`` tuples all due at DUE_AT."""
    db = Database()
    kwargs = {} if shards is None else {"partitions": shards, "partition_key": "k"}
    table = db.create_table("S", ["k", "v"], **kwargs)
    for i in range(n):
        table.insert((i, i % 97), expires_at=DUE_AT)
    return db, table


def time_sweep(n, shards=None, reps=3):
    """Best-of-``reps`` wall time for sweeping all ``n`` due tuples."""
    best = None
    for _ in range(reps):
        db, table = build_database(n, shards)
        started = time.perf_counter()
        db.advance_to(DUE_AT)
        elapsed = time.perf_counter() - started
        if len(table) != 0 or table.physical_size != 0:
            raise AssertionError("sweep left tuples behind")
        db.close()
        if best is None or elapsed < best:
            best = elapsed
    return best


def run_sweep(n, shard_counts=(1, 2, 4, 8), reps=3):
    rows = [{"label": "flat", "shards": None, "s": time_sweep(n, None, reps)}]
    for shards in shard_counts:
        rows.append(
            {"label": f"{shards} shard{'s' if shards > 1 else ''}",
             "shards": shards, "s": time_sweep(n, shards, reps)}
        )
    flat = rows[0]["s"]
    for row in rows:
        row["ms"] = round(row["s"] * 1000, 1)
        row["tuples_per_s"] = int(n / row["s"]) if row["s"] else 0
        row["speedup"] = round(flat / row["s"], 2) if row["s"] else 0.0
    return rows


def print_report(n, rows):
    emit(
        f"Partitioned expiration sweep: {n:,} tuples due at once",
        ["layout", "ms", "tuples/s", "speedup vs flat"],
        [(r["label"], r["ms"], f"{r['tuples_per_s']:,}", f"{r['speedup']:.2f}x")
         for r in rows],
    )


def gate(n, threshold, reps=3):
    """Fail unless the 4-shard sweep beats flat by ``threshold``x."""
    rows = run_sweep(n, reps=reps)
    print_report(n, rows)
    at_four = next(r for r in rows if r["shards"] == 4)
    return {
        "n": n,
        "speedup": at_four["speedup"],
        "threshold": threshold,
        "passed": at_four["speedup"] >= threshold,
        "rows": rows,
    }


def test_partitioned_sweep_is_equivalent_and_fast_enough():
    # Correctness (the throughput gate runs in script mode, not pytest):
    # both layouts must clear exactly the same mass expiration.
    flat_db, flat = build_database(2_000)
    part_db, part = build_database(2_000, shards=4)
    flat_db.advance_to(DUE_AT)
    part_db.advance_to(DUE_AT)
    assert flat.physical_size == part.physical_size == 0
    assert (flat.statistics.expirations_processed
            == part.statistics.expirations_processed == 2_000)
    part_db.close()
    flat_db.close()


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        report = gate(n=20_000, threshold=1.2, reps=2)
    else:
        report = gate(n=120_000, threshold=2.0, reps=3)
    print(
        f"4-shard speedup {report['speedup']:.2f}x over flat on "
        f"{report['n']:,} due tuples (gate: >={report['threshold']:.1f}x)"
    )
    if not report["passed"]:
        print("FAIL: partitioned sweep below the speedup gate")
        raise SystemExit(1)
    print("OK: partitioned sweep throughput within the gate")

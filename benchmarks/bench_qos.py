"""Experiment X4 (extension, paper §5): QoS-bounded query answering.

Paper future work: "incorporate expiration into query processing with
(approximate) quality of service guarantees".  The bench answers a query
stream against a materialised difference under staleness contracts of
growing laxity and reports the recompute rate and achieved staleness.

Expected shape: the recompute rate falls monotonically as the permitted
staleness grows; achieved staleness never exceeds the contract; with an
unbounded contract the rate reaches zero (every query is answerable by
moving backward).
"""

import random

from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import BaseRef
from repro.core.qos import DelayBound, QosAnswerer, QosContract, StalenessBound
from repro.workloads.generators import UniformLifetime, overlapping_relations

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit

HORIZON = 100


def make_answerer(bound, seed):
    left, right = overlapping_relations(
        ["k", "v"], 120, 0.5, UniformLifetime(5, HORIZON - 20), seed=seed
    )
    expr = BaseRef("R").difference(BaseRef("S"))
    catalog = {"R": left, "S": right}
    materialised = evaluate(expr, catalog, tau=0)
    contract = QosContract(
        staleness=StalenessBound(bound) if bound is not None else StalenessBound(10**6)
    )
    return QosAnswerer(expr, catalog, materialised, contract)


def run_sweep(queries=120, seed=173):
    rng = random.Random(seed)
    times = sorted(rng.randrange(HORIZON) for _ in range(queries))
    rows = []
    for bound in (0, 2, 5, 10, 25, None):
        answerer = make_answerer(bound, seed)
        for when in times:
            answerer.answer(when)
        report = answerer.report
        rows.append(
            (
                "unbounded" if bound is None else bound,
                f"{report.recompute_rate:.2f}",
                report.exact,
                report.served_stale,
                round(report.mean_staleness, 2),
                report.worst_staleness,
            )
        )
    return rows


def print_qos(rows=None):
    emit(
        "Extension: staleness-bounded answering of a materialised difference",
        ["max staleness", "recompute rate", "exact", "stale", "mean staleness",
         "worst staleness"],
        rows if rows is not None else run_sweep(),
    )


def test_recompute_rate_monotone():
    rows = run_sweep(queries=80, seed=3)
    rates = [float(row[1]) for row in rows]
    assert rates == sorted(rates, reverse=True)


def test_worst_staleness_within_contract():
    for row in run_sweep(queries=80, seed=3):
        bound, worst = row[0], row[5]
        if bound != "unbounded":
            assert worst <= bound, row


def test_unbounded_never_recomputes():
    rows = {row[0]: row for row in run_sweep(queries=80, seed=3)}
    assert float(rows["unbounded"][1]) == 0.0


def test_qos_benchmark(benchmark):
    rows = benchmark(run_sweep, queries=60, seed=11)
    assert len(rows) == 6
    print_qos()


if __name__ == "__main__":
    print_qos()

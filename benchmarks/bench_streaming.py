"""Experiment X14: continuous queries over expiring streams.

The streaming scenario pack (ROADMAP item 4, DESIGN §5j) under load: a
sustained event stream with heterogeneous TTLs ingested into an
expiration-enabled table, standing queries served from tolerance-widened
Schrödinger validity intervals, and an idle-timeout (since-last-
modification) connection stream whose entries live exactly as long as
they are touched.

Measured phases and the gates on them:

1. **ingest** -- sustained arrivals with TTLs drawn from a wide range,
   the clock advancing throughout (eager sweeps reclaim as they go).
   Standing queries (count within tolerance, distinct count, extent,
   reservoir sample) are read continuously.  Gates:

   * *bounded memory*: the resident tuple count never exceeds a small
     multiple of the steady-state expectation (arrival rate x mean TTL)
     -- retention is expiration, so memory must stay flat no matter how
     many events flow through;
   * *validity effectiveness*: at least half of all standing-query reads
     are served from the cached interval without touching the stream;
   * *correctness differential*: the exact count query must equal a
     brute-force scan at every checkpoint, the tolerant count must stay
     inside its band, and the reservoir must be a bounded subset of the
     live set.

2. **idle-timeout** -- connections ingested on a since-last-modification
   stream; a fixed subset is touched every few ticks for several full
   timeout windows.  Gate: *every* touched connection is still alive at
   the end and *every* untouched one has expired -- the renewal-on-touch
   differential, zero tolerance.

Throughput (events/s ingested, reads/s served) is reported for the
record but not gated: CI machines vary, correctness and boundedness do
not.
"""

import random
import time

from repro.core.approximate import AbsoluteTolerance
from repro.workloads.streaming import (
    CONNECTION_SCHEMA,
    EVENT_SCHEMA,
    StreamStore,
)

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit

TTL_RANGE = (2, 40)  # heterogeneous lifetimes, uniform in ticks
EVENTS_PER_TICK = 200
IDLE_TIMEOUT = 25
COUNT_TOLERANCE = 32


def build_store(partitions=4):
    store = StreamStore()
    store.create_stream(
        "Events", EVENT_SCHEMA, ttl=TTL_RANGE[1],
        partitions=partitions, partition_key="key",
    )
    store.create_stream(
        "Conns", CONNECTION_SCHEMA, ttl=IDLE_TIMEOUT,
        expiry="since_last_modification",
    )
    return store


def run_ingest(store, events, seed=20060413):
    """Sustained ingest with standing queries read along the way."""
    rng = random.Random(seed)
    exact = store.count("Events", name="Events:exact")
    approx = store.count(
        "Events", tolerance=AbsoluteTolerance(COUNT_TOLERANCE),
        name="Events:approx",
    )
    distinct = store.distinct("Events", "key")
    extent = store.extent("Events", "value")
    sample = store.sample("Events", 64, rng=random.Random(seed))
    table = store.stream("Events")

    keys = max(64, events // 100)
    max_resident = 0
    reads = violations = 0
    started = time.perf_counter()
    for i in range(events):
        row = (rng.randrange(keys), rng.randrange(10_000))
        store.ingest("Events", row, ttl=rng.randint(*TTL_RANGE))
        if i % EVENTS_PER_TICK == EVENTS_PER_TICK - 1:
            store.database.tick(1)
            max_resident = max(max_resident, table.physical_size)
        if i % 50 == 49:
            # The standing answers, checked against brute force.
            truth = len(table.read())
            got_exact = exact.read()
            got_approx = approx.read()
            members = sample.read()
            distinct.read()
            extent.read()
            reads += 5
            if got_exact != truth:
                violations += 1
            if abs(got_approx - truth) > COUNT_TOLERANCE:
                violations += 1
            live = set(table.read().rows())
            if len(members) > 64 or not set(members) <= live:
                violations += 1
    elapsed = time.perf_counter() - started

    # Steady state: EVENTS_PER_TICK arrivals/tick x mean TTL resident
    # tuples; the bound leaves 2x headroom for sweep batching.
    steady = EVENTS_PER_TICK * (TTL_RANGE[0] + TTL_RANGE[1]) / 2
    bound = int(2 * steady) + EVENTS_PER_TICK
    serves = store.database.metrics.get(
        "repro_streaming_query_serves_total"
    )
    cached = refreshed = 0
    for labels, counter in serves.series():
        if labels[1] == "cached":
            cached += counter.value
        else:
            refreshed += counter.value
    return {
        "events": events,
        "events_per_s": int(events / elapsed) if elapsed else 0,
        "reads": reads,
        "violations": violations,
        "max_resident": max_resident,
        "resident_bound": bound,
        "cached_serves": cached,
        "refresh_serves": refreshed,
        "cached_fraction": cached / max(1, cached + refreshed),
    }


def run_idle_timeout(store, conns=400, seed=20060414):
    """The renewal-on-touch differential: touched live, untouched die."""
    rng = random.Random(seed)
    flows = [
        (f"src{i}", f"dst{rng.randrange(32)}", rng.randrange(1024))
        for i in range(conns)
    ]
    for flow in flows:
        store.ingest("Conns", flow)
    touched = [flow for i, flow in enumerate(flows) if i % 2 == 0]
    untouched = [flow for i, flow in enumerate(flows) if i % 2 == 1]
    table = store.stream("Conns")

    # Three full timeout windows; the touched half gets activity every
    # few ticks, always inside the idle window.
    for _ in range(3 * IDLE_TIMEOUT):
        store.database.tick(1)
        if store.database.now.value % 5 == 0:
            for flow in touched:
                store.touch("Conns", flow)

    def alive(flow):
        texp = table.relation.expiration_or_none(flow)
        return texp is not None and store.database.now < texp

    touched_alive = sum(1 for flow in touched if alive(flow))
    untouched_alive = sum(1 for flow in untouched if alive(flow))
    return {
        "touched": len(touched),
        "touched_alive": touched_alive,
        "untouched": len(untouched),
        "untouched_alive": untouched_alive,
        "resident": table.physical_size,
    }


def gate(events, min_cached_fraction=0.5):
    store = build_store()
    ingest = run_ingest(store, events)
    idle = run_idle_timeout(store)
    store.database.verify(strict=True, deep=True)

    emit(
        f"Streaming: {ingest['events']:,} events, heterogeneous TTLs "
        f"{TTL_RANGE[0]}..{TTL_RANGE[1]}, idle timeout {IDLE_TIMEOUT}",
        ["metric", "value"],
        [
            ("ingest throughput", f"{ingest['events_per_s']:,} events/s"),
            ("max resident tuples",
             f"{ingest['max_resident']:,} (bound {ingest['resident_bound']:,})"),
            ("standing-query serves (cached / refresh)",
             f"{ingest['cached_serves']:,} / {ingest['refresh_serves']:,}"),
            ("cached-serve fraction",
             f"{ingest['cached_fraction'] * 100:.1f}% "
             f"(floor {min_cached_fraction * 100:.0f}%)"),
            ("differential violations", str(ingest["violations"])),
            ("touched connections alive",
             f"{idle['touched_alive']}/{idle['touched']}"),
            ("untouched connections alive",
             f"{idle['untouched_alive']}/{idle['untouched']}"),
        ],
    )
    passed = (
        ingest["violations"] == 0
        and ingest["max_resident"] <= ingest["resident_bound"]
        and ingest["cached_fraction"] >= min_cached_fraction
        and idle["touched_alive"] == idle["touched"]
        and idle["untouched_alive"] == 0
    )
    return {**ingest, **idle, "passed": passed}


def test_streaming_gates():
    # Correctness at pytest scale: every gate the script mode enforces.
    report = gate(events=6_000)
    assert report["violations"] == 0
    assert report["max_resident"] <= report["resident_bound"]
    assert report["touched_alive"] == report["touched"]
    assert report["untouched_alive"] == 0
    assert report["cached_fraction"] >= 0.5


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        report = gate(events=30_000)
    else:
        report = gate(events=200_000)
    print(
        f"{report['events']:,} events at {report['events_per_s']:,}/s: "
        f"max resident {report['max_resident']:,} "
        f"(bound {report['resident_bound']:,}), "
        f"{report['cached_fraction'] * 100:.0f}% serves cached, "
        f"{report['violations']} violation(s); idle-timeout "
        f"{report['touched_alive']}/{report['touched']} touched alive, "
        f"{report['untouched_alive']} untouched alive"
    )
    if not report["passed"]:
        print("FAIL: streaming gate (memory, validity, or a differential)")
        raise SystemExit(1)
    print("OK: bounded memory, validity-served queries, touch keeps alive")

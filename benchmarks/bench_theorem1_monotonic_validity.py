"""Experiment TH1: Theorem 1 at scale.

Paper artefact: Theorem 1 -- ``exp_τ'(e) = exp_τ'(exp_τ(e))`` for monotonic
``e``.  The bench materialises a selection-projection-join pipeline over
randomly generated relations of growing size and verifies, at every
expiration boundary, that expiring the materialisation equals a fresh
recomputation; it reports the trial counts (expected: 100% hold) and times
the verification sweep.
"""

from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import BaseRef
from repro.core.algebra.predicates import col
from repro.core.validity import recompute_equals_materialised, relevant_times
from repro.workloads.generators import UniformLifetime, random_relation

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit


def pipeline():
    return (
        BaseRef("R")
        .join(BaseRef("S"), on=[(1, 1)])
        .select(col(2) >= 10)
        .project(1, 2, 4)
    )


def run_trial(size, seed):
    catalog = {
        "R": random_relation(["k", "v"], size, UniformLifetime(1, 60), seed=seed,
                             key_range=size),
        "S": random_relation(["k", "w"], size, UniformLifetime(1, 60), seed=seed + 1,
                             key_range=size),
    }
    expr = pipeline()
    materialised = evaluate(expr, catalog, tau=0)
    checkpoints = relevant_times(expr, catalog, 0)
    held = sum(
        1
        for point in checkpoints
        if recompute_equals_materialised(expr, catalog, materialised, point)
    )
    return len(checkpoints), held


def run_sweep(sizes=(50, 200, 800), seed=17):
    rows = []
    for size in sizes:
        checkpoints, held = run_trial(size, seed)
        rows.append((size, checkpoints, held, "100%" if held == checkpoints else "VIOLATED"))
    return rows


def print_theorem1(rows=None):
    emit(
        "Theorem 1: monotonic materialisations vs recomputation",
        ["|R|=|S|", "checkpoints", "held", "verdict"],
        rows if rows is not None else run_sweep(),
    )


def test_theorem1_holds_everywhere():
    for _, checkpoints, held, verdict in run_sweep(sizes=(50, 200)):
        assert held == checkpoints
        assert verdict == "100%"


def test_theorem1_benchmark(benchmark):
    rows = benchmark(run_sweep, sizes=(100,), seed=23)
    assert rows[0][3] == "100%"
    print_theorem1()


if __name__ == "__main__":
    print_theorem1()

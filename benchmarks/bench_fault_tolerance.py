"""Fault tolerance: reliable delivery, anti-entropy, and crash recovery.

The robustness counterpart of experiment D1: the same replication
scenario, but the link now loses messages, a total-loss burst and a
partition window strike mid-run, and the client crashes once and restarts
with an empty replica.  The grid crosses loss ∈ {0, 0.05, 0.2} with four
protocol stacks:

* the **explicit-delete baseline**, raw (no session, no repair);
* **expiration-based** maintenance, raw;
* expiration over the **reliable session** (retransmission only);
* expiration with reliable session **plus anti-entropy**.

Expected shape -- the paper's claims under faults:

* Raw stacks never converge: a lost insert of a long-lived tuple (or a
  lost delete, for the baseline) is divergence forever.
* The reliable session fixes loss but not the state-losing crash
  (acknowledged rows are never retransmitted); only anti-entropy closes
  the final divergence window, for both strategies.
* ``retrans avoided`` > 0 for the expiration stacks: retransmissions of
  already-expired tuples are cancelled, traffic the baseline's delete
  notices must always pay (a delete never stops mattering).
* Everything is deterministic given the seeds.
"""

from repro.distributed.anti_entropy import AntiEntropyConfig
from repro.distributed.faults import BurstLoss, FaultSchedule, LinkFlap, NodeCrash
from repro.distributed.link import Link
from repro.distributed.reliability import ReliabilityConfig, RetryPolicy
from repro.distributed.simulator import ReplicationSimulation, ReplicationStrategy
from repro.workloads.generators import UniformLifetime, random_stream

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit

LOSS_GRID = (0.0, 0.05, 0.2)

STACKS = (
    ("explicit_delete raw", ReplicationStrategy.EXPLICIT_DELETE, False, False),
    ("expiration raw", ReplicationStrategy.EXPIRATION, False, False),
    ("expiration +retry", ReplicationStrategy.EXPIRATION, True, False),
    ("expiration +retry+AE", ReplicationStrategy.EXPIRATION, True, True),
)


def fault_workload(count=60, span=60, seed=31):
    workload = random_stream(["uid", "deg"], count, UniformLifetime(10, 35),
                             arrival_span=span, seed=seed)
    # Long-lived rows the run never outlives: for these, a lost insert is
    # permanent divergence unless some layer repairs it.
    workload += [(5, (9000 + index, "pinned"), 100_000) for index in range(5)]
    return workload


def fault_schedule():
    return FaultSchedule([
        BurstLoss(at=25, until=55, probability=1.0),
        LinkFlap(at=95, duration=15),
        NodeCrash(at=125, restart_at=135, lose_state=True),
    ])


def run_stack(strategy, reliable, anti_entropy, loss, seed=31):
    sim = ReplicationSimulation(
        ["uid", "deg"], fault_workload(seed=seed), range(10, 220, 10), strategy,
        link=Link(latency=2, loss_probability=loss, seed=seed),
        reliability=(
            ReliabilityConfig(retry=RetryPolicy(), seed=seed + 1)
            if reliable else None
        ),
        anti_entropy=(
            AntiEntropyConfig(period=20, num_buckets=8) if anti_entropy else None
        ),
        faults=fault_schedule(),
        horizon=420,
    )
    return sim, sim.run()


def grid_rows(loss_grid=LOSS_GRID, seed=31):
    rows = []
    for loss in loss_grid:
        for label, strategy, reliable, anti_entropy in STACKS:
            _, report = run_stack(strategy, reliable, anti_entropy, loss, seed)
            rows.append(
                (
                    f"{loss:.2f}",
                    label,
                    report.messages,
                    report.cells,
                    report.messages_lost,
                    report.retransmissions,
                    report.retransmissions_avoided,
                    report.cells_avoided,
                    report.repairs_applied,
                    "yes" if report.converged else "NO",
                    report.converged_at if report.converged else "-",
                    report.max_staleness,
                )
            )
    return rows


def print_fault_tolerance():
    emit(
        "FT1: convergence under loss x burst x partition x crash(lose state)",
        ["loss", "stack", "messages", "cells", "lost", "retrans",
         "retrans avoided", "cells avoided", "repairs", "converged",
         "conv. at", "max staleness"],
        grid_rows(),
    )


# -- acceptance criteria -------------------------------------------------------


def test_raw_stacks_never_converge_under_loss():
    for label, strategy, reliable, anti_entropy in STACKS[:2]:
        _, report = run_stack(strategy, reliable, anti_entropy, loss=0.2)
        assert not report.converged, label


def test_full_stack_converges_exactly_at_high_loss():
    sim, report = run_stack(
        ReplicationStrategy.EXPIRATION, True, True, loss=0.2
    )
    assert report.converged
    final = sim.events.now
    assert sim.client.visible_rows(final) == sim.server.live_rows(final)
    assert len(sim.server.live_rows(final)) >= 5  # the pinned rows survive


def test_retry_alone_is_beaten_by_the_state_losing_crash():
    _, report = run_stack(ReplicationStrategy.EXPIRATION, True, False, loss=0.2)
    assert not report.converged


def test_expiration_cancellation_saves_traffic():
    _, report = run_stack(ReplicationStrategy.EXPIRATION, True, True, loss=0.2)
    assert report.retransmissions_avoided > 0
    assert report.cells_avoided > 0


def test_grid_is_deterministic():
    assert grid_rows(loss_grid=(0.2,)) == grid_rows(loss_grid=(0.2,))


def test_no_loss_still_needs_anti_entropy_for_the_crash():
    # Even on a perfect link the lose-state crash wipes delivered rows.
    _, without = run_stack(ReplicationStrategy.EXPIRATION, True, False, loss=0.0)
    _, with_ae = run_stack(ReplicationStrategy.EXPIRATION, True, True, loss=0.0)
    assert not without.converged
    assert with_ae.converged


def test_fault_tolerance_benchmark(benchmark):
    rows = benchmark(grid_rows, loss_grid=(0.2,))
    assert len(rows) == len(STACKS)
    print_fault_tolerance()


if __name__ == "__main__":
    print_fault_tolerance()

"""Experiment S34b: Schrödinger semantics -- validity interval sets.

Paper artefacts: Section 3.3-3.4 and Equation (12).  "An expression is
only required to contain correct values when a user queries it": with
validity *interval sets* instead of a single expiration time, queries
landing in a valid interval are served from the materialisation even after
``texp(e)`` has passed.

The bench materialises differences with varying critical-set sizes and
fires a Poisson-ish query stream, comparing three servers:

* single-expiration (recompute for every query at or after texp(e));
* Schrödinger intervals (recompute only inside invalid gaps);
* Schrödinger + MOVE_BACKWARD (serve slightly stale instead, 0 recomputes).

Expected shape: interval-based recomputations << single-expiration ones,
with identical (correct) answers; the fraction served from the view grows
with the valid share of the timeline.
"""

import random

from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import BaseRef
from repro.core.validity import QueryAnswerer, QueryPolicy
from repro.workloads.generators import UniformLifetime, overlapping_relations

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit

HORIZON = 120


def make_catalog(size, overlap, seed):
    left, right = overlapping_relations(
        ["k", "v"], size, overlap, UniformLifetime(5, HORIZON - 20), seed=seed
    )
    return {"R": left, "S": right}


def query_times(count, seed):
    rng = random.Random(seed)
    return sorted(rng.randrange(HORIZON) for _ in range(count))


def run_servers(size=150, overlap=0.5, queries=80, seed=97):
    catalog = make_catalog(size, overlap, seed)
    expr = BaseRef("R").difference(BaseRef("S"))
    times = query_times(queries, seed + 1)
    rows = []

    # Single-expiration server: the validity set collapses to [τ, texp(e)).
    materialised = evaluate(expr, catalog, tau=0)
    single_recomputes = sum(
        1 for when in times if not when < materialised.expiration
    )
    rows.append(("single texp(e)", queries, queries - single_recomputes,
                 single_recomputes, 0))

    answerer = QueryAnswerer(expr, catalog, materialised, QueryPolicy.RECOMPUTE)
    for when in times:
        answerer.answer(when)
    rows.append(("Schrodinger intervals", queries, answerer.served_from_view,
                 answerer.recomputations, 0))

    mover = QueryAnswerer(expr, catalog, materialised, QueryPolicy.MOVE_BACKWARD)
    for when in times:
        mover.answer(when)
    rows.append(("intervals + move backward", queries, mover.served_from_view,
                 mover.recomputations, mover.moved_backward))
    return rows


def overlap_sweep(seed=97):
    """Fewer critical tuples -> larger valid share -> fewer recomputes."""
    tables = []
    for overlap in (0.05, 0.2, 0.6):
        catalog = make_catalog(150, overlap, seed)
        expr = BaseRef("R").difference(BaseRef("S"))
        materialised = evaluate(expr, catalog, tau=0)
        valid_ticks = sum(
            1 for t in range(HORIZON) if materialised.validity.contains(t)
        )
        rows = run_servers(overlap=overlap, seed=seed)
        single = rows[0][3]
        intervals = rows[1][3]
        tables.append(
            (
                f"{overlap:.2f}",
                f"{valid_ticks / HORIZON:.2f}",
                single,
                intervals,
                f"{intervals / single:.2f}" if single else "n/a",
            )
        )
    return tables


def print_schrodinger():
    emit(
        "Section 3.4: query answering against a materialised difference",
        ["server", "queries", "from view", "recomputations", "moved backward"],
        run_servers(),
    )
    emit(
        "Section 3.4: recomputations vs overlap (Schrodinger / single)",
        ["overlap", "valid share", "single texp(e)", "intervals", "ratio"],
        overlap_sweep(),
    )


def test_intervals_never_recompute_more():
    rows = run_servers(size=100, queries=60, seed=3)
    single = rows[0][3]
    intervals = rows[1][3]
    assert intervals <= single


def test_move_backward_never_recomputes():
    rows = run_servers(size=100, queries=60, seed=3)
    assert rows[2][3] == 0


def test_interval_answers_are_correct():
    catalog = make_catalog(100, 0.5, seed=11)
    expr = BaseRef("R").difference(BaseRef("S"))
    materialised = evaluate(expr, catalog, tau=0)
    answerer = QueryAnswerer(expr, catalog, materialised, QueryPolicy.RECOMPUTE)
    for when in query_times(50, 13):
        answer = answerer.answer(when)
        truth = evaluate(expr, catalog, tau=when)
        assert set(answer.relation.rows()) == set(truth.relation.rows())


def test_schrodinger_benchmark(benchmark):
    rows = benchmark(run_servers, size=100, overlap=0.5, queries=50, seed=29)
    assert len(rows) == 3
    print_schrodinger()


if __name__ == "__main__":
    print_schrodinger()

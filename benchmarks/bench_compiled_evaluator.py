"""Experiment X7: the compiled fused-pipeline evaluator vs the interpreter.

Measures the tentpole of the compiled evaluation path on the repo's two
workload families:

* the Figure 1-3 micro-expressions (projection duplicate handling, a
  difference with critical tuples, a grouped exact-strategy aggregation)
  evaluated on scaled-up random bases; and
* the X6 macro query (join + select + antijoin + exact GROUP BY).

Reported per workload: interpreter and compiled wall time (median of
``repeat`` runs), the speedup, and the plan cache's hit rate for a
repeated-evaluation loop at times inside ``I(e)``.

Asserted (also exercised reduced-size by the CI smoke step): the compiled
engine beats the interpreter on the macro query, and re-evaluating a
cached expression within its validity set hits the cache.

Run directly for the full table:  PYTHONPATH=src python benchmarks/bench_compiled_evaluator.py
"""

import statistics
import time

from repro.core.aggregates import ExpirationStrategy
from repro.core.algebra.compiler import compile_expression
from repro.core.algebra.evaluator import EvalStats, Evaluator
from repro.core.algebra.expressions import BaseRef
from repro.core.algebra.plan_cache import PlanCache
from repro.core.algebra.predicates import col
from repro.obs.registry import MetricsRegistry
from repro.workloads.generators import UniformLifetime, random_relation

try:
    from benchmarks.bench_macro_query import build_catalog, macro_plan
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from bench_macro_query import build_catalog, macro_plan
    from _tables import emit


def figure_catalog(size, seed=31):
    """Scaled-up bases shaped like the paper's Figures 1-3 examples."""
    return {
        "Pol": random_relation(["uid", "deg"], size, UniformLifetime(10, 300),
                               seed=seed, key_range=size, value_domain=40),
        "Adm": random_relation(["uid", "deg"], size, UniformLifetime(10, 300),
                               seed=seed + 1, key_range=size, value_domain=40),
    }


def figure_plans():
    return {
        "fig1 project": BaseRef("Pol").project(2),
        "fig2 difference": BaseRef("Pol").difference(BaseRef("Adm")),
        "fig3 histogram": BaseRef("Pol").aggregate(
            group_by=[2], function="count", strategy=ExpirationStrategy.EXACT
        ),
    }


def _median_ms(action, repeat):
    samples = []
    for _ in range(repeat):
        started = time.perf_counter()
        action()
        samples.append((time.perf_counter() - started) * 1000)
    return statistics.median(samples)


def compare(name, plan, catalog, tau=0, repeat=5):
    """One row of the comparison: interpreter vs (pre-compiled) plan."""
    interpreted_ms = _median_ms(
        lambda: Evaluator(catalog, tau).evaluate(plan), repeat
    )
    compiled_plan = compile_expression(plan, lambda n: catalog[n].schema)
    compiled_ms = _median_ms(
        lambda: compiled_plan.execute(catalog, tau), repeat
    )
    # Cache behaviour: evaluate once, then re-ask at later times; hits
    # happen whenever the later time is inside the cached validity set.
    # Counts are read back from the metrics registry -- the same series
    # EXPLAIN and ``db.metrics.to_prom_text()`` report.
    registry = MetricsRegistry()
    cache = PlanCache(registry=registry)
    first = cache.evaluate(plan, catalog, tau=tau)
    probes = 0
    for offset in (1, 2, 3, 5, 8):
        later = first.tau + offset
        cache.evaluate(plan, catalog, tau=later)
        probes += 1
    hits = registry.snapshot().get("repro_plan_cache_hits_total", 0)
    return {
        "workload": name,
        "interpreted_ms": round(interpreted_ms, 2),
        "compiled_ms": round(compiled_ms, 2),
        "speedup": round(interpreted_ms / compiled_ms, 2) if compiled_ms else float("inf"),
        "cache_hit_rate": round(hits / probes, 2),
        "result_rows": len(first.relation),
    }


def run_comparison(size=4_000, repeat=5, seed=223):
    rows = []
    figures = figure_catalog(size)
    for name, plan in figure_plans().items():
        rows.append(compare(name, plan, figures, repeat=repeat))
    rows.append(
        compare("macro query (X6)", macro_plan(), build_catalog(size, seed), repeat=repeat)
    )
    return rows


def print_comparison(rows=None, size=4_000, repeat=5):
    rows = rows if rows is not None else run_comparison(size=size, repeat=repeat)
    emit(
        f"Compiled evaluator vs interpreter (|base| = {size})",
        ["workload", "interp ms", "compiled ms", "speedup", "cache hit rate", "rows"],
        [(r["workload"], r["interpreted_ms"], r["compiled_ms"],
          f"{r['speedup']}x", r["cache_hit_rate"], r["result_rows"]) for r in rows],
    )
    return rows


def check(rows):
    """The acceptance gates, shared by the tests and the CI smoke run."""
    macro = next(r for r in rows if r["workload"].startswith("macro"))
    assert macro["speedup"] > 1.0, (
        f"compiled slower than interpreter on the macro query: {macro}"
    )
    assert any(r["cache_hit_rate"] > 0 for r in rows), (
        f"no cache hits on repeated evaluation within I(e): {rows}"
    )


def test_compiled_beats_interpreter_on_macro():
    rows = run_comparison(size=2_000, repeat=3, seed=7)
    check(rows)


def test_compiled_matches_interpreter_rows():
    catalog = build_catalog(1_000, seed=17)
    plan = macro_plan()
    interpreted = Evaluator(catalog, 0).evaluate(plan)
    compiled = compile_expression(plan, lambda n: catalog[n].schema).execute(catalog, 0)
    assert compiled.relation.same_content(interpreted.relation)
    assert compiled.expiration == interpreted.expiration
    assert compiled.validity == interpreted.validity


def test_cache_hit_is_cheaper_than_recompute():
    catalog = build_catalog(2_000, seed=5)
    plan = macro_plan()
    cache = PlanCache()
    stats = EvalStats()
    cache.evaluate(plan, catalog, tau=0, stats=stats)
    miss_scanned = stats.tuples_scanned
    hit_stats = EvalStats()
    cache.evaluate(plan, catalog, tau=1, stats=hit_stats)
    if hit_stats.cache_hits:  # inside I(e): the hit touches no base tuples
        assert hit_stats.tuples_scanned == 0
        assert miss_scanned > 0


def test_compiled_evaluator_benchmark(benchmark):
    catalog = build_catalog(2_000, seed=17)
    plan = compile_expression(macro_plan(), lambda n: catalog[n].schema)
    result = benchmark(plan.execute, catalog, 0)
    assert len(result.relation) >= 0


if __name__ == "__main__":
    import sys

    smoke = "--smoke" in sys.argv
    table = print_comparison(
        size=1_000 if smoke else 4_000, repeat=3 if smoke else 5
    )
    check(table)
    print("OK: compiled faster than interpreter on the macro query; "
          "cache hits observed within I(e).")

"""Experiment TH3: Theorem 3 -- patching eliminates recomputation.

Paper artefact: Theorem 3 plus the Section 3.4.2 cost discussion.  A
materialised difference maintained under three policies, reading the view
at every tick until all data has expired:

* RECOMPUTE at texp(e):  one full recomputation per critical-tuple expiry;
* SCHRODINGER:           recomputation only inside genuinely invalid gaps;
* PATCH (Theorem 3):     zero recomputations, storage bounded by |R ∩ S|.

Expected shape: recomputations PATCH = 0 << SCHRODINGER <= RECOMPUTE, all
three always correct, patch storage <= |R ∩ S|.
"""

from repro.core.algebra.expressions import BaseRef
from repro.engine.database import Database
from repro.engine.views import MaintenancePolicy
from repro.workloads.generators import UniformLifetime, overlapping_relations

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit


def build_database(size, overlap, seed):
    left, right = overlapping_relations(
        ["k", "v"], size, overlap, UniformLifetime(5, 80), seed=seed
    )
    db = Database()
    table_r = db.create_table("R", ["k", "v"])
    for row, texp in left.items():
        table_r.insert(row, expires_at=texp)
    table_s = db.create_table("S", ["k", "v"])
    for row, texp in right.items():
        table_s.insert(row, expires_at=texp)
    return db


def run_policy(policy, size=150, overlap=0.6, seed=41, horizon=90):
    db = build_database(size, overlap, seed)
    expr = db.table_expr("R").difference(db.table_expr("S"))
    view = db.materialise("diff", expr, policy=policy)
    correct = 0
    reads = 0
    for when in range(0, horizon):
        db.advance_to(when)
        got = set(view.read().rows())
        truth = set(db.evaluate(expr).relation.rows())
        reads += 1
        correct += got == truth
    return {
        "policy": policy.value,
        "reads": reads,
        "correct": correct,
        "recomputations": view.recomputations,
        "patches": view.patches_applied,
        "storage": view.storage_size,
    }


def run_all(size=150, overlap=0.6, seed=41):
    return [
        run_policy(policy, size=size, overlap=overlap, seed=seed)
        for policy in (
            MaintenancePolicy.RECOMPUTE,
            MaintenancePolicy.SCHRODINGER,
            MaintenancePolicy.PATCH,
        )
    ]


def print_theorem3(rows=None):
    rows = rows if rows is not None else run_all()
    emit(
        "Theorem 3: maintenance policies for a materialised difference",
        ["policy", "reads", "correct", "recomputations", "patches applied", "storage"],
        [
            (r["policy"], r["reads"], r["correct"], r["recomputations"],
             r["patches"], r["storage"])
            for r in rows
        ],
    )


def test_all_policies_always_correct():
    for report in run_all(size=80, seed=7):
        assert report["correct"] == report["reads"], report


def test_patch_needs_zero_recomputations():
    reports = {r["policy"]: r for r in run_all(size=80, seed=7)}
    assert reports["patch"]["recomputations"] == 0
    assert reports["patch"]["patches"] > 0
    assert reports["recompute"]["recomputations"] > 0
    # Schrödinger never recomputes more often than the texp(e) policy.
    assert (
        reports["schrodinger"]["recomputations"]
        <= reports["recompute"]["recomputations"]
    )


def test_patch_storage_bounded_by_intersection():
    left, right = overlapping_relations(
        ["k", "v"], 80, 0.6, UniformLifetime(5, 80), seed=7
    )
    shared = sum(1 for row in left.rows() if row in right)
    db = build_database(80, 0.6, 7)
    expr = db.table_expr("R").difference(db.table_expr("S"))
    view = db.materialise("diff", expr, policy=MaintenancePolicy.PATCH)
    # storage = materialised tuples + queued patches; queue <= |R ∩ S|.
    assert view.storage_size <= len(left) + shared


def test_theorem3_benchmark(benchmark):
    report = benchmark(run_policy, MaintenancePolicy.PATCH, size=100, seed=3,
                       horizon=60)
    assert report["recomputations"] == 0
    print_theorem3()


if __name__ == "__main__":
    print_theorem3()

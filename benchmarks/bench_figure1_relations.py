"""Experiment F1: regenerate the Figure 1 example relations.

Paper artefact: Figure 1 -- tables Pol and El with their texp columns at
time 0.  The bench also times bulk insertion into an engine table (the
operation behind the figure), since insertion is the write path every
other experiment builds on.
"""

from repro.engine.database import Database
from repro.workloads.generators import UniformLifetime, random_relation
from repro.workloads.news import PROFILE_SCHEMA, figure1_el, figure1_pol

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit


def regenerate():
    """The two figure tables, as (title, rows) pairs."""
    tables = []
    for title, relation in (("Pol (politics)", figure1_pol()), ("El (elections)", figure1_el())):
        rows = sorted(
            (int(texp), row[0], row[1]) for row, texp in relation.items()
        )
        tables.append((title, rows))
    return tables


def print_figure1():
    for title, rows in regenerate():
        emit(
            f"Figure 1: {title} at time 0",
            ["texp(.)", "UID", "Deg"],
            rows,
        )


def test_figure1_exact_rows():
    tables = dict(regenerate())
    assert tables["Pol (politics)"] == [(10, 1, 25), (10, 3, 35), (15, 2, 25)]
    assert tables["El (elections)"] == [(2, 4, 90), (3, 2, 85), (5, 1, 75)]


def test_figure1_bulk_insert_benchmark(benchmark):
    source = random_relation(PROFILE_SCHEMA, 2000, UniformLifetime(1, 500), seed=1)
    rows = list(source.items())

    def insert_all():
        db = Database()
        table = db.create_table("Pol", PROFILE_SCHEMA)
        for row, texp in rows:
            table.insert(row, expires_at=texp)
        return table

    table = benchmark(insert_all)
    assert len(table) == 2000
    print_figure1()


if __name__ == "__main__":
    print_figure1()

"""Experiment X10: crash-recovery time and expiration-aware log compaction.

Two measurements of the durability layer (`engine/wal.py` + `engine/
recovery.py`):

1. **Recovery time vs. database size** -- wall time of
   ``recover_database`` (snapshot-less worst case: the whole state is
   replayed from the log, including the deep invariant audit) as the
   logged row count grows.

2. **Compaction on a churn-heavy workload** -- the paper's asymmetry
   applied to the log: short-lived rows are born and die entirely inside
   the segment, so their records can be dropped *as expired* without ever
   being applied.  A classical WAL must keep a delete record per such
   row; an expiration-aware one keeps nothing.

Asserted (the gate): compaction drops at least half of all log records
as expired, and the recovered database is identical before and after
(tables, expirations, clock).
"""

import shutil
import tempfile
import time

from repro.engine.database import Database
from repro.engine.recovery import recover_database
from repro.engine.wal import WriteAheadLog, scan_log

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit

#: Inserts between clock advances in the churn workload.
BATCH = 200


def build_churn(n, wal_dir):
    """A WAL directory logging ``n`` short-lived rows, all dead at the end.

    Every key is inserted once with a 1-3 tick lifetime and the clock
    advances past each batch's expirations, so each row's single log
    record is final *and* expired -- the best case the compaction
    analysis promises for short-lived data.
    """
    db = Database(wal_dir=wal_dir, wal_fsync="never")
    table = db.create_table("S", ["k", "v"])
    for i in range(n):
        table.insert((i, i % 7), expires_at=db.now.value + 1 + (i % 3))
        if (i + 1) % BATCH == 0:
            db.tick(4)
    db.tick(4)
    return db


def engine_state(db):
    """Everything recovery must reproduce: rows, expirations, the clock."""
    return (
        db.now.value,
        {
            name: dict(db.table(name).relation.items())
            for name in db.table_names()
        },
    )


def time_recovery(n, reps=3):
    """Best-of-``reps`` wall time to recover ``n`` live rows from the log."""
    best = None
    replayed = 0
    for _ in range(reps):
        wal_dir = tempfile.mkdtemp(prefix="bench-wal-")
        try:
            db = Database(wal_dir=wal_dir, wal_fsync="never")
            table = db.create_table("S", ["k", "v"])
            for i in range(n):
                table.insert((i, i % 7), expires_at=1000 + i)
            db.close()
            started = time.perf_counter()
            recovered = recover_database(wal_dir, fsync="never")
            elapsed = time.perf_counter() - started
            if len(recovered.table("S")) != n:
                raise AssertionError("recovery lost rows")
            replayed = recovered.last_recovery.records_replayed
            recovered.close()
        finally:
            shutil.rmtree(wal_dir, ignore_errors=True)
        if best is None or elapsed < best:
            best = elapsed
    return {"n": n, "s": best, "records": replayed}


def churn_compaction(n):
    """Compact a churn log; returns the gate report."""
    wal_dir = tempfile.mkdtemp(prefix="bench-wal-churn-")
    try:
        build_churn(n, wal_dir).close()
        log_path = f"{wal_dir}/{WriteAheadLog.LOG_NAME}"
        before_records = len(scan_log(log_path)[0])
        before_bytes = len(open(log_path, "rb").read())

        db = recover_database(wal_dir, fsync="never")
        state_before = engine_state(db)
        stats = db.compact_wal()
        db.close()

        after_records = len(scan_log(log_path)[0])
        after_bytes = len(open(log_path, "rb").read())
        recovered = recover_database(wal_dir, fsync="never")
        state_after = engine_state(recovered)
        recovered.close()

        return {
            "n": n,
            "records_before": before_records,
            "records_after": after_records,
            "bytes_before": before_bytes,
            "bytes_after": after_bytes,
            "expired": stats["expired"],
            "superseded": stats["superseded"],
            "collapsed": stats["collapsed"],
            "expired_ratio": stats["expired"] / before_records,
            "state_unchanged": state_before == state_after,
        }
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)


def gate(sizes, churn_n, reps=3):
    rows = [time_recovery(n, reps) for n in sizes]
    for row in rows:
        row["ms"] = round(row["s"] * 1000, 1)
        row["rows_per_s"] = int(row["n"] / row["s"]) if row["s"] else 0
    emit(
        "WAL recovery time vs. database size (log-only, deep verify on)",
        ["rows", "records replayed", "ms", "rows/s"],
        [(f"{r['n']:,}", f"{r['records']:,}", r["ms"],
          f"{r['rows_per_s']:,}") for r in rows],
    )

    churn = churn_compaction(churn_n)
    emit(
        f"Log compaction on churn workload: {churn_n:,} short-lived rows",
        ["metric", "value"],
        [
            ("records before -> after",
             f"{churn['records_before']:,} -> {churn['records_after']:,}"),
            ("bytes before -> after",
             f"{churn['bytes_before']:,} -> {churn['bytes_after']:,}"),
            ("dropped as expired",
             f"{churn['expired']:,} ({churn['expired_ratio']:.1%})"),
            ("dropped as superseded", f"{churn['superseded']:,}"),
            ("collapsed (clock/brackets)", f"{churn['collapsed']:,}"),
            ("recovered state unchanged", str(churn["state_unchanged"])),
        ],
    )
    passed = churn["expired_ratio"] >= 0.5 and churn["state_unchanged"]
    return {"recovery": rows, "churn": churn, "passed": passed}


def test_churn_compaction_drops_expired_and_preserves_state():
    churn = churn_compaction(1_000)
    assert churn["state_unchanged"]
    assert churn["expired_ratio"] >= 0.5
    assert churn["records_after"] < churn["records_before"]


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        report = gate(sizes=(500, 2_000), churn_n=2_000, reps=2)
    else:
        report = gate(sizes=(1_000, 5_000, 20_000), churn_n=20_000, reps=3)
    churn = report["churn"]
    print(
        f"compaction dropped {churn['expired_ratio']:.1%} of records as "
        f"expired (gate: >=50%); recovered state unchanged: "
        f"{churn['state_unchanged']}"
    )
    if not report["passed"]:
        print("FAIL: compaction below the expired-drop gate or state changed")
        raise SystemExit(1)
    print("OK: expiration-aware compaction within the gate")

"""Experiment X5 (ablation, paper §3.4.2): difference executors.

"...may be executed as a hash join, a nested-loop join, or a sort-merge
join.  Whichever method we use, we can always gather the information
necessary to build the priority queue in O(n log n) time."

The bench times the three executors across input sizes.  Expected shape:
hash ~linear, sort-merge ~n log n, nested-loop quadratic (it falls off a
cliff first); all three produce identical materialisations and patch
queues (asserted).
"""

import time

from repro.core.difference_algorithms import ALGORITHMS
from repro.workloads.generators import UniformLifetime, overlapping_relations

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit


def time_algorithm(name, left, right, repeats=3):
    algorithm = ALGORITHMS[name]
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = algorithm(left, right, 0)
        best = min(best, time.perf_counter() - started)
    return best * 1000, result


def run_sweep(sizes=(100, 400, 1600), seed=211):
    rows = []
    for size in sizes:
        left, right = overlapping_relations(
            ["k", "v"], size, 0.5, UniformLifetime(5, 500), seed=seed
        )
        reference = None
        timings = {}
        for name in ("hash", "sort_merge", "nested_loop"):
            elapsed_ms, (relation, patches) = time_algorithm(name, left, right)
            timings[name] = elapsed_ms
            if reference is None:
                reference = (relation, patches)
            else:
                assert relation.same_content(reference[0]), name
                assert patches == reference[1], name
        rows.append(
            (
                size,
                f"{timings['hash']:.2f}",
                f"{timings['sort_merge']:.2f}",
                f"{timings['nested_loop']:.2f}",
            )
        )
    return rows


def print_algorithms(rows=None):
    emit(
        "Section 3.4.2: difference executors (ms, identical outputs)",
        ["|R| = |S|", "hash", "sort-merge", "nested-loop"],
        rows if rows is not None else run_sweep(),
    )


def test_outputs_identical():
    # run_sweep asserts agreement internally at every size.
    assert len(run_sweep(sizes=(100, 300), seed=5)) == 2


def test_nested_loop_scales_worst():
    rows = run_sweep(sizes=(200, 1600), seed=5)
    small, large = rows[0], rows[-1]
    growth = {
        name: float(large[index]) / max(float(small[index]), 1e-6)
        for index, name in ((1, "hash"), (2, "sort_merge"), (3, "nested_loop"))
    }
    # 8x input: quadratic should grow clearly faster than the hash path.
    assert growth["nested_loop"] > growth["hash"]


def test_difference_algorithms_benchmark(benchmark):
    from repro.core.difference_algorithms import hash_difference

    left, right = overlapping_relations(
        ["k", "v"], 2000, 0.5, UniformLifetime(5, 500), seed=17
    )
    relation, patches = benchmark(hash_difference, left, right, 0)
    assert len(relation) + len(patches) > 0
    print_algorithms()


if __name__ == "__main__":
    print_algorithms()

"""Experiment T1: Table 1 -- neutral sets extend aggregate lifetimes.

Paper artefact: Table 1 defines neutral subsets per aggregate function; the
claim is that dropping time-sliced neutral sets (the contributing-set rule)
yields strictly less conservative expirations than Equation (8), except for
``count`` which cannot be extended.

The bench sweeps randomly generated partitions and reports, per aggregate
function, the mean lifetime gained by the Table-1 rule and by the exact
change-point rule (Equation 9), relative to Equation (8).  Expected shape:
``conservative <= neutral_sets <= exact`` everywhere, with equality for
count on the neutral-set column.
"""

import random

from repro.core.aggregates import (
    conservative_expiration,
    exact_expiration,
    get_aggregate,
    neutral_set_expiration,
)
from repro.core.timestamps import ts

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit

FUNCTIONS = ("min", "max", "sum", "avg", "count")


def random_partition(rng, size):
    """A partition with deliberate duplicate values, zeros, and texp ties."""
    partition = []
    for _ in range(size):
        value = rng.choice([-5, 0, 0, 1, 1, 2, 5, 9])
        texp = rng.choice([3, 3, 5, 8, 8, 13, 21])
        partition.append((value, ts(texp)))
    return partition


def lifetime_gain(expiration, baseline, horizon=50):
    cap = lambda t: t.value if t.is_finite else horizon  # noqa: E731
    return cap(expiration) - cap(baseline)


def run_sweep(partitions=300, size=8, seed=42):
    rng = random.Random(seed)
    rows = []
    for name in FUNCTIONS:
        function = get_aggregate(name)
        neutral_gain = 0
        exact_gain = 0
        extended = 0
        for index in range(partitions):
            partition = random_partition(rng, size)
            conservative = conservative_expiration(partition)
            neutral = neutral_set_expiration(partition, function)
            exact = exact_expiration(partition, function, ts(0))
            assert conservative <= neutral <= exact
            neutral_gain += lifetime_gain(neutral, conservative)
            exact_gain += lifetime_gain(exact, conservative)
            if conservative < neutral:
                extended += 1
        rows.append(
            (
                name,
                round(neutral_gain / partitions, 2),
                round(exact_gain / partitions, 2),
                f"{100 * extended / partitions:.0f}%",
            )
        )
    return rows


def print_table1(rows=None):
    emit(
        "Table 1: mean lifetime gained over Equation (8) (ticks)",
        ["aggregate", "neutral sets", "exact (nu)", "partitions extended"],
        rows if rows is not None else run_sweep(),
    )


def test_table1_shape():
    rows = {name: row for name, *row in (tuple(r) for r in run_sweep())}
    # count can never be extended by neutral sets.
    assert rows["count"][0] == 0.0
    assert rows["count"][2] == "0%"
    # The other aggregates gain lifetime on a sizable share of partitions.
    for name in ("min", "max", "sum", "avg"):
        neutral, exact, extended = rows[name]
        assert neutral >= 0
        assert exact >= neutral
        assert exact > 0


def test_table1_sweep_benchmark(benchmark):
    rows = benchmark(run_sweep, partitions=100, size=8, seed=7)
    assert len(rows) == len(FUNCTIONS)
    print_table1()


if __name__ == "__main__":
    print_table1()

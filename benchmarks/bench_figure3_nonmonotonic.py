"""Experiment F3: regenerate Figure 3 -- non-monotonic invalidity.

Paper artefact: Figure 3 (a)-(d): the count histogram whose materialisation
becomes invalid at time 10, and the difference ``π_1(Pol) − π_1(El)`` that
*grows* over time and is invalid from time 3.

Timed operation: evaluating an aggregation (with the exact change-point
machinery) over a large relation.
"""

from repro.core.aggregates import ExpirationStrategy
from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import BaseRef
from repro.workloads.generators import UniformLifetime, random_relation
from repro.workloads.news import figure1_el, figure1_pol

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit


def catalog():
    return {"Pol": figure1_pol(), "El": figure1_el()}


def histogram():
    return (
        BaseRef("Pol")
        .aggregate(group_by=[2], function="count",
                   strategy=ExpirationStrategy.CONSERVATIVE)
        .project(2, 3)
    )


def difference():
    return BaseRef("Pol").project(1).difference(BaseRef("El").project(1))


def regenerate():
    cat = catalog()
    rows = []
    hist = evaluate(histogram(), cat, tau=0)
    rows.append(("(a) histogram @ 0", sorted(hist.relation.rows()),
                 f"texp(e)={hist.expiration}"))
    for tau in (0, 3, 5):
        diff = evaluate(difference(), cat, tau=tau)
        note = f"texp(e)={diff.expiration}" if tau == 0 else ""
        rows.append((f"(b-d) difference @ {tau}", sorted(diff.relation.rows()), note))
    return rows


def print_figure3():
    emit(
        "Figure 3: non-monotonic expressions",
        ["expression @ time", "tuples", "note"],
        regenerate(),
    )


def test_figure3_exact_contents():
    rows = regenerate()
    table = {label: (content, note) for label, content, note in rows}
    assert table["(a) histogram @ 0"] == ([(25, 2), (35, 1)], "texp(e)=10")
    assert table["(b-d) difference @ 0"] == ([(3,)], "texp(e)=3")
    assert table["(b-d) difference @ 3"][0] == [(2,), (3,)]
    assert table["(b-d) difference @ 5"][0] == [(1,), (2,), (3,)]


def test_figure3_histogram_invalid_from_10():
    cat = catalog()
    materialised = evaluate(histogram(), cat, tau=0)
    fresh = evaluate(histogram(), cat, tau=10)
    # Should contain <25,1> from time 10 -- "but according to (8), it does
    # not.  Instead, <25,2> expires."
    assert sorted(fresh.relation.rows()) == [(25, 1)]
    assert sorted(materialised.relation.exp_at(10).rows()) == []


def test_figure3_aggregate_benchmark(benchmark):
    relation = random_relation(["uid", "deg"], 2000, UniformLifetime(1, 200),
                               seed=5, value_domain=20)
    cat = {"Pol": relation}
    expr = BaseRef("Pol").aggregate(group_by=[2], function="count",
                                    strategy=ExpirationStrategy.EXACT)
    result = benchmark(lambda: evaluate(expr, cat, tau=0))
    assert len(result.relation) == 2000
    print_figure3()


if __name__ == "__main__":
    print_figure3()

"""Experiment D2: the expiration-index substrate ([24]'s efficiency claim).

Paper dependency: "there exist efficient ways to support expiration times
with real-time performance guarantees".  The bench measures the heap-based
index: throughput of schedule/pop cycles across index sizes (expected
shape: near-O(log n) per operation, i.e. throughput decays only slowly
with n) and the cost of renewal-heavy workloads (tombstone pressure).
"""

import random
import time

from repro.engine.expiration_index import ExpirationIndex
from repro.engine.timer_wheel import TimerWheelIndex

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit


def churn(index_size, operations, renew_fraction, seed,
          make_index=ExpirationIndex, lifetime_span=10**6):
    """Pre-fill an index, then run a schedule/expire churn; return ops/sec.

    The default huge ``lifetime_span`` keeps the due-rate near zero, so the
    measurement isolates per-operation cost (the O(log n) scaling story);
    a short span makes pops drain real batches (the workload for the
    heap-vs-wheel comparison, identical for both implementations).
    """
    rng = random.Random(seed)
    index = make_index()
    now = 0
    for key in range(index_size):
        index.schedule((key,), now + rng.randint(1, lifetime_span))
    started = time.perf_counter()
    for op in range(operations):
        if rng.random() < renew_fraction:
            key = rng.randrange(index_size)
            index.schedule((key,), now + rng.randint(1, lifetime_span))
        else:
            now += rng.randint(0, 3)
            index.pop_due(now)
    elapsed = time.perf_counter() - started
    return operations / elapsed, index.heap_size


def run_sweep(operations=4000, seed=7, make_index=ExpirationIndex):
    rows = []
    for size in (1_000, 10_000, 100_000):
        ops_per_sec, residue = churn(size, operations, 0.7, seed,
                                     make_index=make_index)
        rows.append((size, f"{ops_per_sec:,.0f}", residue))
    return rows


def implementation_comparison(operations=4000, seed=7):
    """Heap vs timer wheel ([24]'s O(1)-per-tick structure) under churn.

    Short lifetimes: every pop drains a real batch, and the wheel's
    near-future slot path is the one being exercised.
    """
    rows = []
    for label, factory in (
        ("binary heap", ExpirationIndex),
        ("timer wheel (W=1024)", lambda: TimerWheelIndex(wheel_size=1024)),
    ):
        for size in (10_000, 100_000):
            ops_per_sec, residue = churn(size, operations, 0.7, seed,
                                         make_index=factory, lifetime_span=500)
            rows.append((label, size, f"{ops_per_sec:,.0f}", residue))
    return rows


def print_index(rows=None):
    emit(
        "Expiration index: churn throughput vs index size",
        ["index size", "ops/sec", "heap residue (tombstones)"],
        rows if rows is not None else run_sweep(),
    )
    emit(
        "Expiration index implementations under churn",
        ["implementation", "index size", "ops/sec", "physical residue"],
        implementation_comparison(),
    )


def test_throughput_decays_slowly():
    # Best of three runs per size to shake off scheduler noise.
    def best(size):
        return max(churn(size, 2000, 0.7, seed)[0] for seed in (3, 4, 5))

    small = best(1_000)
    large = best(100_000)
    # 100x size must cost far less than 100x throughput (log-ish scaling);
    # allow a very generous 20x factor for noisy CI machines.
    assert large > small / 20


def test_next_expiration_is_constant_time_observable():
    index = ExpirationIndex()
    rng = random.Random(1)
    for key in range(50_000):
        index.schedule((key,), rng.randint(1, 10**6))
    started = time.perf_counter()
    for _ in range(10_000):
        index.next_expiration()
    elapsed = time.perf_counter() - started
    assert elapsed < 1.0  # 10k peeks well under a second


def test_wheel_handles_same_churn():
    heap_result = churn(5_000, 1500, 0.7, 3, make_index=ExpirationIndex)
    wheel_result = churn(
        5_000, 1500, 0.7, 3, make_index=lambda: TimerWheelIndex(wheel_size=1024)
    )
    assert heap_result[0] > 0 and wheel_result[0] > 0


def test_expiration_index_benchmark(benchmark):
    result = benchmark(churn, 10_000, 2000, 0.7, 11)
    assert result[0] > 0
    print_index()


if __name__ == "__main__":
    print_index()

"""Experiment D1: loosely-coupled maintenance -- the Section 1 claims.

Paper claims quantified here: "lower transaction volume, smaller
databases, and higher consistency for replicated data with lower
overhead", especially "in open architectures and loosely-coupled systems".

Two sub-experiments over the news-profile workload:

1. **Base-relation replication** under explicit-delete push, periodic
   snapshots, and expiration-based maintenance, across link partitions.
   Expected shape: expiration sends one message per insert and *zero*
   deletion traffic, and keeps perfect consistency even while the link is
   down; the baseline doubles traffic and serves dead tuples during
   partitions.
2. **Remote difference view** under recompute-on-invalid, Schrödinger,
   and Theorem-3 patch shipping.  Expected shape: patch = 2 messages
   total, perfect consistency, zero recompute requests.
"""

from repro.distributed.link import Link
from repro.distributed.simulator import (
    DifferenceViewSimulation,
    ReplicationSimulation,
    ReplicationStrategy,
    ViewMaintenanceStrategy,
)
from repro.workloads.generators import UniformLifetime, overlapping_relations, random_stream

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit


def replication_rows(count=120, span=80, seed=101, partition=None):
    workload = random_stream(["uid", "deg"], count, UniformLifetime(10, 60),
                             arrival_span=span, seed=seed)
    # Query after the insert phase has fully propagated (span + latency),
    # so the comparison isolates *maintenance* behaviour from insert
    # propagation delay, which is identical across strategies.
    queries = list(range(span + 5, span + 85, 2))
    rows = []
    for strategy in ReplicationStrategy:
        link = Link(latency=2, partitions=partition or [], seed=seed)
        report = ReplicationSimulation(
            ["uid", "deg"], workload, queries, strategy, link=link,
            snapshot_period=10,
        ).run()
        rows.append(
            (
                strategy.value,
                report.messages,
                report.cells,
                f"{report.consistency:.3f}",
                report.extra_tuples,
                report.missing_tuples,
            )
        )
    return rows


def fanout_rows(clients=5, count=80, span=60, seed=107):
    from repro.distributed.simulator import FanOutSimulation

    workload = random_stream(["uid", "deg"], count, UniformLifetime(10, 50),
                             arrival_span=span, seed=seed)
    queries = list(range(span + 5, span + 65, 3))
    rows = []
    for strategy in (ReplicationStrategy.EXPLICIT_DELETE,
                     ReplicationStrategy.EXPIRATION):
        links = [Link(latency=1 + index % 4, seed=index) for index in range(clients)]
        report = FanOutSimulation(
            ["uid", "deg"], workload, queries, strategy, links=links
        ).run()
        rows.append(
            (
                strategy.value,
                clients,
                report.messages,
                report.cells,
                f"{report.consistency:.3f}",
                report.detail["worst_client_consistency"],
            )
        )
    return rows


def view_rows(size=120, overlap=0.5, seed=103):
    rows = []
    for strategy in ViewMaintenanceStrategy:
        left, right = overlapping_relations(
            ["k", "v"], size, overlap, UniformLifetime(5, 90), seed=seed
        )
        report = DifferenceViewSimulation(
            left, right, list(range(0, 110, 3)), strategy, link=Link(latency=2)
        ).run()
        rows.append(
            (
                strategy.value,
                report.messages,
                report.cells,
                f"{report.consistency:.3f}",
                report.recompute_requests,
                report.patches_shipped,
            )
        )
    return rows


def print_distributed():
    emit(
        "D1a: base-relation replication (connected link)",
        ["strategy", "messages", "cells", "consistency", "extra", "missing"],
        replication_rows(),
    )
    emit(
        "D1a: base-relation replication (partition during expiry window)",
        ["strategy", "messages", "cells", "consistency", "extra", "missing"],
        replication_rows(partition=[(85, 130)]),
    )
    emit(
        "D1b: remote difference view maintenance",
        ["strategy", "messages", "cells", "consistency", "recompute reqs", "patches"],
        view_rows(),
    )
    emit(
        "D1c: fan-out to 5 heterogeneous clients",
        ["strategy", "clients", "messages", "cells", "consistency",
         "worst client"],
        fanout_rows(),
    )


def test_expiration_perfect_consistency_and_no_deletes():
    rows = {r[0]: r for r in replication_rows(count=60, span=40, seed=7)}
    expiration = rows["expiration"]
    baseline = rows["explicit_delete"]
    assert expiration[3] == "1.000"
    assert expiration[4] == 0  # never serves dead tuples
    # Baseline ships roughly twice the messages (insert + delete each).
    assert baseline[1] >= 2 * expiration[1] - 2


def test_partition_only_hurts_baseline():
    partition = [(45, 100)]
    rows = {r[0]: r for r in replication_rows(count=60, span=40, seed=7,
                                              partition=partition)}
    assert rows["expiration"][3] == "1.000"
    assert rows["explicit_delete"][4] > 0  # stale extras during partition


def test_fanout_baseline_doubles_messages():
    rows = {r[0]: r for r in fanout_rows(clients=3, count=40, span=30, seed=5)}
    baseline = rows["explicit_delete"]
    expiration = rows["expiration"]
    assert baseline[2] == 2 * expiration[2]
    assert expiration[5] == 1.0  # worst client stays perfectly consistent


def test_patch_strategy_minimal_traffic():
    rows = {r[0]: r for r in view_rows(size=80, seed=9)}
    patch = rows["patch"]
    recompute = rows["recompute_on_invalid"]
    assert patch[1] == 2  # snapshot + patch shipment
    assert patch[3] == "1.000"
    assert patch[4] == 0
    assert recompute[1] > patch[1]


def test_distributed_benchmark(benchmark):
    rows = benchmark(view_rows, size=80, overlap=0.5, seed=15)
    assert len(rows) == 3
    print_distributed()


if __name__ == "__main__":
    print_distributed()

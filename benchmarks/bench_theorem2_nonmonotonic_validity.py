"""Experiment TH2: Theorem 2 at scale.

Paper artefact: Theorem 2 -- for any expression of operators (1)-(10)
materialised at ``τ``, ``exp_τ'(e) = exp_τ'(exp_τ(e))`` for all
``τ <= τ' < texp(e)``.  The bench sweeps difference and aggregation
expressions over random relations, checks every time point strictly below
``texp(e)`` (expected: 100% hold), and — as the paper's converse — that
the first point at or after ``texp(e)`` where the partition structure
still exists indeed *breaks* the materialisation for a visible fraction of
trials (texp(e) is a lower bound, usually tight).
"""

from repro.core.aggregates import ExpirationStrategy
from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import BaseRef
from repro.core.validity import recompute_equals_materialised, relevant_times
from repro.workloads.generators import UniformLifetime, overlapping_relations, random_relation

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit


def difference_catalog(size, seed):
    left, right = overlapping_relations(
        ["k", "v"], size, 0.5, UniformLifetime(1, 50), seed=seed
    )
    return {"R": left, "S": right}


def aggregate_catalog(size, seed):
    return {
        "R": random_relation(["k", "v"], size, UniformLifetime(1, 50), seed=seed,
                             value_domain=10),
        "S": random_relation(["k", "v"], size, UniformLifetime(1, 50), seed=seed + 1),
    }


EXPRESSIONS = {
    "difference": (
        lambda: BaseRef("R").difference(BaseRef("S")),
        difference_catalog,
    ),
    "agg count (Eq.8)": (
        lambda: BaseRef("R").aggregate(group_by=[2], function="count",
                                       strategy=ExpirationStrategy.CONSERVATIVE),
        aggregate_catalog,
    ),
    "agg min (exact)": (
        lambda: BaseRef("R").aggregate(group_by=[2], function="min", attribute=1,
                                       strategy=ExpirationStrategy.EXACT),
        aggregate_catalog,
    ),
    "agg sum (neutral)": (
        lambda: BaseRef("R").aggregate(group_by=[2], function="sum", attribute=2,
                                       strategy=ExpirationStrategy.NEUTRAL_SETS),
        aggregate_catalog,
    ),
}


def run_trial(label, size, seed):
    make_expr, make_catalog = EXPRESSIONS[label]
    catalog = make_catalog(size, seed)
    expr = make_expr()
    materialised = evaluate(expr, catalog, tau=0)
    expiration = materialised.expiration
    checked = held = 0
    broke_at_expiration = False
    for point in relevant_times(expr, catalog, 0):
        ok = recompute_equals_materialised(expr, catalog, materialised, point)
        if point < expiration:
            checked += 1
            held += ok
        elif not ok:
            broke_at_expiration = True
    return checked, held, str(expiration), broke_at_expiration


def run_sweep(size=120, trials=5, seed=31):
    rows = []
    for label in EXPRESSIONS:
        checked = held = broke = 0
        finite = 0
        for t in range(trials):
            c, h, expiration, b = run_trial(label, size, seed + t)
            checked += c
            held += h
            broke += b
            finite += expiration != "inf"
        rows.append(
            (
                label,
                checked,
                held,
                "100%" if checked == held else "VIOLATED",
                f"{finite}/{trials}",
                f"{broke}/{trials}",
            )
        )
    return rows


def print_theorem2(rows=None):
    emit(
        "Theorem 2: validity strictly before texp(e)",
        ["expression", "checkpoints < texp(e)", "held", "verdict",
         "finite texp(e)", "invalid at/after texp(e)"],
        rows if rows is not None else run_sweep(),
    )


def test_theorem2_holds_before_expiration():
    for row in run_sweep(size=80, trials=3):
        assert row[3] == "100%", row


def test_theorem2_expiration_usually_finite_for_difference():
    rows = {row[0]: row for row in run_sweep(size=80, trials=3)}
    finite, total = rows["difference"][4].split("/")
    assert int(finite) == int(total)


def test_theorem2_benchmark(benchmark):
    rows = benchmark(run_sweep, size=60, trials=2, seed=5)
    assert all(row[3] == "100%" for row in rows)
    print_theorem2()


if __name__ == "__main__":
    print_theorem2()

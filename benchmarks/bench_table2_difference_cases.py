"""Experiment T2: Table 2 -- the difference lifetime case analysis.

Paper artefact: Table 2 classifies a tuple ``t`` w.r.t. ``e = R −exp S``
into cases (1), (2), (3a), (3b); only case (3a) bounds ``texp(e)``, at
``τ_R = min{texp_S(t) | critical t}``.

The bench regenerates the case table and then sweeps the *overlap* and
*critical bias* of synthetic relation pairs, reporting how the size of the
recomputation-triggering set drives ``texp(e)`` -- the Section 3.1 knob the
rewriting experiment turns.
"""

from repro.core.algebra.evaluator import evaluate
from repro.core.algebra.expressions import Literal
from repro.core.relation import relation_from_rows
from repro.core.timestamps import INFINITY, ts
from repro.core.validity import critical_tuples
from repro.workloads.generators import UniformLifetime, overlapping_relations

try:
    from benchmarks._tables import emit
except ImportError:  # direct script execution
    from _tables import emit


def case_table():
    """The four Table 2 cases, instantiated and evaluated."""
    cases = [
        ("(1) t in R only", [((1,), 10)], [], "10", "inf"),
        ("(2) t in S only", [], [((1,), 10)], "n.a.", "inf"),
        ("(3a) texp_R > texp_S", [((1,), 15)], [((1,), 5)], "n.a.", "5"),
        ("(3b) texp_R <= texp_S", [((1,), 5)], [((1,), 15)], "n.a.", "inf"),
    ]
    rows = []
    for label, left_rows, right_rows, texp_t, texp_e in cases:
        left = relation_from_rows(["a"], left_rows)
        right = relation_from_rows(["a"], right_rows)
        result = evaluate(Literal(left).difference(Literal(right)), {})
        got_t = (
            str(result.relation.expiration_of((1,)))
            if (1,) in result.relation
            else "n.a."
        )
        rows.append((label, got_t, str(result.expiration), texp_t, texp_e))
    return rows


def overlap_sweep(size=200, seed=13):
    """texp(e) and critical-set size as functions of overlap x bias."""
    rows = []
    for overlap in (0.0, 0.25, 0.5, 0.75, 1.0):
        for bias in (0.0, 0.5, 1.0):
            left, right = overlapping_relations(
                ["k", "v"], size, overlap, UniformLifetime(5, 100),
                seed=seed, critical_bias=bias,
            )
            result = evaluate(Literal(left).difference(Literal(right)), {})
            critical = len(critical_tuples(left, right))
            rows.append(
                (
                    f"{overlap:.2f}",
                    f"{bias:.1f}",
                    critical,
                    str(result.expiration),
                    len(result.validity),
                )
            )
    return rows


def print_table2():
    emit(
        "Table 2: lifetime analysis of e = R - S (got vs paper)",
        ["case", "texp_*(t) got", "texp(e) got", "texp_*(t) paper", "texp(e) paper"],
        case_table(),
    )
    emit(
        "Table 2 sweep: critical set drives texp(e)",
        ["overlap", "critical bias", "|critical|", "texp(e)", "validity intervals"],
        overlap_sweep(),
    )


def test_case_table_matches_paper():
    for label, got_t, got_e, paper_t, paper_e in case_table():
        assert got_t == paper_t, label
        assert got_e == paper_e, label


def test_sweep_shape():
    rows = overlap_sweep(size=100)
    # No overlap or zero bias -> no critical tuples -> immortal expression.
    by_key = {(r[0], r[1]): r for r in rows}
    assert by_key[("0.00", "1.0")][2] == 0
    assert by_key[("0.00", "1.0")][3] == "inf"
    assert by_key[("1.00", "0.0")][2] == 0
    # Full overlap, full bias -> many critical tuples, finite texp(e).
    assert by_key[("1.00", "1.0")][2] == 100
    assert by_key[("1.00", "1.0")][3] != "inf"
    # Critical count grows with overlap at fixed bias.
    counts = [by_key[(o, "1.0")][2] for o in ("0.00", "0.25", "0.50", "0.75", "1.00")]
    assert counts == sorted(counts)


def test_table2_sweep_benchmark(benchmark):
    rows = benchmark(overlap_sweep, size=100, seed=3)
    assert len(rows) == 15
    print_table2()


if __name__ == "__main__":
    print_table2()
